"""Scenario: travel-time vs travel-distance kNN (paper Section 7.5).

The same road network carries two edge-weight kinds: physical distance
and travel time under road-class speeds.  The nearest POI by distance is
often not the nearest by time (a motorway detour wins), and the Euclidean
lower bound IER relies on weakens on time weights — both effects are
shown here, served through one :class:`repro.QueryEngine` per weight
kind.

Run:  python examples/travel_time_routing.py
"""

from repro import QueryEngine, road_network, travel_time_weights, uniform_objects
from repro.utils.counters import Counters


def main() -> None:
    distance_graph = road_network(2500, seed=23)
    time_graph = travel_time_weights(distance_graph, seed=23)
    print(f"distance graph: {distance_graph}")
    print(f"time graph:     {time_graph}")
    print(f"max speed S = {time_graph.max_speed():.2f} "
          "(scales the Euclidean lower bound)\n")

    objects = uniform_objects(distance_graph, density=0.005, seed=2)
    k = 3

    # One engine per weight kind; each caches its own indexes.
    by_distance = QueryEngine(distance_graph, objects)
    by_time = QueryEngine(time_graph, objects)

    # How often does the nearest POI differ between the two metrics?
    differing = 0
    queries = range(0, distance_graph.num_vertices, 97)
    for q in queries:
        nn_d = by_distance.query(q, 1, method="ine").vertices[0]
        nn_t = by_time.query(q, 1, method="ine").vertices[0]
        differing += nn_d != nn_t
    total = len(list(queries))
    print(
        f"nearest POI differs between distance and time metrics for "
        f"{differing}/{total} query points\n"
    )

    # IER on time weights: exact, but with more false hits because the
    # scaled Euclidean bound is looser.
    counters_d, counters_t = Counters(), Counters()
    for q in range(0, distance_graph.num_vertices, 211):
        rd = by_distance.query(q, k, method="ier-phl", counters=counters_d)
        rt = by_time.query(q, k, method="ier-phl", counters=counters_t)
        assert rd.vertices == by_distance.query(q, k, method="ine").vertices
        assert rt.vertices == by_time.query(q, k, method="ine").vertices
    print("IER network-distance computations per workload:")
    print(f"  travel distance: {counters_d['ier_network_computations']}")
    print(f"  travel time:     {counters_t['ier_network_computations']} "
          "(more false hits, as in the paper)\n")

    # Hub labels shrink on travel time (stronger hierarchy).
    labels_d = by_distance.workbench.hub_labels
    labels_t = by_time.workbench.hub_labels
    print("average hub-label size:")
    print(f"  travel distance: {labels_d.average_label_size():.1f}")
    print(f"  travel time:     {labels_t.average_label_size():.1f}")

    # G-tree works unchanged on either weight kind — and the engine can
    # attach the actual route to each result.
    q = 77
    result = by_time.query(q, k, method="gtree", with_paths=True)
    shown = ", ".join(f"v{n.vertex} ({n.distance:.2f} time units)" for n in result)
    print(f"\nG-tree kNN by travel time from v{q}: [{shown}]")
    best = result[0]
    print(f"fastest route to v{best.vertex}: {len(best.path)} vertices")


if __name__ == "__main__":
    main()
