"""Scenario: travel-time vs travel-distance kNN (paper Section 7.5).

The same road network carries two edge-weight kinds: physical distance
and travel time under road-class speeds.  The nearest POI by distance is
often not the nearest by time (a motorway detour wins), and the Euclidean
lower bound IER relies on weakens on time weights — both effects are
shown here.

Run:  python examples/travel_time_routing.py
"""

from repro import (
    GTree,
    GTreeKNN,
    HubLabels,
    IER,
    INE,
    road_network,
    travel_time_weights,
    uniform_objects,
)
from repro.utils.counters import Counters


def main() -> None:
    distance_graph = road_network(2500, seed=23)
    time_graph = travel_time_weights(distance_graph, seed=23)
    print(f"distance graph: {distance_graph}")
    print(f"time graph:     {time_graph}")
    print(f"max speed S = {time_graph.max_speed():.2f} "
          "(scales the Euclidean lower bound)\n")

    objects = uniform_objects(distance_graph, density=0.005, seed=2)
    k = 3

    # How often does the nearest POI differ between the two metrics?
    by_distance = INE(distance_graph, objects)
    by_time = INE(time_graph, objects)
    differing = 0
    queries = range(0, distance_graph.num_vertices, 97)
    for q in queries:
        nn_d = by_distance.knn(q, 1)[0][1]
        nn_t = by_time.knn(q, 1)[0][1]
        differing += nn_d != nn_t
    total = len(list(queries))
    print(
        f"nearest POI differs between distance and time metrics for "
        f"{differing}/{total} query points\n"
    )

    # IER on time weights: exact, but with more false hits because the
    # scaled Euclidean bound is looser.
    labels_d = HubLabels(distance_graph)
    labels_t = HubLabels(time_graph)
    ier_d = IER(distance_graph, objects, labels_d)
    ier_t = IER(time_graph, objects, labels_t)
    counters_d, counters_t = Counters(), Counters()
    for q in range(0, distance_graph.num_vertices, 211):
        rd = ier_d.knn(q, k, counters=counters_d)
        rt = ier_t.knn(q, k, counters=counters_t)
        assert [v for _, v in rd] == [v for _, v in INE(
            distance_graph, objects).knn(q, k)]
        assert [v for _, v in rt] == [v for _, v in by_time.knn(q, k)]
    print("IER network-distance computations per workload:")
    print(f"  travel distance: {counters_d['ier_network_computations']}")
    print(f"  travel time:     {counters_t['ier_network_computations']} "
          "(more false hits, as in the paper)\n")

    # Hub labels shrink on travel time (stronger hierarchy).
    print("average hub-label size:")
    print(f"  travel distance: {labels_d.average_label_size():.1f}")
    print(f"  travel time:     {labels_t.average_label_size():.1f}")

    # G-tree works unchanged on either weight kind.
    gtree_t = GTree(time_graph)
    alg = GTreeKNN(gtree_t, objects)
    q = 77
    result = alg.knn(q, k)
    shown = ", ".join(f"v{v} ({d:.2f} time units)" for d, v in result)
    print(f"\nG-tree kNN by travel time from v{q}: [{shown}]")


if __name__ == "__main__":
    main()
