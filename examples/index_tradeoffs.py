"""Scenario: choosing a kNN method for your deployment (mini Table 5).

Builds every road-network index on one network, measures construction
time, memory and mean query time at several densities, and prints a
ranking table — the decision matrix the paper's conclusions give to
practitioners.

Run:  python examples/index_tradeoffs.py
"""

import time

from repro import road_network, uniform_objects
from repro.experiments.runner import Workbench, measure_query_time, random_queries
from repro.experiments.tables import format_table5, table5_ranking


def main() -> None:
    graph = road_network(2000, seed=31, name="demo")
    workbench = Workbench(graph)
    print(f"network: {graph}\n")

    # Force-build all indexes and report preprocessing costs.
    rows = []
    rows.append(("INE (graph only)", 0.0, graph.size_bytes() / 1024))
    start = time.perf_counter()
    gtree = workbench.gtree
    rows.append(("G-tree", gtree.build_time(), gtree.size_bytes() / 1024))
    road = workbench.road
    rows.append(("ROAD", road.build_time(), road.size_bytes() / 1024))
    labels = workbench.hub_labels
    rows.append(("Hub labels (PHL)", labels.build_time(), labels.size_bytes() / 1024))
    silc = workbench.silc
    rows.append(("SILC (DisBrw)", silc.build_time(), silc.size_bytes() / 1024))
    print(f"{'index':18} {'build (s)':>10} {'size (KB)':>10}")
    for name, build, size in rows:
        print(f"{name:18} {build:>10.2f} {size:>10.0f}")

    # Query time per method across sparse / typical / dense object sets.
    print(f"\n{'method':10} " + "".join(f"{d:>12}" for d in (0.001, 0.01, 0.1)))
    queries = random_queries(graph, 25, seed=5)
    for method in workbench.available_methods():
        cells = []
        for density in (0.001, 0.01, 0.1):
            objects = uniform_objects(graph, density, seed=1, minimum=10)
            alg = workbench.make(method, objects)
            cells.append(measure_query_time(alg, queries, 10))
        print(f"{method:10} " + "".join(f"{c:>10.0f}us" for c in cells))

    # The full criteria ranking.
    print()
    print(format_table5(table5_ranking(workbench, num_queries=15)))
    print(
        "\nreading guide: IER with the best oracle wins queries almost "
        "everywhere;\nINE wins preprocessing (no index) and very dense "
        "objects; DisBrw pays a\nquadratic index for competitive queries "
        "on small networks."
    )


if __name__ == "__main__":
    main()
