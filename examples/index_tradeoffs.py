"""Scenario: choosing a kNN method for your deployment (mini Table 5).

Builds every road-network index on one network, measures construction
time, memory and mean query time at several densities, and prints a
ranking table — the decision matrix the paper's conclusions give to
practitioners.  The engine's ``method="auto"`` planner encodes the same
matrix's headline row, shown at the end.

Run:  python examples/index_tradeoffs.py
"""

import time

from repro import QueryEngine, road_network, uniform_objects
from repro.experiments.runner import measure_query_time, random_queries
from repro.experiments.tables import format_table5, table5_ranking


def main() -> None:
    graph = road_network(2000, seed=31, name="demo")
    engine = QueryEngine(graph, [])
    workbench = engine.workbench
    print(f"network: {graph}\n")

    # Force-build all indexes and report preprocessing costs.
    rows = []
    rows.append(("INE (graph only)", 0.0, graph.size_bytes() / 1024))
    start = time.perf_counter()
    gtree = workbench.gtree
    rows.append(("G-tree", gtree.build_time(), gtree.size_bytes() / 1024))
    road = workbench.road
    rows.append(("ROAD", road.build_time(), road.size_bytes() / 1024))
    labels = workbench.hub_labels
    rows.append(("Hub labels (PHL)", labels.build_time(), labels.size_bytes() / 1024))
    silc = workbench.silc
    rows.append(("SILC (DisBrw)", silc.build_time(), silc.size_bytes() / 1024))
    print(f"{'index':18} {'build (s)':>10} {'size (KB)':>10}")
    for name, build, size in rows:
        print(f"{name:18} {build:>10.2f} {size:>10.0f}")

    # Query time per method across sparse / typical / dense object sets.
    print(f"\n{'method':10} " + "".join(f"{d:>12}" for d in (0.001, 0.01, 0.1)))
    queries = random_queries(graph, 25, seed=5)
    density_engines = {
        density: engine.with_objects(
            uniform_objects(graph, density, seed=1, minimum=10)
        )
        for density in (0.001, 0.01, 0.1)
    }
    for method in engine.available_methods():
        cells = []
        for density, dense_engine in density_engines.items():
            alg = dense_engine.algorithm(method)
            cells.append(measure_query_time(alg, queries, 10))
        print(f"{method:10} " + "".join(f"{c:>10.0f}us" for c in cells))

    # What would the auto planner run?
    planned = {
        density: e.plan(k=10) for density, e in density_engines.items()
    }
    print("\nauto planner choice per density: " + ", ".join(
        f"{d} -> {m}" for d, m in planned.items()
    ))

    # The full criteria ranking (accepts the engine directly).
    print()
    print(format_table5(table5_ranking(engine, num_queries=15)))
    print(
        "\nreading guide: IER with the best oracle wins queries almost "
        "everywhere;\nINE wins preprocessing (no index) and very dense "
        "objects; DisBrw pays a\nquadratic index for competitive queries "
        "on small networks."
    )


if __name__ == "__main__":
    main()
