"""Quickstart: answer kNN queries on a road network five different ways.

Builds a synthetic road network, drops a set of points of interest on it,
and answers the same k-nearest-neighbour query with each of the paper's
five methods — demonstrating that they agree exactly while costing very
different amounts of work.

Run:  python examples/quickstart.py
"""

from repro import (
    DistanceBrowsing,
    GTree,
    GTreeKNN,
    GTreeOracle,
    HubLabels,
    IER,
    INE,
    RoadIndex,
    RoadKNN,
    SILCIndex,
    road_network,
    uniform_objects,
)
from repro.utils.counters import Counters


def main() -> None:
    # A 2000-vertex "country": dense city cores, sparse countryside,
    # ~30% degree-2 chain vertices — the structure the DIMACS datasets
    # exhibit.
    graph = road_network(2000, seed=7)
    print(f"network: {graph}")

    # One object per ~100 vertices, like a typical real POI category.
    objects = uniform_objects(graph, density=0.01, seed=1)
    print(f"objects: {len(objects)} POIs\n")

    query, k = 42, 5

    # 1. INE: Dijkstra-style expansion (no road-network index).
    ine = INE(graph, objects)

    # 2. G-tree: partition hierarchy with distance-matrix assembly.
    gtree = GTree(graph)
    gtree_knn = GTreeKNN(gtree, objects)

    # 3. ROAD: Rnet hierarchy with shortcut-based bypassing.
    road = RoadIndex(graph)
    road_knn = RoadKNN(road, objects)

    # 4. Distance Browsing over the SILC path oracle.
    silc = SILCIndex(graph)
    disbrw = DistanceBrowsing(silc, objects)

    # 5. IER — the paper's revived method — with two oracles:
    #    hub labels (the PHL stand-in) and materialized G-tree.
    ier_phl = IER(graph, objects, HubLabels(graph))
    ier_gt = IER(graph, objects, GTreeOracle(gtree))

    methods = [ine, gtree_knn, road_knn, disbrw, ier_phl, ier_gt]
    print(f"k={k} nearest objects from vertex {query}:")
    reference = None
    for alg in methods:
        counters = Counters()
        result = alg.knn(query, k, counters=counters)
        distances = ", ".join(f"{d:.2f}" for d, _ in result)
        print(f"  {alg.name:12} -> [{distances}]  {counters.as_dict()}")
        if reference is None:
            reference = [d for d, _ in result]
        else:
            assert all(
                abs(a - b) < 1e-6 for a, b in zip(reference, (d for d, _ in result))
            ), f"{alg.name} disagrees!"
    print("\nall methods agree.")


if __name__ == "__main__":
    main()
