"""Quickstart: serve kNN queries through the unified QueryEngine.

Builds a synthetic road network, drops a set of points of interest on it,
and answers the same k-nearest-neighbour query through every registered
method via one :class:`repro.QueryEngine` — demonstrating that they agree
exactly while costing very different amounts of work, and that the
engine's planner picks a sensible method on its own.

Run:  python examples/quickstart.py
"""

from repro import QueryEngine, road_network, uniform_objects


def main() -> None:
    # A 2000-vertex "country": dense city cores, sparse countryside,
    # ~30% degree-2 chain vertices — the structure the DIMACS datasets
    # exhibit.
    graph = road_network(2000, seed=7)
    print(f"network: {graph}")

    # One object per ~100 vertices, like a typical real POI category.
    objects = uniform_objects(graph, density=0.01, seed=1)
    print(f"objects: {len(objects)} POIs\n")

    # One engine binds the network's (lazily built, shared) indexes to
    # the object set; every registered method is served through it.
    engine = QueryEngine(graph, objects)
    query, k = 42, 5

    # method="auto": the planner reads the workload's object density and
    # picks INE (dense) or an IER/G-tree method (sparse).
    auto = engine.query(query, k)
    print(f"auto-planned method for density {engine.density:.3f}: {auto.method}\n")

    # explain() runs every method on the same query; each KNNResult
    # carries the method name, wall time and its internal counters.
    print(f"k={k} nearest objects from vertex {query}:")
    reference = None
    for method, result in engine.explain(query, k).items():
        distances = ", ".join(f"{d:.2f}" for d, _ in result)
        print(
            f"  {method:12} -> [{distances}]  "
            f"{result.time_us:7.0f}us  {result.counters.as_dict()}"
        )
        if reference is None:
            reference = result.distances
        else:
            assert all(
                abs(a - b) < 1e-6 for a, b in zip(reference, result.distances)
            ), f"{method} disagrees!"
    print("\nall methods agree.")

    # Batched workloads reuse the indexes and algorithm instances — the
    # unit the paper's figures time.
    workload = range(0, graph.num_vertices, 100)
    results = engine.batch(workload, k=k)
    mean_us = sum(r.time_us for r in results) / len(results)
    print(f"\nbatch of {len(results)} queries: {mean_us:.0f}us/query mean")

    # Results still behave like the raw [(distance, vertex), ...] lists.
    first = results[0]
    distance, vertex = first[0]
    assert (distance, vertex) == first.as_tuples()[0]

    # Adding a sixth method is one decorated builder — see
    # repro/engine/registry.py:
    #
    #     from repro import register_method
    #
    #     @register_method("mymethod", summary="my kNN method",
    #                      requires=("gtree",))
    #     def _build(bench, objects, **kwargs):
    #         return MyKNN(bench.gtree, objects, **kwargs)
    #
    # after which engine.query(q, k, method="mymethod") just works.


if __name__ == "__main__":
    main()
