"""Scenario: a map service answering "nearest hospital / fast food" queries.

This is the workload the paper's introduction motivates: one road-network
index shared across many POI categories (decoupled indexing), with small
per-category object indexes that are cheap to build and swap at query
time.

The script builds one :class:`repro.QueryEngine` per POI category over a
*shared* index cache (``engine.with_objects``), so the road-network
indexes are built once and only the tiny object indexes differ — the
paper's Section 7.4 measurement — then serves kNN queries per category.

Run:  python examples/city_poi_search.py
"""

import time

from repro import QueryEngine, road_network, verify_knn_result
from repro.index.gtree import OccurrenceList
from repro.objects import poi_object_sets
from repro.objects.indexes import object_index_costs


def main() -> None:
    graph = road_network(3000, seed=11)
    print(f"road network: {graph}")

    # Road-network indexes: built once (inside the engine's shared index
    # cache), reused for every POI category.
    engine = QueryEngine(graph, [])
    bench = engine.workbench
    start = time.perf_counter()
    gtree = bench.gtree
    road = bench.road
    labels = bench.hub_labels
    print(
        f"road-network indexes built in {time.perf_counter() - start:.1f}s "
        f"(G-tree {gtree.size_bytes() / 1024:.0f} KB, "
        f"ROAD {road.size_bytes() / 1024:.0f} KB, "
        f"labels {labels.size_bytes() / 1024:.0f} KB)\n"
    )

    poi_sets = poi_object_sets(graph, seed=3)
    query = 1500  # a resident somewhere in the network
    k = 3

    print(f"{'category':14} {'|O|':>5} {'obj-index build':>16} {'kNN (us)':>9}   results")
    for category, objects in sorted(poi_sets.items(), key=lambda kv: -len(kv[1])):
        costs = object_index_costs(graph, gtree, road, objects)
        build_us = costs["occurrence_list"]["build_time_s"] * 1e6

        # Swap in this category's object set: same shared road indexes,
        # fresh (tiny) object index.
        category_engine = engine.with_objects(objects)
        result = category_engine.query(query, k, method="ier-phl")
        shown = ", ".join(f"v{v}@{d:.1f}" for d, v in result)
        print(
            f"{category:14} {len(objects):>5} {build_us:>13.0f} us "
            f"{result.time_us:>9.0f}   [{shown}]"
        )

    # Decoupled indexing at work: updating one category's objects only
    # rebuilds that category's (tiny) object index.
    hospitals = poi_sets["hospitals"]
    start = time.perf_counter()
    OccurrenceList(gtree, hospitals)
    rebuild_us = (time.perf_counter() - start) * 1e6
    print(
        f"\nrebuilding the hospitals occurrence list after an update: "
        f"{rebuild_us:.0f} us (the road-network index is untouched)"
    )

    # Sanity: IER agrees with plain INE (distances compared with a float
    # tolerance — different methods sum edge weights in different orders).
    hospital_engine = engine.with_objects(hospitals)
    assert verify_knn_result(
        hospital_engine.query(query, k, method="ier-phl").as_tuples(),
        hospital_engine.query(query, k, method="ine").as_tuples(),
        rel_tol=1e-9,
    )
    print("IER results verified against INE.")


if __name__ == "__main__":
    main()
