"""Setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
517/660 editable installs (which build a wheel) fail.  ``python setup.py
develop`` / ``pip install -e . --no-build-isolation`` route through this
shim instead; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
