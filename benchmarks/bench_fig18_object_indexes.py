"""Figure 18: object-index size and construction time vs density.

Paper shape: the raw object list (INE) is the size lower bound; all
object indexes are far smaller and far faster to build than road-network
indexes; R-trees build significantly faster than the hierarchy-bound
Occurrence List / Association Directory at scale; object storage
gradually dominates index size as density rises.
"""

from repro.experiments import figures

from _bench_utils import run_once

DENSITIES = (0.003, 0.03, 0.3)


def test_fig18_shape(benchmark, us):
    size, build = run_once(
        benchmark,
        lambda: figures.fig18_object_indexes(us, densities=DENSITIES),
    )
    print()
    print(size.format_text())
    print(build.format_text())
    for d in DENSITIES:
        # INE's raw list lower-bounds the structured indexes.
        assert size.at("INE", d) <= size.at("IER/DB", d)
        assert size.at("INE", d) <= size.at("G-tree", d)
    # Sizes grow with density for every index.
    for label in ("INE", "IER/DB", "G-tree", "ROAD"):
        assert size.at(label, DENSITIES[-1]) > size.at(label, DENSITIES[0])
    # Object indexes are orders of magnitude smaller than the road
    # network index.
    assert size.at("G-tree", DENSITIES[-1]) * 1024 < us.gtree.size_bytes()
