"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark ``fn`` once and return its result.

    Shape-reproduction benchmarks compute a whole figure; a single round
    keeps the suite fast while still registering a timing row.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_queries(benchmark, algorithm, queries, k, rounds=3):
    """Benchmark a kNN workload; reports time per workload execution."""

    def workload():
        for q in queries:
            algorithm.knn(int(q), k)

    benchmark.pedantic(workload, rounds=rounds, iterations=1)
