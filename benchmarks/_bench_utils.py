"""Helpers shared by the benchmark modules.

``shared_store`` gives every benchmark session a persistent
:class:`repro.store.IndexStore`: the first run of the suite pays the
index builds (and the fig-08 / fig-26 preprocessing benchmarks record
their wall-times into the artifacts), every later run warm-starts from
disk.  Point ``REPRO_BENCH_STORE`` somewhere else — or at an empty
directory — to control where artifacts live or to force a cold run.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.store import IndexStore

#: Default on-disk location for benchmark index artifacts (gitignored).
DEFAULT_STORE_DIR = Path(__file__).resolve().parent / ".store"


def shared_store() -> IndexStore:
    """The session-shared index store backing all benchmark workbenches.

    An unset *or empty* ``REPRO_BENCH_STORE`` falls back to the default
    directory, so ``REPRO_BENCH_STORE= pytest benchmarks`` cannot
    scatter artifacts into the current working directory.
    """
    root = os.environ.get("REPRO_BENCH_STORE") or str(DEFAULT_STORE_DIR)
    return IndexStore(root)


def run_once(benchmark, fn):
    """Benchmark ``fn`` once and return its result.

    Shape-reproduction benchmarks compute a whole figure; a single round
    keeps the suite fast while still registering a timing row.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_queries(benchmark, algorithm, queries, k, rounds=3):
    """Benchmark a kNN workload; reports time per workload execution."""

    def workload():
        for q in queries:
            algorithm.knn(int(q), k)

    benchmark.pedantic(workload, rounds=rounds, iterations=1)
