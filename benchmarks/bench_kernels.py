#!/usr/bin/env python
"""Kernel benchmark: python vs array hot paths, with equality guards.

Measures the three headline kernels of the array layer on one synthetic
road network and writes ``BENCH_kernels.json``:

* point-to-point Dijkstra (``dijkstra_distance``), both kernels;
* INE kNN (``INE`` graph variant), both kernels;
* index builds — G-tree full construction and the TNR transit table —
  both kernels.

Every timed comparison is also a *correctness gate*: answers must be
byte-identical and settled-vertex counters must match exactly between
kernels, and index distances are cross-checked against plain Dijkstra.
A failed check exits non-zero, so the CI ``perf-smoke`` job (which runs
``--quick``) turns any silent fast-path drift into a red build.

Usage::

    python benchmarks/bench_kernels.py                # ~10k vertices
    python benchmarks/bench_kernels.py --quick        # CI-sized run
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # direct script runs without install
    sys.path.insert(0, str(REPO_SRC))

import numpy as np  # noqa: E402

from repro.graph.generators import road_network  # noqa: E402
from repro.index.gtree import GTree  # noqa: E402
from repro.knn.ine import INE  # noqa: E402
from repro.objects import uniform_objects  # noqa: E402
from repro.pathfinding.ch import ContractionHierarchy  # noqa: E402
from repro.pathfinding.dijkstra import (  # noqa: E402
    dijkstra_distance,
)
from repro.pathfinding.tnr import TransitNodeRouting  # noqa: E402
from repro.utils.counters import Counters  # noqa: E402

from report import write_report  # noqa: E402

KERNELS = ("python", "array")


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_p2p(graph, pairs, repeats: int, failures: List[str]) -> Dict:
    answers: Dict[str, List] = {}
    times: Dict[str, float] = {}
    for kernel in KERNELS:
        rows = []
        for s, t in pairs:
            c = Counters()
            d = dijkstra_distance(graph, s, t, counters=c, kernel=kernel)
            rows.append((d, c["dijkstra_settled"]))
        answers[kernel] = rows
        times[kernel] = _best_of(
            repeats,
            lambda k=kernel: [
                dijkstra_distance(graph, s, t, kernel=k) for s, t in pairs
            ],
        )
    for (dp, cp), (da, ca) in zip(answers["python"], answers["array"]):
        if dp != da:
            failures.append(f"p2p distance mismatch: {dp!r} != {da!r}")
        if cp != ca:
            failures.append(f"p2p settled-counter mismatch: {cp} != {ca}")
    per_query = {k: times[k] / len(pairs) * 1e3 for k in KERNELS}
    return {
        "queries": len(pairs),
        "python_ms_per_query": per_query["python"],
        "array_ms_per_query": per_query["array"],
        "speedup": per_query["python"] / per_query["array"],
        "distances_identical": all(
            a[0] == b[0] for a, b in zip(answers["python"], answers["array"])
        ),
        "settled_counters_identical": all(
            a[1] == b[1] for a, b in zip(answers["python"], answers["array"])
        ),
    }


def bench_ine(graph, objects, queries, k: int, repeats: int,
              failures: List[str]) -> Dict:
    algs = {kern: INE(graph, objects, kernel=kern) for kern in KERNELS}
    answers: Dict[str, List] = {}
    times: Dict[str, float] = {}
    for kernel, alg in algs.items():
        rows = []
        for q in queries:
            c = Counters()
            res = alg.knn(q, k, counters=c)
            rows.append((res, c["ine_settled"]))
        answers[kernel] = rows
        times[kernel] = _best_of(
            repeats, lambda a=alg: [a.knn(q, k) for q in queries]
        )
    for (rp, cp), (ra, ca) in zip(answers["python"], answers["array"]):
        if rp != ra:
            failures.append(f"INE answer mismatch: {rp!r} != {ra!r}")
        if cp != ca:
            failures.append(f"INE settled-counter mismatch: {cp} != {ca}")
    per_query = {kern: times[kern] / len(queries) * 1e3 for kern in KERNELS}
    return {
        "queries": len(queries),
        "k": k,
        "objects": len(objects),
        "python_ms_per_query": per_query["python"],
        "array_ms_per_query": per_query["array"],
        "speedup": per_query["python"] / per_query["array"],
        "answers_identical": all(
            a[0] == b[0] for a, b in zip(answers["python"], answers["array"])
        ),
        "settled_counters_identical": all(
            a[1] == b[1] for a, b in zip(answers["python"], answers["array"])
        ),
    }


def bench_gtree_build(graph, sample_pairs, failures: List[str]) -> Dict:
    times: Dict[str, float] = {}
    trees: Dict[str, GTree] = {}
    for kernel in KERNELS:
        best = float("inf")
        for _ in range(2):  # best-of-2 damps allocator/GC noise
            start = time.perf_counter()
            trees[kernel] = GTree(graph, kernel=kernel)
            best = min(best, time.perf_counter() - start)
        times[kernel] = best
    worst = 0.0
    for s, t in sample_pairs:
        ref = dijkstra_distance(graph, s, t)
        for kernel in KERNELS:
            d = trees[kernel].distance(s, t)
            rel = abs(d - ref) / max(abs(ref), 1.0)
            worst = max(worst, rel)
            if rel > 1e-9:
                failures.append(
                    f"gtree[{kernel}] distance off by {rel:.2e} on ({s},{t})"
                )
    return {
        "python_s": times["python"],
        "array_s": times["array"],
        "speedup": times["python"] / times["array"],
        "verified_pairs": len(sample_pairs),
        "worst_rel_error_vs_dijkstra": worst,
    }


def bench_tnr_build(graph, sample_pairs, failures: List[str]) -> Dict:
    # One shared CH isolates the kernels' difference: the transit table.
    ch = ContractionHierarchy(graph)
    times: Dict[str, float] = {}
    indexes: Dict[str, TransitNodeRouting] = {}
    for kernel in KERNELS:
        start = time.perf_counter()
        indexes[kernel] = TransitNodeRouting(graph, ch=ch, kernel=kernel)
        times[kernel] = time.perf_counter() - start
    table_diff = float(
        np.max(np.abs(indexes["python"].table - indexes["array"].table))
    ) if indexes["python"].table.size else 0.0
    if table_diff > 1e-9:
        failures.append(f"TNR tables differ by {table_diff:.2e}")
    for s, t in sample_pairs:
        ref = dijkstra_distance(graph, s, t)
        for kernel in KERNELS:
            d = indexes[kernel].distance(s, t)
            if abs(d - ref) > 1e-9 * max(abs(ref), 1.0):
                failures.append(
                    f"tnr[{kernel}] distance {d!r} != dijkstra {ref!r}"
                )
    return {
        "python_s": times["python"],
        "array_s": times["array"],
        "speedup": times["python"] / times["array"],
        "transit_nodes": len(indexes["array"].transit_nodes),
        "max_table_diff": table_diff,
        "verified_pairs": len(sample_pairs),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=10000)
    parser.add_argument("--tnr-vertices", type=int, default=3000,
                        help="graph size for the TNR build comparison (its "
                             "python kernel runs t^2/2 CH queries)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--density", type=float, default=0.01)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (small graph, fewer queries)")
    parser.add_argument("--json", default="BENCH_kernels.json",
                        help="report path ('' disables)")
    args = parser.parse_args(argv)
    run_started = time.time()
    if args.quick:
        args.vertices = min(args.vertices, 2000)
        args.tnr_vertices = min(args.tnr_vertices, 1000)
        args.queries = min(args.queries, 15)

    failures: List[str] = []
    graph = road_network(args.vertices, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    pairs = [
        (int(rng.integers(graph.num_vertices)),
         int(rng.integers(graph.num_vertices)))
        for _ in range(args.queries)
    ]
    queries = [int(rng.integers(graph.num_vertices))
               for _ in range(args.queries)]
    objects = uniform_objects(graph, args.density, seed=args.seed,
                              minimum=args.k)
    print(f"{graph}: {args.queries} queries, k={args.k}, "
          f"density={args.density}")

    p2p = bench_p2p(graph, pairs, args.repeats, failures)
    print(f"  p2p dijkstra   python {p2p['python_ms_per_query']:8.2f} ms   "
          f"array {p2p['array_ms_per_query']:8.2f} ms   "
          f"{p2p['speedup']:5.1f}x")
    ine = bench_ine(graph, objects, queries, args.k, args.repeats, failures)
    print(f"  INE kNN        python {ine['python_ms_per_query']:8.2f} ms   "
          f"array {ine['array_ms_per_query']:8.2f} ms   "
          f"{ine['speedup']:5.1f}x")
    gtree = bench_gtree_build(graph, pairs[: min(20, len(pairs))], failures)
    print(f"  gtree build    python {gtree['python_s']:8.2f} s    "
          f"array {gtree['array_s']:8.2f} s    {gtree['speedup']:5.1f}x")

    tnr_graph = road_network(args.tnr_vertices, seed=args.seed + 1)
    tnr_rng = np.random.default_rng(args.seed + 1)
    tnr_pairs = [
        (int(tnr_rng.integers(tnr_graph.num_vertices)),
         int(tnr_rng.integers(tnr_graph.num_vertices)))
        for _ in range(min(10, args.queries))
    ]
    tnr = bench_tnr_build(tnr_graph, tnr_pairs, failures)
    print(f"  tnr table      python {tnr['python_s']:8.2f} s    "
          f"array {tnr['array_s']:8.2f} s    {tnr['speedup']:5.1f}x   "
          f"(|T|={tnr['transit_nodes']}, V={tnr_graph.num_vertices})")

    report = {
        "bench": "kernels",
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "seed": args.seed,
        "quick": args.quick,
        "p2p_dijkstra": p2p,
        "ine_knn": ine,
        "gtree_build": gtree,
        "tnr_build": {**tnr, "vertices": tnr_graph.num_vertices},
        "failures": failures,
    }
    if args.json:
        write_report(args.json, report, run_started)
        print(f"  report written to {args.json}")
    if failures:
        for line in failures:
            print(f"  !! {line}", file=sys.stderr)
        return 1
    print("  all cross-kernel equality checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
