"""Figure 9: query time vs network size + method-internal statistics.

Paper shape: IER-based methods win at every size; INE is roughly flat
with |V| (same density => similar search spaces); G-tree's border-to-
border "path cost" grows with |V| while ROAD's bypassed-vertex count
stays comparatively stable — the mechanism behind G-tree's shrinking
lead on large networks.
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig09_shape(benchmark, suite):
    times, stats = run_once(
        benchmark,
        lambda: figures.fig09_network_size(suite, num_queries=12),
    )
    print()
    print(times.format_text())
    print(stats.format_text())
    sizes = sorted(n for n, _ in times.series["ine"])
    largest = sizes[-1]
    # IER-PHL beats INE and ROAD at every size.
    for n in sizes:
        assert times.at("ier-phl", n) < times.at("ine", n)
        assert times.at("ier-phl", n) < times.at("road", n)
    # G-tree's matrix path cost grows with network size.
    costs = [stats.at("Gtree path cost", n) for n in sizes]
    assert costs[-1] > costs[0]
    # ROAD bypass counts are recorded and positive on the largest net.
    assert stats.at("ROAD bypassed", largest) > 0
