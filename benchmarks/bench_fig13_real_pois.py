"""Figure 13: query time per named POI set (NW and US analogues).

Paper shape: sets ordered by decreasing size behave like decreasing
density — every method slows as sets shrink; INE degrades worst on the
sparse sets (courthouses); IER variants win on most sets.
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig13_nw_shape(benchmark, nw):
    result = run_once(
        benchmark, lambda: figures.fig13_real_pois(nw, num_queries=12)
    )
    print()
    print(result.format_text())
    # Sparse sets are harder for INE than the densest set.
    assert result.at("ine", "courthouses") > result.at("ine", "schools")
    # IER-PHL beats INE on the sparse half of the sets.
    for poi in ("courthouses", "universities", "hospitals"):
        assert result.at("ier-phl", poi) < result.at("ine", poi)


def test_fig13_us_shape(benchmark, us):
    result = run_once(
        benchmark,
        lambda: figures.fig13_real_pois(
            us, num_queries=8, methods=("ine", "road", "gtree", "ier-gt")
        ),
    )
    print()
    print(result.format_text())
    assert result.at("ier-gt", "courthouses") < result.at("ine", "courthouses")
