"""Server throughput: concurrent serving vs sequential engine queries.

Not a paper figure — this benchmarks the serving layer the ROADMAP's
north star asks for.  Shape claims:

* a 4-worker server with result caching sustains a multiple of the
  single-threaded sequential QPS on a Zipf-skewed (hotspot) workload;
* the result cache absorbs the hot set (hit rate well above half);
* tail latency stays bounded (p99 under tens of milliseconds at this
  scale).

The workbench warm-starts from the shared benchmark store, so serve
time performs zero index builds (asserted via ``BUILD_COUNTERS``).
"""

from repro.engine import QueryEngine
from repro.objects import uniform_objects
from repro.server import (
    KNNServer,
    hotspot_workload,
    run_closed_loop,
    sequential_baseline,
    uniform_workload,
)
from repro.utils.counters import BUILD_COUNTERS

from _bench_utils import run_once
from report import write_report

REQUESTS = 600
K = 5


def _engine(nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    return QueryEngine(workbench=nw, objects=objects)


def test_server_hotspot_throughput(benchmark, nw):
    import time

    run_started = time.time()
    engine = _engine(nw)
    items = hotspot_workload(
        nw.graph, REQUESTS, K, hot_vertices=64, skew=1.2, seed=3
    )
    baseline_qps, _ = sequential_baseline(engine, items)
    server = KNNServer(engine, workers=4)
    server.start(warmup_methods=["auto"])
    builds_before = sum(BUILD_COUNTERS.as_dict().values())

    def drive():
        server.cache.invalidate()  # each round re-fills the cache
        return run_closed_loop(server, items, concurrency=16)

    try:
        report = run_once(benchmark, drive)
    finally:
        server.stop()
    print()
    print(
        f"sequential {baseline_qps:8.0f} qps | server "
        f"{report.throughput_qps:8.0f} qps ({report.throughput_qps / baseline_qps:.1f}x) | "
        f"p50 {report.latency_p50_ms:.2f}ms p99 {report.latency_p99_ms:.2f}ms | "
        f"cache hit rate {report.server_stats['cache']['hit_rate']:.0%}"
    )
    write_report(
        "BENCH_server_throughput.json",
        {
            "bench": "server_throughput",
            "requests": REQUESTS,
            "k": K,
            "baseline_qps": baseline_qps,
            "hotspot": report.to_dict(),
        },
        run_started,
    )
    assert sum(BUILD_COUNTERS.as_dict().values()) == builds_before
    assert report.completed == REQUESTS
    assert report.throughput_qps > 2 * baseline_qps
    assert report.server_stats["cache"]["hit_rate"] > 0.5
    assert report.latency_p99_ms < 100.0


def test_server_uniform_throughput(benchmark, nw):
    """Cache-hostile floor: uniform traffic, caching barely helps."""
    engine = _engine(nw)
    items = uniform_workload(nw.graph, REQUESTS, K, seed=3)
    server = KNNServer(engine, workers=4)
    server.start(warmup_methods=["auto"])
    try:
        report = run_once(
            benchmark, lambda: run_closed_loop(server, items, concurrency=16)
        )
    finally:
        server.stop()
    assert report.completed == REQUESTS
    assert report.throughput_qps > 0
