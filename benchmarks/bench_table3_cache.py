"""Table 3: cache profile of the distance-matrix layouts.

Paper shape (perf counters, 250k queries): the array layout executes ~6x
fewer instructions and suffers ~20-50x fewer cache misses than chained
hashing; quadratic probing executes the *most* instructions but misses
less than chaining.
"""

from repro.experiments.cache_study import format_table3, table3_cache_profile

from _bench_utils import run_once


def test_table3_shape(benchmark, nw):
    profile = run_once(
        benchmark,
        lambda: table3_cache_profile(nw.graph, num_queries=40, gtree=nw.gtree),
    )
    print()
    print(format_table3(profile))
    array = profile["Array"]
    chained = profile["Chained Hashing"]
    probing = profile["Quadratic Probing"]
    # Instruction ordering: array < chained < probing (paper's INS column).
    assert array["INS"] < chained["INS"] < probing["INS"]
    # Miss ordering per level: array << probing <= chained.
    for level in ("L1", "L2", "L3"):
        assert array[level] * 3 < probing[level]
        assert probing[level] <= chained[level] * 1.05
    assert chained["L1"] > 5 * array["L1"]
