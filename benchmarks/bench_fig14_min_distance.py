"""Figure 14: minimum-object-distance sets (query remoteness).

Paper shape: INE deteriorates exponentially as objects move away; the
Euclidean bound loosens with distance so IER degrades too; G-tree scales
best thanks to materialized hierarchy paths.
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig14_shape(benchmark, nw):
    result = run_once(
        benchmark,
        lambda: figures.fig14_min_distance(nw, num_sets=4, num_queries=10),
    )
    print()
    print(result.format_text())
    # INE's cost explodes with remoteness.
    assert result.at("ine", "R4") > 1.3 * result.at("ine", "R1")
    # G-tree scales far better than INE.
    gtree_ratio = result.at("gtree", "R4") / result.at("gtree", "R1")
    ine_ratio = result.at("ine", "R4") / result.at("ine", "R1")
    assert gtree_ratio < ine_ratio
    # G-tree beats INE outright on the remotest set.
    assert result.at("gtree", "R4") < result.at("ine", "R4")
