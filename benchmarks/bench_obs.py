"""Observability overhead: the layer must cost <= 3% with tracing off.

Times identical kNN workloads through ``QueryEngine.query`` in three
modes and writes ``BENCH_obs.json``:

* ``off``   — :func:`repro.obs.disabled`: no registry flush, no spans
  (the baseline);
* ``on``    — the shipped default: per-query counter/histogram flush
  into the registry, tracing off;
* ``trace`` — :func:`repro.obs.tracing` active: span trees on every
  query (reported, not gated — tracing is opt-in).

Gates, per hot-path method (INE and G-tree):

* ``on`` vs ``off`` overhead within ``--budget`` (default 3%);
* answers byte-identical across all three modes.

The estimator is built for noisy shared machines: each measurement is a
*pair* of short adjacent samples (one per mode, order alternating
between pairs so neither mode systematically runs second), the overhead
is the median of the per-pair ratios over ``--pairs`` pairs, and a
gated method that lands over budget is re-measured up to ``--attempts``
times keeping the minimum — noise only ever inflates the ratio, so the
minimum is the best estimate of the true overhead.

Usage::

    python benchmarks/bench_obs.py            # full run
    python benchmarks/bench_obs.py --quick    # CI-sized run
"""

from __future__ import annotations

import argparse
import contextlib
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # direct script runs without install
    sys.path.insert(0, str(REPO_SRC))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.engine.engine import QueryEngine  # noqa: E402
from repro.graph.generators import road_network  # noqa: E402
from repro.objects import uniform_objects  # noqa: E402

from report import write_report  # noqa: E402

#: Hot-path methods under the overhead gate.
GATED_METHODS = ("ine", "gtree")


def _answers(engine: QueryEngine, method: str, queries, k: int):
    return [
        tuple((n.distance, n.vertex) for n in engine.query(q, k, method=method))
        for q in queries
    ]


def _time_workload(engine: QueryEngine, method: str, queries, k: int) -> float:
    start = time.perf_counter()
    for q in queries:
        engine.query(q, k, method=method)
    return time.perf_counter() - start


def _paired_overhead(
    engine: QueryEngine,
    method: str,
    queries,
    k: int,
    pairs: int,
    mode,
) -> Dict[str, float]:
    """Median per-pair ``mode``-vs-disabled ratio, order-alternating.

    ``mode`` is a zero-arg contextmanager factory for the instrumented
    side (``contextlib.nullcontext`` for the shipped default,
    ``obs.tracing`` for tracing).  Each pair's two samples are adjacent
    in time so slow stretches of a shared machine hit both sides, and
    the order flips every pair so neither side always pays the
    second-run cost.
    """
    ratios: List[float] = []
    off_total = on_total = 0.0
    for i in range(pairs):
        if i % 2 == 0:
            with obs.disabled():
                off = _time_workload(engine, method, queries, k)
            with mode():
                on = _time_workload(engine, method, queries, k)
        else:
            with mode():
                on = _time_workload(engine, method, queries, k)
            with obs.disabled():
                off = _time_workload(engine, method, queries, k)
        ratios.append(on / off)
        off_total += off
        on_total += on
    return {
        "overhead": statistics.median(ratios) - 1.0,
        "off_s": off_total,
        "on_s": on_total,
    }


def bench_method(
    engine: QueryEngine,
    method: str,
    queries,
    k: int,
    pairs: int,
    attempts: int,
    failures: List[str],
    budget: float,
) -> Dict:
    # Warm indexes, algorithm instances and the registry's label
    # children before any timing, then check byte-identity once.
    baseline = _answers(engine, method, queries, k)
    with obs.disabled():
        if _answers(engine, method, queries, k) != baseline:
            failures.append(f"{method}: answers differ with obs disabled")
    with obs.tracing():
        if _answers(engine, method, queries, k) != baseline:
            failures.append(f"{method}: answers differ with tracing on")

    # Gated comparison: default-on vs disabled, re-measured on a miss.
    gated = method in GATED_METHODS
    overhead_on = float("inf")
    used_attempts = 0
    sample = None
    for _ in range(attempts if gated else 1):
        used_attempts += 1
        sample = _paired_overhead(
            engine, method, queries, k, pairs, contextlib.nullcontext
        )
        overhead_on = min(overhead_on, sample["overhead"])
        if overhead_on <= budget:
            break
    if gated and overhead_on > budget:
        failures.append(
            f"{method}: default-on overhead {overhead_on:.1%} exceeds "
            f"the {budget:.0%} budget ({used_attempts} attempts)"
        )

    # Tracing overhead is reported, not gated — half the pairs suffice.
    trace_sample = _paired_overhead(
        engine, method, queries, k, max(1, pairs // 2), obs.tracing
    )
    return {
        "off_s": sample["off_s"],
        "on_s": sample["on_s"],
        "pairs": pairs,
        "attempts": used_attempts,
        "overhead_on": overhead_on,
        "overhead_trace": trace_sample["overhead"],
        "per_query_off_us": sample["off_s"] / (len(queries) * pairs) * 1e6,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--density", type=float, default=0.01)
    parser.add_argument("--pairs", type=int, default=75,
                        help="off/on sample pairs per overhead estimate")
    parser.add_argument("--attempts", type=int, default=3,
                        help="re-measurements before failing the gate")
    parser.add_argument("--budget", type=float, default=0.03,
                        help="max default-on overhead vs disabled (0.03 = 3%%)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (smaller graph, fewer queries)")
    parser.add_argument("--json", default="BENCH_obs.json",
                        help="report path ('' disables)")
    args = parser.parse_args(argv)
    run_started = time.time()
    if args.quick:
        args.vertices = min(args.vertices, 2000)
        args.queries = min(args.queries, 40)
        args.pairs = min(args.pairs, 60)

    graph = road_network(args.vertices, seed=args.seed)
    objects = uniform_objects(
        graph, args.density, seed=args.seed, minimum=args.k
    )
    engine = QueryEngine(graph, objects)
    rng = np.random.default_rng(args.seed)
    queries = [int(v) for v in rng.integers(graph.num_vertices, size=args.queries)]

    failures: List[str] = []
    methods: Dict[str, Dict] = {}
    print(f"obs overhead bench: {graph}, |O|={len(objects)}, "
          f"{args.queries} queries, k={args.k}, "
          f"median of {args.pairs} paired ratios")
    for method in GATED_METHODS:
        row = bench_method(
            engine, method, queries, args.k, args.pairs, args.attempts,
            failures, args.budget,
        )
        methods[method] = row
        print(
            f"  {method:6} off {row['per_query_off_us']:7.0f}us/q   "
            f"on {row['overhead_on']:+6.1%}   "
            f"trace {row['overhead_trace']:+6.1%}"
        )

    report = {
        "bench": "obs",
        "vertices": graph.num_vertices,
        "queries": args.queries,
        "k": args.k,
        "pairs": args.pairs,
        "attempts": args.attempts,
        "budget": args.budget,
        "quick": args.quick,
        "methods": methods,
        "failures": failures,
    }
    if args.json:
        write_report(args.json, report, run_started)
        print(f"  report written to {args.json}")
    if failures:
        for line in failures:
            print(f"  !! {line}", file=sys.stderr)
        return 1
    print(f"  default-on overhead within the {args.budget:.0%} budget; "
          "answers identical in all modes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
