"""Figure 7: INE in-memory implementation ladder.

Paper shape: each choice (no-decrease-key queue, byte-array settled set,
flat CSR arrays) roughly halves query time; the final implementation is
6-7x faster than the first cut.  In CPython the queue change is the big
step and the final rung is the fastest overall.
"""

from repro.experiments import figures

from _bench_utils import run_once

KS = (1, 10, 25)
DENSITIES = (0.003, 0.05)


def test_fig07_shape(benchmark, nw):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig07_ine_ablation(
            nw.graph, ks=KS, densities=DENSITIES, num_queries=12
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    # The first cut is the slowest rung; the final "Graph" configuration
    # is within noise of the best rung and clearly ahead of the first
    # cut; the decrease-key queue alone costs ~1.5x.
    rungs = ("1st Cut", "PQueue", "Settled", "Graph")
    assert by_k.mean("1st Cut") == max(by_k.mean(label) for label in rungs)
    assert by_k.mean("Graph") < 1.3 * min(by_k.mean(label) for label in rungs)
    assert by_k.mean("1st Cut") > 1.3 * by_k.mean("Graph")
    assert by_k.mean("1st Cut") > 1.3 * by_k.mean("PQueue")
    for d in DENSITIES:
        assert by_d.at("Graph", d) < by_d.at("1st Cut", d)
