"""Shared envelope for the machine-readable ``BENCH_*.json`` reports.

Every benchmark that emits a report stamps it with the same metadata —
schema version, the run's start timestamp (passed in by the caller),
host facts, the git revision — via :func:`repro.obs.runinfo.run_metadata`,
so trajectory tooling can line reports up across machines and commits
without per-benchmark parsing.  Use::

    run_started = time.time()          # at the top of main()
    ...
    write_report(args.json, report, run_started)
"""

from __future__ import annotations

import json
from typing import Dict

from repro.obs.runinfo import run_metadata


def finalize_report(report: Dict[str, object], run_started: float) -> Dict[str, object]:
    """A copy of ``report`` with the shared ``meta`` envelope attached."""
    out = dict(report)
    out["meta"] = run_metadata(run_started)
    return out


def write_report(
    path: str, report: Dict[str, object], run_started: float
) -> Dict[str, object]:
    """Stamp ``report`` with the shared envelope and write it to ``path``."""
    out = finalize_report(report, run_started)
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
    return out
