"""Figure 6: G-tree distance-matrix layout (array vs hash tables).

Paper shape: the flat array beats chained hashing by >10x and open
addressing by several-fold at every k and density — the study's
"implementation matters" centrepiece.
"""

from repro.experiments import figures

from _bench_utils import run_once

KS = (1, 10, 25)
DENSITIES = (0.003, 0.1)


def test_fig06_shape(benchmark, nw):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig06_matrix_layouts(
            nw.graph, ks=KS, densities=DENSITIES, num_queries=10
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    # The array layout wins at every k and density; chained hashing is
    # the worst hash layout on average.
    for k in KS:
        assert by_k.at("Array", k) <= by_k.at("Quad. Probing", k)
        assert by_k.at("Array", k) <= by_k.at("Chained Hashing", k)
    for d in DENSITIES:
        assert by_d.at("Array", d) <= by_d.at("Chained Hashing", d)
    assert by_k.mean("Array") < 0.8 * by_k.mean("Chained Hashing")
