"""Figures 20/21: the degree-2 chain optimisation for Distance Browsing.

Paper shape: ~30% improvement on ordinary networks (matching their
degree-2 share) and up to an order of magnitude on the 95%-chain highway
network, where chain jumps replace most O(log V) quadtree lookups.
"""

import pytest

from repro.experiments import figures
from repro.experiments.runner import Workbench
from repro.graph.generators import chain_heavy_network

from _bench_utils import run_once


@pytest.fixture(scope="module")
def highway():
    """The NA-highway analogue: overwhelmingly degree-2 chains."""
    return Workbench(chain_heavy_network(1500, seed=3, chain_fraction=0.9))


def test_fig21_normal_network(benchmark, nw):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig20_21_deg2(
            nw, ks=(1, 10), densities=(0.003, 0.05), num_queries=10
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    # The optimisation never hurts meaningfully on a normal network.
    assert by_k.mean("OptDisBrw") < 1.15 * by_k.mean("DisBrw")


def test_fig20_chain_heavy_network(benchmark, highway):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig20_21_deg2(
            highway, ks=(1, 10), densities=(0.01, 0.05), num_queries=10
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    # Chains dominate here: the optimisation wins clearly.
    assert by_k.mean("OptDisBrw") < by_k.mean("DisBrw")
