#!/usr/bin/env python
"""Assert the invariants of a ``BENCH_*.json`` / ``PROFILE.json`` report.

One entry point replaces the per-job ``python - <<'EOF'`` heredocs the
CI workflow used to carry: every smoke leg runs its benchmark, then::

    python benchmarks/check_report.py <bench> <report.json>

``<bench>`` is one of ``server``, ``updates``, ``kernels``, ``obs``,
``profile``, ``chaos``, ``scale``.  Each checker re-asserts what its
benchmark already gated at run time — a report that *reads* green must
also *check* green, so a report-writing regression (dropped field,
renamed key, silently-skipped section) fails CI even when the benchmark
exited zero.  Shared envelope checks (``meta.schema_version``, an empty
``failures`` list, the ``bench`` tag) run for every kind that carries
the field.

Checkers print a one-line ``ok:`` summary and raise
:class:`CheckFailure` with a readable message otherwise; the CLI exits
non-zero on any failure.  ``tests/test_check_report.py`` pins both
directions on fixture reports.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict


class CheckFailure(AssertionError):
    """A report violated one of its invariants."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _shared_checks(report: Dict, expect_bench: str = "") -> None:
    if "meta" in report:
        _require(
            report["meta"].get("schema_version") == 1,
            f"meta.schema_version != 1: {report['meta'].get('schema_version')!r}",
        )
    if "failures" in report:
        _require(
            report["failures"] == [],
            f"failures recorded: {report['failures']}",
        )
    if expect_bench:
        _require(
            report.get("bench") == expect_bench,
            f"bench tag {report.get('bench')!r} != {expect_bench!r}",
        )


def check_server(report: Dict) -> str:
    _shared_checks(report, "server_loadtest")
    _require(
        report["completed"] == report["requests"],
        f"completed {report['completed']} != requested {report['requests']}",
    )
    _require(
        report["serve_time_index_builds"] == 0,
        f"{report['serve_time_index_builds']} indexes were built on "
        f"the serve path",
    )
    _require(report["throughput_qps"] > 0, "throughput_qps is zero")
    _require(
        set(report["latency_ms"]) == {"p50", "p95", "p99", "mean"},
        f"latency_ms keys: {sorted(report['latency_ms'])}",
    )
    return (
        f"ok: {report['throughput_qps']} qps, speedup {report['speedup']}"
    )


def check_updates(report: Dict) -> str:
    _shared_checks(report, "updates")
    for kernel, eq in report["equivalence"].items():
        _require(
            eq["gtree_matrices_identical"],
            f"gtree matrices differ after repair ({kernel})",
        )
        _require(
            eq["road_matrices_identical"],
            f"road matrices differ after repair ({kernel})",
        )
        _require(
            all(eq["answers_identical"].values()),
            f"answers differ after repair ({kernel}): "
            f"{eq['answers_identical']}",
        )
    speedup = report["speedup"]
    _require(
        speedup["meets_5x_floor"],
        f"repair speedup below 5x floor: {speedup}",
    )
    return (
        f"ok: repair {speedup['speedup']:.1f}x vs rebuild, weight repair "
        f"{speedup['weight_repair_speedup_vs_gtree_build']:.1f}x "
        f"vs gtree build"
    )


def check_kernels(report: Dict) -> str:
    _shared_checks(report, "kernels")
    for section, flag in (
        ("p2p_dijkstra", "distances_identical"),
        ("ine_knn", "answers_identical"),
    ):
        stats = report[section]
        _require(stats[flag], f"{section}: kernels disagree")
        _require(
            stats["settled_counters_identical"],
            f"{section}: settled counters differ",
        )
        _require(stats["speedup"] > 0, f"{section}: speedup not positive")
    _require(
        report["gtree_build"]["worst_rel_error_vs_dijkstra"] < 1e-9,
        f"gtree distances drifted: "
        f"{report['gtree_build']['worst_rel_error_vs_dijkstra']}",
    )
    return (
        f"ok: p2p {report['p2p_dijkstra']['speedup']:.1f}x, "
        f"ine {report['ine_knn']['speedup']:.1f}x, "
        f"gtree build {report['gtree_build']['speedup']:.1f}x"
    )


def check_obs(report: Dict) -> str:
    _shared_checks(report, "obs")
    for method, row in report["methods"].items():
        _require(
            row["overhead_on"] <= report["budget"],
            f"{method}: observability overhead {row['overhead_on']:+.1%} "
            f"over budget {report['budget']:.1%}",
        )
    summary = {
        m: f"{r['overhead_on']:+.1%}" for m, r in report["methods"].items()
    }
    return f"ok: {summary}"


def check_profile(report: Dict) -> str:
    _shared_checks(report)
    _require(bool(report["per_method"]), "no per-method latency rows")
    for method, row in report["per_method"].items():
        _require(
            row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"],
            f"{method}: latency percentiles out of order: {row}",
        )
    _require(bool(report["traces"]), "no span trees captured")

    def names(node):
        yield node["name"]
        for child in node.get("children", ()):
            yield from names(child)

    seen = {n for tree in report["traces"] for n in names(tree)}
    _require("knn" in seen, f"no 'knn' span in traces: {sorted(seen)}")
    _require(
        "hit_rate" in report["server"]["cache"],
        "server cache stats lack hit_rate",
    )
    return (
        f"ok: {list(report['per_method'])} "
        f"{report['throughput_qps']:.0f} qps"
    )


def check_chaos(report: Dict) -> str:
    _shared_checks(report, "chaos")
    _require(
        report["availability"] >= 0.99,
        f"availability {report['availability']:.2%} below 99%",
    )
    _require(
        report["answers"]["wrong"] == 0,
        f"wrong answers under chaos: {report['answers']}",
    )
    _require(
        report["breaker_ine"]["opened_total"] >= 1,
        "ine breaker never opened under fault plan",
    )
    _require(
        report["breaker_ine"]["state"] == "closed",
        f"ine breaker stuck {report['breaker_ine']['state']!r}",
    )
    _require(
        report["worker_restarts"] >= 1, "no worker restart observed"
    )
    _require(
        sum(report["quarantined"].values()) >= 1,
        "no artifact quarantined",
    )
    return (
        f"ok: {report['availability']:.2%} available, "
        f"{report['answers']['degraded']} degraded, breaker re-closed, "
        f"{report['worker_restarts']} restart(s), "
        f"quarantined {report['quarantined']}"
    )


def check_scale(report: Dict) -> str:
    _shared_checks(report, "scale")
    eq = report["equivalence"]["checks"]
    for name, passed in eq.items():
        _require(passed, f"equivalence check failed: {name}")
    scale = report["scale"]
    _require(
        scale["answers_identical"], "mmap and materialize answers differ"
    )
    gate = scale["rss_gate"]
    _require(
        gate["passed"],
        f"mmap anonymous RSS delta {gate['mmap_anon_delta_bytes']} >= "
        f"limit {gate['limit_bytes']}",
    )
    if report.get("mode") == "full":
        _require(
            scale["ingest"]["num_vertices"] >= 1_000_000,
            f"full run ingested only "
            f"{scale['ingest']['num_vertices']} vertices",
        )
    mmap_probe = scale["probes"]["mmap"]
    return (
        f"ok: {scale['ingest']['num_vertices']} vertices, mmap anon delta "
        f"{gate['mmap_anon_delta_bytes'] >> 20} MB / footprint "
        f"{gate['footprint_bytes'] >> 20} MB, load {mmap_probe['load_s']:.3f}s"
    )


CHECKERS: Dict[str, Callable[[Dict], str]] = {
    "server": check_server,
    "updates": check_updates,
    "kernels": check_kernels,
    "obs": check_obs,
    "profile": check_profile,
    "chaos": check_chaos,
    "scale": check_scale,
}


def check_report(bench: str, report: Dict) -> str:
    """Run the ``bench`` checker; returns its summary line."""
    try:
        checker = CHECKERS[bench]
    except KeyError:
        raise CheckFailure(
            f"unknown bench {bench!r}; expected one of {sorted(CHECKERS)}"
        ) from None
    try:
        return checker(report)
    except CheckFailure:
        raise
    except (KeyError, TypeError) as exc:
        # A missing/renamed field is itself a schema regression.
        raise CheckFailure(
            f"report is missing an expected field: {exc!r}"
        ) from exc


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            f"usage: check_report.py <{'|'.join(sorted(CHECKERS))}> "
            f"<report.json>",
            file=sys.stderr,
        )
        return 2
    bench, path = argv
    with open(path) as fh:
        report = json.load(fh)
    try:
        print(check_report(bench, report))
    except CheckFailure as exc:
        print(f"FAIL[{bench}]: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
