"""Figures 24 and 27: travel-time parameters and real POIs on the NW
analogue.

Paper shape: IER-PHL generally best except at the highest densities where
the looser time-weight bound generates too many false hits and the
expansion methods win; trends for hospitals (sparse) and fast food
(clustered) carry over from distance weights.
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig24_vary_k(benchmark, nw_tt):
    result = run_once(
        benchmark,
        lambda: figures.fig10_vary_k(
            nw_tt, ks=(1, 10, 25), density=0.003, num_queries=10,
            methods=("ine", "road", "gtree", "ier-gt", "ier-phl"),
        ),
    )
    print()
    print(result.format_text())
    for k in (10, 25):
        assert result.at("ier-phl", k) < result.at("ine", k)


def test_fig24_vary_density_crossover(benchmark, nw_tt):
    result = run_once(
        benchmark,
        lambda: figures.fig11_vary_density(
            nw_tt, densities=(0.003, 0.3), num_queries=10,
            methods=("ine", "gtree", "ier-phl"),
        ),
    )
    print()
    print(result.format_text())
    # IER leads at low density; expansion wins at very high density.
    assert result.at("ier-phl", 0.003) < result.at("ine", 0.003)
    assert result.at("ine", 0.3) < result.at("ier-phl", 0.3)


def test_fig27_real_pois_vary_k(benchmark, nw_tt):
    results = run_once(
        benchmark,
        lambda: figures.fig15_real_k(
            nw_tt, ks=(1, 10), num_queries=10,
            methods=("ine", "gtree", "ier-phl"),
        ),
    )
    print()
    for result in results.values():
        print(result.format_text())
    hospitals = results["hospitals"]
    assert hospitals.at("ier-phl", 10) < hospitals.at("ine", 10)
