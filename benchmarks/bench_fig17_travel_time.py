"""Figure 17: query performance on travel-time graphs (US analogue).

Paper shape: the Euclidean bound is looser on time weights (scaled by the
max speed), so IER suffers more false hits — IER-Gt loses to plain G-tree
— yet IER-PHL usually stays fastest; other distance-weight trends carry
over.
"""

from repro.experiments import figures
from repro.utils.counters import Counters
from repro.experiments.runner import random_queries
from repro.objects import uniform_objects

from _bench_utils import run_once


def test_fig17_vary_k_shape(benchmark, us_tt):
    result = run_once(
        benchmark,
        lambda: figures.fig10_vary_k(
            us_tt, ks=(1, 10, 25), density=0.003, num_queries=10
        ),
    )
    print()
    print(result.format_text())
    for k in (10, 25):
        assert result.at("ier-phl", k) < result.at("ine", k)


def test_fig17_vary_density_shape(benchmark, us_tt):
    result = run_once(
        benchmark,
        lambda: figures.fig11_vary_density(
            us_tt, densities=(0.003, 0.1), num_queries=8
        ),
    )
    print()
    print(result.format_text())
    # The expansion methods still improve with density on time weights.
    assert result.at("ine", 0.1) < result.at("ine", 0.003)


def test_travel_time_false_hits_exceed_distance(benchmark, us, us_tt):
    """The looser time-weight lower bound costs IER extra computations."""

    def run():
        k = 10
        counters_d, counters_t = Counters(), Counters()
        objects = uniform_objects(us.graph, 0.01, seed=0)
        alg_d = us.make("ier-phl", objects)
        alg_t = us_tt.make("ier-phl", objects)
        for q in random_queries(us.graph, 10, seed=4):
            alg_d.knn(int(q), k, counters=counters_d)
            alg_t.knn(int(q), k, counters=counters_t)
        return counters_d, counters_t

    counters_d, counters_t = run_once(benchmark, run)
    assert (
        counters_t["ier_network_computations"]
        >= counters_d["ier_network_computations"]
    )
