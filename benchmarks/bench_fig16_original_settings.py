"""Figure 16: the "original settings" reproduction (high default density).

Paper shape: at the earlier studies' density (10x our default) every
method answers fast and the methods become hard to differentiate —
queries are "easy" for everyone, explaining discrepancies in older
comparisons.
"""

from repro.experiments import figures

from _bench_utils import run_once

HIGH_DENSITY = 0.1
LOW_DENSITY = 0.003


def test_fig16_shape(benchmark, suite):
    # The paper uses the small CO dataset for this comparison.
    co = suite["S-CO"]

    def run():
        high = figures.fig10_vary_k(
            co, ks=(1, 10, 25), density=HIGH_DENSITY, num_queries=12
        )
        low = figures.fig10_vary_k(
            co, ks=(1, 10, 25), density=LOW_DENSITY, num_queries=12
        )
        return high, low

    high, low = run_once(benchmark, run)
    print()
    print(high.format_text())
    # Methods bunch together at high density: the best/worst spread is
    # much smaller than at the paper's (low) default density.
    def spread(result, k):
        values = [result.at(m, k) for m in result.series]
        return max(values) / max(min(values), 1e-9)

    assert spread(high, 25) < spread(low, 25)
    # Everything is fast in absolute terms at high density.
    assert max(high.at(m, 10) for m in high.series) < 4000  # microseconds
