"""Figure 8: road-network index size and construction time vs |V|.

Paper shape: INE (the raw graph) is the space lower bound; SILC/DisBrw
has by far the largest index and slowest build (quadratic preprocessing,
buildable only on the smaller networks); the labelling index is next
largest; G-tree and ROAD build in comparable time and grow roughly
linearly.
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig08_shape(benchmark, suite):
    size, build = run_once(
        benchmark, lambda: figures.fig08_preprocessing(suite)
    )
    print()
    print(size.format_text())
    print(build.format_text())
    names = [wb.graph.num_vertices for wb in suite.values()]
    smallest, largest = min(names), max(names)
    # INE is the lower bound on space everywhere.
    for n in names:
        assert size.at("INE", n) <= size.at("Gtree", n)
        assert size.at("INE", n) <= size.at("ROAD", n)
        assert size.at("INE", n) <= size.at("PHL", n)
    # DisBrw dominates size and build time wherever it exists.
    for n, _ in size.series.get("DisBrw", []):
        assert size.at("DisBrw", n) >= size.at("Gtree", n)
        assert build.at("DisBrw", n) >= build.at("Gtree", n)
    # Index sizes grow with the network.
    for series in ("Gtree", "ROAD", "PHL"):
        assert size.at(series, largest) > size.at(series, smallest)


def test_build_gtree(benchmark, nw):
    from repro.index.gtree import GTree

    benchmark.pedantic(
        lambda: GTree(nw.graph, seed=9), rounds=1, iterations=1
    )


def test_build_road(benchmark, nw):
    from repro.index.road import RoadIndex

    benchmark.pedantic(
        lambda: RoadIndex(nw.graph, seed=9), rounds=1, iterations=1
    )
