#!/usr/bin/env python
"""Scale benchmark: zero-copy mmap store vs materialised arrays.

Two sections, both recorded into ``BENCH_scale.json``:

* **Equivalence gate** (always runs, laptop-sized): the same graph is
  saved through an ``npz`` store and a ``flat`` store, and the two
  loads must be *byte-identical* — every CSR array, the content
  fingerprint, and the INE kNN answers.  The probe's own local Dijkstra
  kNN (used at scale, where the engine's O(V) scratch is off limits) is
  also pinned to the engine's INE answers here, so the scale numbers
  below are tied back to the tested query path.

* **Scale section**: a synthetic grid network (``--quick``: 400x400 =
  160k vertices; full: 1050x1050 = 1.1M) is written as a DIMACS ``.gr``
  file (cached under ``benchmarks/.store/scale/``), streamed through
  :func:`repro.graph.ingest.ingest_dimacs` under a memory budget into a
  ``flat`` artifact, then loaded by two child processes — one via
  ``Graph.from_store_mmap`` (zero-copy) and one that materialises every
  array — which report load time, RSS deltas (``/proc/self/status`` +
  ``resource.getrusage``) and cold/warm query latency.  The gate: the
  mmap probe's **anonymous** (private) RSS delta must stay under **50%
  of the materialised-array footprint** — mapped store pages are clean,
  shared page cache, reported but not gated.  (Quick mode adds a fixed
  allowance because a 160k-vertex footprint is smaller than Python
  allocator noise.)  Both probes must return identical answers.

Usage::

    python benchmarks/bench_scale.py --quick        # CI-sized run
    python benchmarks/bench_scale.py                # >=1M-vertex gate
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # direct script runs without install
    sys.path.insert(0, str(REPO_SRC))

import numpy as np  # noqa: E402

from repro.graph.graph import Graph  # noqa: E402
from repro.store import IndexStore  # noqa: E402
from repro.store.artifacts import save_graph  # noqa: E402

from _bench_utils import DEFAULT_STORE_DIR  # noqa: E402
from report import write_report  # noqa: E402

INF = float("inf")

#: Where the cached .gr files and the ingested flat store live.  CI
#: caches this directory keyed on the generation inputs.
SCALE_DIR = Path(
    os.environ.get("REPRO_BENCH_STORE") or str(DEFAULT_STORE_DIR)
) / "scale"

#: ru_maxrss is reported in KB on Linux, bytes on macOS.
_RU_MAXRSS_UNIT = 1024 if sys.platform != "darwin" else 1


# ----------------------------------------------------------------------
# Query path shared by the gate and the probes: a dict/heap Dijkstra
# that touches only the expanded neighbourhood — no O(V) scratch, so a
# probe's RSS reflects the *graph* pages it faulted, not the query.
# ----------------------------------------------------------------------
def local_knn(
    graph: Graph, objects: Set[int], query: int, k: int
) -> List[Tuple[float, int]]:
    """INE-equivalent kNN using only dict/heap state.

    Pops in ``(distance, vertex)`` order, which matches the engine's
    tie-break (``KNNAlgorithm._finalise``) — the equivalence gate
    asserts exact answer identity against :class:`repro.knn.ine.INE`.
    """
    vs, et, ew = graph.vertex_start, graph.edge_target, graph.edge_weight
    dist: Dict[int, float] = {int(query): 0.0}
    heap: List[Tuple[float, int]] = [(0.0, int(query))]
    done: Set[int] = set()
    out: List[Tuple[float, int]] = []
    while heap and len(out) < k:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u in objects:
            out.append((d, u))
            if len(out) == k:
                break
        for i in range(int(vs[u]), int(vs[u + 1])):
            v = int(et[i])
            nd = d + float(ew[i])
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return out


def pick_queries(num_vertices: int, count: int) -> List[int]:
    """Deterministic, well-spread query vertices."""
    step = max(1, num_vertices // (count + 1))
    return [(i + 1) * step for i in range(count)]


def object_set(num_vertices: int, stride: int) -> Set[int]:
    return set(range(0, num_vertices, stride))


# ----------------------------------------------------------------------
# Equivalence gate
# ----------------------------------------------------------------------
def run_equivalence(tmp_root: Path, failures: List[str]) -> Dict[str, object]:
    from repro.graph.generators import road_network
    from repro.knn.ine import INE

    graph = road_network(3000, seed=7)
    loaded = {}
    for fmt in ("npz", "flat"):
        store = IndexStore(tmp_root / f"equiv-{fmt}", format=fmt)
        info = save_graph(store, graph)
        loaded[fmt] = Graph.from_store_mmap(store, info.key)

    g_npz, g_flat = loaded["npz"], loaded["flat"]
    arrays_identical = all(
        np.asarray(getattr(g_npz, name)).tobytes()
        == np.asarray(getattr(g_flat, name)).tobytes()
        for name, _ in Graph._CSR_FIELDS
    )
    if not arrays_identical:
        failures.append("equivalence: npz and flat CSR arrays differ")
    fingerprint_identical = g_npz.fingerprint() == g_flat.fingerprint()
    if not fingerprint_identical:
        failures.append("equivalence: npz and flat fingerprints differ")

    k = 8
    objects = object_set(graph.num_vertices, stride=17)
    queries = pick_queries(graph.num_vertices, 12)
    ine_npz = INE(g_npz, sorted(objects))
    ine_flat = INE(g_flat, sorted(objects))
    knn_identical = True
    local_matches_ine = True
    for q in queries:
        a, b = ine_npz.knn(q, k), ine_flat.knn(q, k)
        if a != b:
            knn_identical = False
            failures.append(f"equivalence: kNN answers differ at q={q}")
        if local_knn(g_flat, objects, q, k) != a:
            local_matches_ine = False
            failures.append(f"equivalence: local_knn != INE at q={q}")
    return {
        "num_vertices": graph.num_vertices,
        "num_queries": len(queries),
        "k": k,
        "checks": {
            "arrays_identical": arrays_identical,
            "fingerprint_identical": fingerprint_identical,
            "knn_identical": knn_identical,
            "local_matches_ine": local_matches_ine,
        },
    }


# ----------------------------------------------------------------------
# Grid DIMACS writer (vectorised, chunked) + cached ingest
# ----------------------------------------------------------------------
def write_grid_gr(path: Path, width: int, height: int) -> None:
    """Write a ``width`` x ``height`` grid network as DIMACS ``.gr``.

    Right/down neighbour arcs with deterministic coordinate-derived
    weights; both arc directions are emitted, as real DIMACS exports do.
    Formatting runs over vectorised chunks so a >1M-vertex graph writes
    in seconds without a per-arc Python loop.
    """
    n = width * height
    ids = np.arange(n, dtype=np.int64)
    col = ids % width
    row = ids // width
    right = ids[col < width - 1]
    down = ids[row < height - 1]
    u = np.concatenate([right, down])
    v = np.concatenate([right + 1, down + width])
    # Deterministic pseudo-random weights in [1, 10): cheap, seedless,
    # identical across runs so the .gr cache key is just (width, height).
    w = 1.0 + 9.0 * ((u * 2654435761 + v * 40503) % 10007) / 10007.0
    m = len(u)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        fh.write(f"c synthetic {width}x{height} grid for bench_scale\n")
        fh.write(f"p sp {n} {2 * m}\n")
        block = 1 << 18
        for lo in range(0, m, block):
            hi = min(lo + block, m)
            us, vs, ws = u[lo:hi] + 1, v[lo:hi] + 1, w[lo:hi]
            lines = [
                f"a {a} {b} {c:.6f}\na {b} {a} {c:.6f}\n"
                for a, b, c in zip(us.tolist(), vs.tolist(), ws.tolist())
            ]
            fh.write("".join(lines))
    os.replace(tmp, path)


def ensure_ingested(
    width: int, height: int, budget_mb: float
) -> Tuple[IndexStore, str, Dict[str, object]]:
    """Ingest the grid into the cached flat store, reusing prior runs.

    The ``.gr`` file and the ingested artifact both live under
    ``benchmarks/.store/scale/``; a marker JSON maps grid dimensions to
    the artifact key so warm CI runs skip regeneration *and* re-ingest.
    """
    from repro.graph.ingest import ingest_dimacs

    SCALE_DIR.mkdir(parents=True, exist_ok=True)
    gr_path = SCALE_DIR / f"grid_{width}x{height}.gr"
    if not gr_path.exists():
        write_grid_gr(gr_path, width, height)
    store = IndexStore(SCALE_DIR / "store", format="flat")
    marker = SCALE_DIR / f"ingested_{width}x{height}.json"
    if marker.exists():
        cached = json.loads(marker.read_text())
        try:
            store.info("graph", cached["key"])
            cached["reused"] = True
            return store, cached["key"], cached
        except Exception:
            pass  # stale marker: artifact gc'd or store wiped
    report = ingest_dimacs(
        gr_path, store=store,
        name=f"grid-{width}x{height}", memory_budget_mb=budget_mb,
    )
    stats = {
        "key": report.key,
        "num_vertices": report.num_vertices,
        "num_edges": report.num_edges,
        "arcs_read": report.arcs_read,
        "runs_spilled": report.runs_spilled,
        "ingest_time_s": report.ingest_time_s,
        "memory_budget_mb": budget_mb,
        "reused": False,
    }
    marker.write_text(json.dumps(stats, indent=2))
    return store, report.key, stats


# ----------------------------------------------------------------------
# Child probes: one process per load strategy, RSS measured from within
# ----------------------------------------------------------------------
def _status_bytes(field: str) -> int:
    """A ``/proc/self/status`` memory field in bytes (-1 if unavailable).

    ``RssAnon`` is the honest metric for the zero-copy claim: mapped
    store pages are *clean file-backed* page cache — shared across
    processes and reclaimable without I/O — which ``VmRSS`` lumps in
    with real private memory (and the kernel's fault-around maps
    whole clusters of already-cached pages per fault, inflating it).
    Anonymous RSS counts only what the process actually allocated.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return -1


def _vm_rss_bytes() -> int:
    rss = _status_bytes("VmRSS")
    if rss >= 0:
        return rss
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT


def _ru_maxrss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT


def run_child_probe(args: argparse.Namespace) -> int:
    """``--child-probe mmap|materialize``: load, query, report JSON."""
    store = IndexStore(args.store, format="flat")
    queries = [int(q) for q in args.queries.split(",")]

    rss_before = _vm_rss_bytes()
    anon_before = _status_bytes("RssAnon")
    peak_before = _ru_maxrss_bytes()
    t0 = time.perf_counter()
    if args.child_probe == "mmap":
        graph = Graph.from_store_mmap(store, args.key)
    else:
        arrays = store.get("graph", args.key)
        graph = Graph.from_arrays(
            {name: np.array(value) for name, value in arrays.items()}
        )
    load_s = time.perf_counter() - t0
    rss_after_load = _vm_rss_bytes()

    objects = object_set(graph.num_vertices, args.object_stride)
    answers, cold_ms, warm_ms = [], [], []
    for q in queries:
        t0 = time.perf_counter()
        answers.append(local_knn(graph, objects, q, args.k))
        cold_ms.append((time.perf_counter() - t0) * 1e3)
    for q in queries:
        t0 = time.perf_counter()
        local_knn(graph, objects, q, args.k)
        warm_ms.append((time.perf_counter() - t0) * 1e3)

    peak_after = _ru_maxrss_bytes()
    rss_end = _vm_rss_bytes()
    anon_end = _status_bytes("RssAnon")
    # VmRSS growth attributable to load+queries.  ru_maxrss is a
    # lifetime high-water mark — interpreter startup can exceed the
    # later working set and mask it — so the delta is the larger of
    # the peak growth past the pre-load baseline and the end-of-run
    # VmRSS growth, clamped at zero.
    rss_delta = max(
        0,
        peak_after - max(peak_before, rss_before),
        rss_end - rss_before,
    )
    # Anonymous (private) growth — the gated metric; falls back to
    # the VmRSS delta where /proc is unavailable.
    if anon_before >= 0 and anon_end >= 0:
        anon_delta = max(0, anon_end - anon_before)
    else:
        anon_delta = rss_delta
    json.dump({
        "probe": args.child_probe,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "load_s": load_s,
        "rss_before_bytes": rss_before,
        "rss_after_load_bytes": rss_after_load,
        "rss_end_bytes": rss_end,
        "rss_delta_bytes": rss_delta,
        "anon_delta_bytes": anon_delta,
        "cold_ms_median": float(np.median(cold_ms)),
        "warm_ms_median": float(np.median(warm_ms)),
        "answers": [[[d, v] for d, v in ans] for ans in answers],
    }, sys.stdout)
    return 0


def spawn_probe(
    probe: str, store_root: Path, key: str,
    queries: List[int], k: int, stride: int,
) -> Dict[str, object]:
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--child-probe", probe,
        "--store", str(store_root),
        "--key", key,
        "--queries", ",".join(str(q) for q in queries),
        "--k", str(k),
        "--object-stride", str(stride),
    ]
    out = subprocess.run(
        cmd, capture_output=True, text=True, check=True
    )
    return json.loads(out.stdout)


# ----------------------------------------------------------------------
def run_scale(
    args: argparse.Namespace, failures: List[str]
) -> Dict[str, object]:
    width, height = (400, 400) if args.quick else (1050, 1050)
    store, key, ingest_stats = ensure_ingested(
        width, height, args.memory_budget_mb
    )
    info = store.info("graph", key)
    footprint = int(info.mapped_nbytes)

    queries = pick_queries(ingest_stats["num_vertices"], args.num_queries)
    probes = {}
    for probe in ("mmap", "materialize"):
        probes[probe] = spawn_probe(
            probe, Path(store.root), key, queries, args.k,
            args.object_stride,
        )

    answers_identical = (
        probes["mmap"]["answers"] == probes["materialize"]["answers"]
    )
    if not answers_identical:
        failures.append("scale: mmap and materialize answers differ")

    # The headline gate: the zero-copy probe's *private* memory growth
    # must stay under half the materialised-array footprint.  Mapped
    # store pages are shared, reclaimable page cache and are reported
    # separately (``rss_delta_bytes``), not gated.  In quick mode the
    # footprint (~11 MB at 400x400) is comparable to allocator noise,
    # so a fixed allowance keeps the quick leg a mechanics check while
    # the full run enforces the real 50% bound.
    mmap_delta = int(probes["mmap"]["anon_delta_bytes"])
    limit = footprint // 2
    if args.quick:
        limit = max(limit, 16 << 20)
    rss_ok = mmap_delta < limit
    if not rss_ok:
        failures.append(
            f"scale: mmap anonymous RSS delta {mmap_delta} >= limit "
            f"{limit} (footprint {footprint})"
        )
    if not args.quick and ingest_stats["num_vertices"] < 1_000_000:
        failures.append(
            f"scale: full run must ingest >=1M vertices, got "
            f"{ingest_stats['num_vertices']}"
        )

    for probe in probes.values():
        probe.pop("answers")  # bulky; identity already asserted
    return {
        "grid": [width, height],
        "ingest": ingest_stats,
        "artifact_nbytes": int(info.nbytes),
        "footprint_bytes": footprint,
        "num_queries": len(queries),
        "k": args.k,
        "probes": probes,
        "rss_gate": {
            "mmap_anon_delta_bytes": mmap_delta,
            "limit_bytes": limit,
            "footprint_bytes": footprint,
            "passed": rss_ok,
        },
        "answers_identical": answers_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (400x400 grid)")
    parser.add_argument("--json", default="BENCH_scale.json",
                        help="report path ('' to skip)")
    parser.add_argument("--memory-budget-mb", type=float, default=256.0)
    parser.add_argument("--num-queries", type=int, default=8)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--object-stride", type=int, default=101)
    # Internal: child-probe protocol (one JSON object on stdout).
    parser.add_argument("--child-probe", choices=("mmap", "materialize"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--store", help=argparse.SUPPRESS)
    parser.add_argument("--key", help=argparse.SUPPRESS)
    parser.add_argument("--queries", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child_probe:
        return run_child_probe(args)

    run_started = time.time()
    failures: List[str] = []
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
        equivalence = run_equivalence(Path(tmp), failures)
    scale = run_scale(args, failures)

    report = {
        "bench": "scale",
        "mode": "quick" if args.quick else "full",
        "equivalence": equivalence,
        "scale": scale,
        "failures": failures,
    }
    if args.json:
        write_report(args.json, report, run_started)
    print(json.dumps(
        {k: v for k, v in report.items() if k != "meta"}, indent=2
    ))
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
