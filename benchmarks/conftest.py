"""Shared benchmark fixtures: scaled networks and prebuilt workbenches.

One workbench per paper role:

* ``nw``  — the "NW" analogue (default mid-size network; SILC available,
  so DisBrw participates, as in the paper where NW is the largest network
  DisBrw could be built for).
* ``us``  — the "US" analogue (largest network; no SILC).
* ``nw_tt`` / ``us_tt`` — the same networks with travel-time weights.
* ``suite`` — four growing networks for the vs-|V| experiments.

All indexes are built once per pytest session; individual benchmark
modules only run queries.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import road_network, travel_time_weights
from repro.experiments.runner import Workbench

NW_SIZE = 2500
US_SIZE = 5000
SUITE_SIZES = ((600, "S-DE"), (1200, "S-CO"), (2500, "S-NW"), (4000, "S-W"))


@pytest.fixture(scope="session")
def nw():
    return Workbench(road_network(NW_SIZE, seed=42, name="S-NW"))


@pytest.fixture(scope="session")
def us():
    return Workbench(road_network(US_SIZE, seed=1042, name="S-US"))


@pytest.fixture(scope="session")
def nw_tt(nw):
    return Workbench(travel_time_weights(nw.graph, seed=42))


@pytest.fixture(scope="session")
def us_tt(us):
    return Workbench(travel_time_weights(us.graph, seed=1042))


@pytest.fixture(scope="session")
def suite():
    out = {}
    for size, name in SUITE_SIZES:
        out[name] = Workbench(road_network(size, seed=100 + size, name=name))
    return out


@pytest.fixture(scope="session")
def suite_tt(suite):
    return {
        name: Workbench(travel_time_weights(wb.graph, seed=7))
        for name, wb in suite.items()
    }


