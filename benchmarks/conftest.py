"""Shared benchmark fixtures: scaled networks and prebuilt workbenches.

One workbench per paper role:

* ``nw``  — the "NW" analogue (default mid-size network; SILC available,
  so DisBrw participates, as in the paper where NW is the largest network
  DisBrw could be built for).
* ``us``  — the "US" analogue (largest network; no SILC).
* ``nw_tt`` / ``us_tt`` — the same networks with travel-time weights.
* ``suite`` — four growing networks for the vs-|V| experiments.

All workbenches are backed by the shared on-disk index store
(``benchmarks/.store``, override with ``REPRO_BENCH_STORE``): the first
session builds and persists each index, every later session warm-starts
from disk.  The fig 08 / fig 26 *shape* benchmarks therefore pay
construction cost once — `build_time()` on a store-loaded index reports
the wall-time recorded in the artifact manifest — while the dedicated
micro-benchmarks (`test_build_gtree` / `test_build_road` in
bench_fig08) intentionally construct fresh indexes outside the store to
time a cold build every session.  Everything else only runs queries.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import road_network, travel_time_weights
from repro.experiments.runner import Workbench

from _bench_utils import shared_store

NW_SIZE = 2500
US_SIZE = 5000
SUITE_SIZES = ((600, "S-DE"), (1200, "S-CO"), (2500, "S-NW"), (4000, "S-W"))


@pytest.fixture(scope="session")
def store():
    return shared_store()


@pytest.fixture(scope="session")
def nw(store):
    return Workbench(road_network(NW_SIZE, seed=42, name="S-NW"), store=store)


@pytest.fixture(scope="session")
def us(store):
    return Workbench(road_network(US_SIZE, seed=1042, name="S-US"), store=store)


@pytest.fixture(scope="session")
def nw_tt(nw, store):
    return Workbench(travel_time_weights(nw.graph, seed=42), store=store)


@pytest.fixture(scope="session")
def us_tt(us, store):
    return Workbench(travel_time_weights(us.graph, seed=1042), store=store)


@pytest.fixture(scope="session")
def suite(store):
    out = {}
    for size, name in SUITE_SIZES:
        out[name] = Workbench(
            road_network(size, seed=100 + size, name=name), store=store
        )
    return out


@pytest.fixture(scope="session")
def suite_tt(suite, store):
    return {
        name: Workbench(travel_time_weights(wb.graph, seed=7), store=store)
        for name, wb in suite.items()
    }
