"""Figure 11: query time vs uniform object density.

Paper shape: all methods get faster as density rises, but expansion-based
methods (INE, ROAD) improve fastest and overtake the heuristic methods at
high density; ROAD falls behind INE beyond ~0.01; IER's advantage is
largest at low density.
"""

from repro.experiments import figures

from _bench_utils import run_once

DENSITIES = (0.003, 0.03, 0.3)


def test_fig11_nw_shape(benchmark, nw):
    result = run_once(
        benchmark,
        lambda: figures.fig11_vary_density(
            nw, densities=DENSITIES, num_queries=12
        ),
    )
    print()
    print(result.format_text())
    low, high = DENSITIES[0], DENSITIES[-1]
    # Expansion methods improve dramatically with density.
    assert result.at("ine", high) < result.at("ine", low) / 5
    # INE overtakes the heuristic methods at the highest density
    # (the paper's crossover).
    assert result.at("ine", high) < result.at("ier-phl", high)
    assert result.at("ine", high) < result.at("gtree", high)
    # At low density IER-PHL is the clear winner.
    assert result.at("ier-phl", low) == min(
        result.at(m, low) for m in result.series
    )
    # Heuristic methods flatten or degrade: their improvement ratio is
    # smaller than the expansion methods'.
    ine_ratio = result.at("ine", low) / result.at("ine", high)
    phl_ratio = result.at("ier-phl", low) / max(result.at("ier-phl", high), 1e-9)
    assert phl_ratio < ine_ratio


def test_fig11_us_shape(benchmark, us):
    result = run_once(
        benchmark,
        lambda: figures.fig11_vary_density(
            us, densities=(0.003, 0.1), num_queries=8
        ),
    )
    print()
    print(result.format_text())
    assert result.at("ier-phl", 0.003) < result.at("ine", 0.003)
