"""Figure 22: the improved G-tree leaf search (Appendix A.2.1).

Paper shape: the improvement is largest at high density and small k —
over an order of magnitude at k=1 on the densest sets — because the
original search scans the whole leaf regardless of k.
"""

from repro.experiments import figures

from _bench_utils import run_once

DENSITIES = (0.003, 0.05, 0.3)


def test_fig22_shape(benchmark, nw):
    result = run_once(
        benchmark,
        lambda: figures.fig22_leaf_search(
            nw, densities=DENSITIES, ks=(1, 10), num_queries=15
        ),
    )
    print()
    print(result.format_text())
    high = DENSITIES[-1]
    # At the highest density the improved search wins clearly at k=1 and
    # is at worst within noise at k=10 (the win shrinks as k approaches
    # the per-leaf object count, exactly as in the paper).
    assert result.at("k=1 (Aft)", high) < result.at("k=1 (Bef)", high)
    assert result.at("k=10 (Aft)", high) < 1.1 * result.at("k=10 (Bef)", high)
    # The k=1 improvement is the larger one (the paper's peak case).
    gain_k1 = result.at("k=1 (Bef)", high) / result.at("k=1 (Aft)", high)
    gain_k10 = result.at("k=10 (Bef)", high) / result.at("k=10 (Aft)", high)
    assert gain_k1 > 1.2
