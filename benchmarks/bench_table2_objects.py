"""Table 2: real-world-like object sets.

Paper shape: eight POI categories whose densities span 0.00005..0.007,
schools largest, courthouses smallest.
"""

from repro.experiments.tables import format_table2, table2_objects
from repro.objects import poi_object_sets

from _bench_utils import run_once


def test_table2_statistics(benchmark, us):
    rows = run_once(benchmark, lambda: table2_objects(us.graph))
    print()
    print(format_table2(rows))
    by_name = {r["name"]: r for r in rows}
    assert by_name["schools"]["size"] >= by_name["courthouses"]["size"]
    assert rows == sorted(rows, key=lambda r: -r["size"])


def test_poi_generation(benchmark, us):
    sets = benchmark.pedantic(
        lambda: poi_object_sets(us.graph, seed=3), rounds=2, iterations=1
    )
    assert len(sets) == 8
