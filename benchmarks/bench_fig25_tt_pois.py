"""Figure 25: named POI sets on travel-time graphs (NW and US analogues).

Paper shape: IER-PHL dominates nearly every set (label sizes shrink on
time weights, offsetting false hits); INE again degrades as sets shrink;
IER-Gt loses ground relative to distance weights.
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig25_nw_shape(benchmark, nw_tt):
    result = run_once(
        benchmark,
        lambda: figures.fig13_real_pois(
            nw_tt, num_queries=10,
            methods=("ine", "road", "gtree", "ier-gt", "ier-phl"),
        ),
    )
    print()
    print(result.format_text())
    assert result.at("ine", "courthouses") > result.at("ine", "schools")
    assert result.at("ier-phl", "courthouses") < result.at("ine", "courthouses")


def test_fig25_us_shape(benchmark, us_tt):
    result = run_once(
        benchmark,
        lambda: figures.fig13_real_pois(
            us_tt, num_queries=6,
            methods=("ine", "gtree", "ier-phl"),
        ),
    )
    print()
    print(result.format_text())
    assert result.at("ier-phl", "courthouses") < result.at("ine", "courthouses")
