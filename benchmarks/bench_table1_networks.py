"""Table 1: road-network datasets (scaled analogues).

Prints the dataset statistics table and benchmarks network generation.
Paper shape: ten networks spanning >2 orders of magnitude in |V| with
|E|/|V| around 2.4 and a large degree-2 fraction.
"""

from repro.experiments.tables import format_table1, table1_networks
from repro.graph.generators import road_network

from _bench_utils import run_once


def test_table1_statistics(benchmark, suite):
    rows = run_once(
        benchmark,
        lambda: table1_networks({n: wb.graph for n, wb in suite.items()}),
    )
    print()
    print(format_table1(rows))
    sizes = [r["vertices"] for r in rows]
    assert sizes == sorted(sizes)
    for r in rows:
        # Road networks: sparse (|E| < 2|V|) with a real degree-2 share.
        assert r["edges"] < 2 * r["vertices"]
        assert r["degree2_fraction"] > 0.1


def test_network_generation(benchmark):
    graph = benchmark.pedantic(
        lambda: road_network(1500, seed=5), rounds=2, iterations=1
    )
    assert graph.num_vertices > 1000
