"""Figure 12: clustered object sets (vs #clusters and vs k).

Paper shape: more clusters behave like higher density (faster queries for
expansion methods); IER keeps its lead but by a smaller margin than on
uniform objects because Euclidean distance separates clustered candidates
poorly; G-tree stays nearly flat in k thanks to materialized leaf paths.
"""

from repro.experiments import figures

from _bench_utils import run_once

CLUSTERS = (4, 16, 64)


def test_fig12_shape(benchmark, nw):
    by_c, by_k = run_once(
        benchmark,
        lambda: figures.fig12_clusters(
            nw, cluster_counts=CLUSTERS, ks=(1, 10, 25), num_queries=12
        ),
    )
    print()
    print(by_c.format_text())
    print(by_k.format_text())
    # More clusters => faster INE (density effect).
    assert by_c.at("ine", CLUSTERS[-1]) < by_c.at("ine", CLUSTERS[0])
    # IER-PHL keeps a clear lead over the expansion methods, though by a
    # smaller margin than on uniform objects (clusters blunt the
    # Euclidean heuristic).
    means = {m: by_c.mean(m) for m in by_c.series}
    assert means["ier-phl"] < means["ine"]
    assert means["ier-phl"] < means["road"]
    # G-tree grows with k more slowly than INE (materialization).
    assert (
        by_k.at("gtree", 25) / by_k.at("gtree", 1)
        < by_k.at("ine", 25) / by_k.at("ine", 1)
    )
