"""Figure 15: varying k on hospitals (sparse) and fast food (clustered).

Paper shape: hospitals behave like sparse uniform objects (IER-PHL well
ahead); on clustered fast food IER's lead narrows because Euclidean
distance separates cluster members poorly.
"""

from repro.experiments import figures

from _bench_utils import run_once

KS = (1, 10, 25)


def test_fig15_shape(benchmark, nw):
    results = run_once(
        benchmark,
        lambda: figures.fig15_real_k(nw, ks=KS, num_queries=12),
    )
    hospitals = results["hospitals"]
    fast_food = results["fast_food"]
    print()
    print(hospitals.format_text())
    print(fast_food.format_text())
    # IER-PHL beats INE on the sparse set at every k.
    for k in KS:
        assert hospitals.at("ier-phl", k) < hospitals.at("ine", k)
    # IER's lead (vs the best expansion method) narrows on clusters:
    # compare its advantage over INE at k=25 across the two POI types.
    lead_sparse = hospitals.at("ine", 25) / hospitals.at("ier-phl", 25)
    lead_cluster = fast_food.at("ine", 25) / fast_food.at("ier-phl", 25)
    assert lead_cluster < lead_sparse * 1.5
