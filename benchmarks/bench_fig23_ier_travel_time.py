"""Figure 23: IER oracle comparison on travel-time graphs (NW analogue).

Paper shape: PHL remains well ahead of TNR/CH across the board; all
oracles suffer more false hits at high density (looser Euclidean bound);
Dijkstra stays orders of magnitude behind.
"""

from repro.experiments import figures

from _bench_utils import run_once

KS = (1, 10, 25)
DENSITIES = (0.003, 0.05)


def test_fig23_shape(benchmark, nw_tt):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig04_ier_variants(
            nw_tt, ks=KS, densities=DENSITIES, num_queries=10
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    for k in KS:
        assert by_k.at("PHL", k) < by_k.at("TNR", k)
        assert by_k.at("PHL", k) < by_k.at("CH", k)
        assert by_k.at("PHL", k) < by_k.at("Dijk", k) / 5
