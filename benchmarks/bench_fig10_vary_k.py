"""Figure 10: query time vs k on the NW and US analogues.

Paper shape: IER (best oracle) is fastest across k; G-tree scales better
with k than ROAD/DisBrw/INE; INE is the slowest at large k; on the larger
network IER-Gt's lead over plain G-tree grows.
"""

from repro.experiments import figures
from repro.experiments.runner import random_queries
from repro.objects import uniform_objects

from _bench_utils import run_once, run_queries

KS = (1, 5, 10, 25)


def test_fig10a_nw_shape(benchmark, nw):
    result = run_once(
        benchmark,
        lambda: figures.fig10_vary_k(nw, ks=KS, density=0.003, num_queries=12),
    )
    print()
    print(result.format_text())
    # IER-PHL is fastest at k >= 5; INE among the slowest at k=25.
    for k in (5, 10, 25):
        assert result.at("ier-phl", k) == min(
            result.at(m, k) for m in result.series
        )
    slowest = max(result.at(m, 25) for m in result.series)
    assert result.at("ine", 25) > 0.3 * slowest
    # G-tree scales with k far better than INE does.
    gtree_growth = result.at("gtree", 25) / result.at("gtree", 1)
    ine_growth = result.at("ine", 25) / result.at("ine", 1)
    assert gtree_growth < ine_growth


def test_fig10b_us_shape(benchmark, us):
    result = run_once(
        benchmark,
        lambda: figures.fig10_vary_k(us, ks=KS, density=0.003, num_queries=10),
    )
    print()
    print(result.format_text())
    for k in (10, 25):
        assert result.at("ier-phl", k) < result.at("ine", k)
        assert result.at("gtree", k) < result.at("ine", k)


def test_query_gtree_k10(benchmark, nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    run_queries(
        benchmark,
        nw.make("gtree", objects),
        random_queries(nw.graph, 10, seed=2),
        10,
    )


def test_query_ine_k10(benchmark, nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    run_queries(
        benchmark,
        nw.make("ine", objects),
        random_queries(nw.graph, 10, seed=2),
        10,
    )


def test_query_road_k10(benchmark, nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    run_queries(
        benchmark,
        nw.make("road", objects),
        random_queries(nw.graph, 10, seed=2),
        10,
    )


def test_query_disbrw_k10(benchmark, nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    run_queries(
        benchmark,
        nw.make("disbrw", objects),
        random_queries(nw.graph, 10, seed=2),
        10,
    )
