"""Table 5: algorithm ranking under different criteria.

Paper shape: IER (best oracle) ranks 1st for query performance in almost
every regime except high density, where INE takes over; INE is always
best on preprocessing (it has no index); DisBrw/PHL rank worst on space.
"""

from repro.experiments.tables import format_table5, table5_ranking

from _bench_utils import run_once


def test_table5_shape(benchmark, nw, us):
    criteria = run_once(
        benchmark,
        lambda: table5_ranking(nw, large_workbench=us, num_queries=12),
    )
    print()
    print(format_table5(criteria))
    # IER-PHL leads the default-settings ranking.
    assert criteria["default"]["ier-phl"] == 1
    # INE wins at high density (the paper's only non-IER query winner).
    assert criteria["high_density"]["ine"] <= 2
    # INE is unbeatable on preprocessing (no index at all).
    assert criteria["network_build_time"]["ine"] == 1
    assert criteria["network_space"]["ine"] == 1
    # DisBrw is the most expensive index wherever it exists.
    if "disbrw" in criteria["network_space"]:
        assert criteria["network_space"]["disbrw"] == max(
            criteria["network_space"].values()
        )
