"""Figure 26: preprocessing on travel-time graphs.

Paper shape: the labelling index becomes cheaper on time weights — travel
times exhibit stronger hierarchies, so labels shrink and PHL becomes
buildable on every dataset (it could not be built for the two largest
travel-distance networks).
"""

from repro.experiments import figures

from _bench_utils import run_once


def test_fig26_shape(benchmark, suite, suite_tt):
    size_tt, build_tt = run_once(
        benchmark,
        lambda: figures.fig08_preprocessing(suite_tt, include_silc=False),
    )
    print()
    print(size_tt.format_text())
    print(build_tt.format_text())
    # Hub labels shrink on travel-time weights vs travel distances.
    size_d, _ = figures.fig08_preprocessing(suite, include_silc=False)
    largest = max(n for n, _ in size_tt.series["PHL"])
    assert size_tt.at("PHL", largest) < size_d.at("PHL", largest) * 1.05
    # Index sizes still grow with |V|.
    smallest = min(n for n, _ in size_tt.series["PHL"])
    assert size_tt.at("PHL", largest) > size_tt.at("PHL", smallest)


def test_label_sizes_smaller_on_travel_time(benchmark, nw, nw_tt):
    def run():
        return (
            nw.hub_labels.average_label_size(),
            nw_tt.hub_labels.average_label_size(),
        )

    dist_labels, tt_labels = run_once(benchmark, run)
    print(f"\navg label size: distance={dist_labels:.1f} time={tt_labels:.1f}")
    # Time weights have stronger hierarchies => labels no larger.
    assert tt_labels < dist_labels * 1.2
