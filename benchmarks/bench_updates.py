#!/usr/bin/env python
"""Live-update benchmark: incremental repair vs from-scratch rebuild.

Three sections, written to ``BENCH_updates.json``:

* **equivalence** (the correctness gate) — a seeded mixed delta stream
  (POI churn + travel-weight drift) is applied incrementally through
  ``QueryEngine.apply_updates``; the answers of every method are then
  compared *byte-identical* against instances rebuilt from scratch over
  the final graph/object state, on both kernels.  Index repair is also
  checked structurally: repaired G-tree / ROAD matrices must compare
  ``np.array_equal`` with a pinned-partition rebuild.
* **speedup** — single-POI deltas at 10k vertices: one
  ``apply_updates`` call patching the warm INE / G-tree kNN / IER
  instances in place versus reconstructing those instances (occurrence
  list, R-tree, object flags) from scratch — the drop-and-rebuild cost
  the engine's fallback pays.  Also reports the in-place G-tree weight
  repair against a full pinned-partition G-tree rebuild.
* **mixed_load** — closed-loop read latency with an update writer
  racing the readers at increasing update rates, versus an update-free
  baseline (the latency-degradation-vs-update-rate curve).

Any equivalence failure or a speedup below the 5x floor exits non-zero,
so the CI ``updates-smoke`` job (which runs ``--quick``) turns silent
repair drift into a red build.

Usage::

    python benchmarks/bench_updates.py                # full run
    python benchmarks/bench_updates.py --quick        # CI-sized run
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # direct script runs without install
    sys.path.insert(0, str(REPO_SRC))

import numpy as np  # noqa: E402

from repro.engine.engine import QueryEngine  # noqa: E402
from repro.graph.generators import road_network  # noqa: E402
from repro.index.gtree import GTree, GTreeOracle  # noqa: E402
from repro.index.road import RoadIndex  # noqa: E402
from repro.knn.gtree_knn import GTreeKNN  # noqa: E402
from repro.knn.ier import IER  # noqa: E402
from repro.knn.ine import INE  # noqa: E402
from repro.knn.road_knn import RoadKNN  # noqa: E402
from repro.objects import uniform_objects  # noqa: E402
from repro.updates import ObjectDelta, set_weight  # noqa: E402

from report import write_report  # noqa: E402

KERNELS = ("python", "array")
#: Methods under the byte-identity gate (>= 3 required by the issue).
EQUIVALENCE_METHODS = ("ine", "gtree", "road", "ier-gt")


def random_delta_stream(graph, objects, rng, n_object, n_weight):
    """A valid mixed delta stream: POI churn + bounded weight drift."""
    present = set(int(o) for o in objects)
    free = sorted(set(range(graph.num_vertices)) - present)
    deltas: List[object] = []
    for _ in range(n_object):
        if present and (not free or rng.random() < 0.5):
            victim = int(rng.choice(sorted(present)))
            present.discard(victim)
            free.append(victim)
            deltas.append(ObjectDelta("remove", victim))
        else:
            newcomer = free.pop(int(rng.integers(0, len(free))))
            present.add(newcomer)
            deltas.append(ObjectDelta("add", newcomer))
    for _ in range(n_weight):
        u = int(rng.integers(0, graph.num_vertices))
        start, end = int(graph.vertex_start[u]), int(graph.vertex_start[u + 1])
        if start == end:
            continue
        e = int(rng.integers(start, end))
        deltas.append(set_weight(
            u, int(graph.edge_target[e]),
            float(graph.edge_weight[e]) * float(rng.uniform(0.5, 2.0)),
        ))
    return deltas


def rebuild_instances(graph, objects, kernel, gtree_partition, road_partition,
                      seed):
    """Method instances built from scratch over the *current* graph state.

    The G-tree and ROAD rebuilds are pinned to the incremental indexes'
    partition hierarchies — the exact claim in-place repair makes is
    "identical to rebuilding this tree over the new weights".
    """
    gt = GTree(graph, seed=seed, kernel=kernel, partition=gtree_partition)
    rd = RoadIndex(graph, seed=seed, partition=road_partition)
    return gt, rd, {
        "ine": INE(graph, objects, kernel=kernel),
        "gtree": GTreeKNN(gt, objects, kernel=kernel),
        "road": RoadKNN(rd, objects),
        "ier-gt": IER(graph, objects, GTreeOracle(gt)),
    }


def bench_equivalence(args, failures: List[str]) -> Dict:
    out: Dict[str, Dict] = {}
    for kernel in KERNELS:
        graph = road_network(args.eq_vertices, seed=args.seed)
        rng = np.random.default_rng(args.seed + 10)
        objects = uniform_objects(graph, args.density, seed=args.seed,
                                  minimum=args.k)
        engine = QueryEngine(graph, objects, kernel=kernel)
        for method in EQUIVALENCE_METHODS:
            engine.algorithm(method)  # warm every instance pre-delta
        gtree_partition = engine.workbench.gtree.partition
        road_partition = engine.workbench.road.partition

        deltas = random_delta_stream(
            graph, objects, rng, args.object_deltas, args.weight_deltas
        )
        report = engine.apply_updates(deltas)
        gt2, rd2, rebuilt = rebuild_instances(
            graph, engine.objects, kernel, gtree_partition, road_partition,
            args.seed,
        )
        gtree_ok = all(
            np.array_equal(a.matrix.m, b.matrix.m)
            for a, b in zip(engine.workbench.gtree.nodes, gt2.nodes)
        )
        road_ok = all(
            np.array_equal(a.shortcut_matrix, b.shortcut_matrix)
            for a, b in zip(engine.workbench.road.rnets, rd2.rnets)
        )
        if not gtree_ok:
            failures.append(f"[{kernel}] repaired gtree matrices != rebuild")
        if not road_ok:
            failures.append(f"[{kernel}] repaired road matrices != rebuild")

        queries = rng.integers(0, graph.num_vertices, size=args.queries)
        identical = {m: True for m in EQUIVALENCE_METHODS}
        for method in EQUIVALENCE_METHODS:
            for q in queries.tolist():
                inc = [
                    (n.distance, n.vertex)
                    for n in engine.query(q, args.k, method=method).neighbors
                ]
                ref = [
                    (float(d), int(v))
                    for d, v in rebuilt[method].knn(q, args.k)
                ]
                if inc != ref:  # byte-identical: exact floats, exact ids
                    identical[method] = False
                    failures.append(
                        f"[{kernel}] {method} drift on q={q}: "
                        f"{inc!r} != {ref!r}"
                    )
                    break
        out[kernel] = {
            "vertices": graph.num_vertices,
            "queries": len(queries),
            "k": args.k,
            "deltas": len(deltas),
            "update_report": report.to_dict(),
            "gtree_matrices_identical": gtree_ok,
            "road_matrices_identical": road_ok,
            "answers_identical": identical,
        }
        status = "ok" if all(identical.values()) and gtree_ok and road_ok \
            else "DRIFT"
        print(f"  equivalence[{kernel}]  methods={list(identical)}  "
              f"deltas={len(deltas)}  {status}")
    return out


def bench_speedup(args, failures: List[str]) -> Dict:
    """Single-POI delta repair vs drop-and-rebuild at 10k vertices."""
    graph = road_network(args.speedup_vertices, seed=args.seed)
    objects = uniform_objects(graph, args.density, seed=args.seed,
                              minimum=args.k)
    rng = np.random.default_rng(args.seed + 20)
    # ROAD is excluded here: its build at 10k vertices dominates the
    # harness runtime and the AssociationDirectory path is already under
    # the equivalence gate above.
    methods = ("ine", "gtree", "ier-gt")
    engine = QueryEngine(graph, objects, kernel="array")
    t0 = time.perf_counter()
    gtree_index = engine.workbench.gtree
    gtree_build_s = time.perf_counter() - t0
    for method in methods:
        engine.algorithm(method)

    free = sorted(set(range(graph.num_vertices)) - set(engine.objects))
    poi = free[int(rng.integers(0, len(free)))]
    # Alternate add/remove so every timed apply is a real single-POI
    # delta against warm instances; best-of damps scheduler noise.
    t_incremental = float("inf")
    for i in range(4):
        delta = ObjectDelta("add" if i % 2 == 0 else "remove", poi)
        start = time.perf_counter()
        engine.apply_updates([delta])
        t_incremental = min(t_incremental, time.perf_counter() - start)

    # The fallback cost: rebuild each instance's object index from
    # scratch (INE flags/array, occurrence list, IER R-tree).
    final_objects = list(engine.objects)
    t_rebuild = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        INE(graph, final_objects, kernel="array")
        GTreeKNN(gtree_index, final_objects, kernel="array")
        IER(graph, final_objects, GTreeOracle(gtree_index))
        t_rebuild = min(t_rebuild, time.perf_counter() - start)
    speedup = t_rebuild / t_incremental if t_incremental > 0 else float("inf")
    if speedup < 5.0:
        failures.append(
            f"single-POI repair speedup {speedup:.1f}x below the 5x floor"
        )
    print(f"  single-POI delta   repair {t_incremental * 1e3:8.3f} ms   "
          f"rebuild {t_rebuild * 1e3:8.3f} ms   {speedup:7.1f}x  "
          f"(V={graph.num_vertices})")

    # Informational: one weight delta's in-place G-tree repair vs the
    # full (pinned-partition) G-tree rebuild a drop would trigger.
    u = int(rng.integers(0, graph.num_vertices))
    e = int(graph.vertex_start[u])
    wd = set_weight(u, int(graph.edge_target[e]),
                    float(graph.edge_weight[e]) * 1.5)
    start = time.perf_counter()
    weight_report = engine.apply_updates([wd])
    t_weight_repair = time.perf_counter() - start
    weight_speedup = (
        gtree_build_s / t_weight_repair if t_weight_repair > 0 else 0.0
    )
    print(f"  single-edge delta  repair {t_weight_repair * 1e3:8.3f} ms   "
          f"gtree build {gtree_build_s * 1e3:8.1f} ms   "
          f"{weight_speedup:7.1f}x")
    return {
        "vertices": graph.num_vertices,
        "methods": list(methods),
        "poi_repair_ms": t_incremental * 1e3,
        "poi_rebuild_ms": t_rebuild * 1e3,
        "speedup": speedup,
        "meets_5x_floor": speedup >= 5.0,
        "weight_repair_ms": t_weight_repair * 1e3,
        "gtree_build_ms": gtree_build_s * 1e3,
        "weight_repair_speedup_vs_gtree_build": weight_speedup,
        "weight_repaired": weight_report.to_dict()["repaired"],
    }


def bench_mixed_load(args) -> Dict:
    """Read latency vs update rate (closed loop, racing writer)."""
    from repro.server.loadgen import run_closed_loop, run_mixed_closed_loop
    from repro.server.server import KNNServer
    from repro.server.workloads import mixed_update_workload

    rates = {}
    baseline = None
    for updates in (0, args.mix_updates, args.mix_updates * 4):
        graph = road_network(args.mix_vertices, seed=args.seed)
        objects = uniform_objects(graph, args.density, seed=args.seed,
                                  minimum=args.k)
        engine = QueryEngine(graph, objects, kernel="array")
        reads, update_items = mixed_update_workload(
            graph, args.mix_reads, args.k, objects,
            updates=updates, seed=args.seed + 30,
        )
        with KNNServer(engine, workers=args.mix_workers,
                       cache_capacity=0) as server:
            if updates == 0:
                report = run_closed_loop(
                    server, reads, concurrency=args.mix_concurrency
                )
                update_stats = {"updates_applied": 0}
            else:
                report, update_stats = run_mixed_closed_loop(
                    server, reads, update_items,
                    concurrency=args.mix_concurrency,
                )
        row = {
            "requested_updates": updates,
            "throughput_qps": round(report.throughput_qps, 1),
            "latency_p50_ms": round(report.latency_p50_ms, 4),
            "latency_p95_ms": round(report.latency_p95_ms, 4),
            "updates": update_stats,
        }
        if updates == 0:
            baseline = row
        else:
            rates[str(updates)] = row
        print(f"  mixed load  updates={updates:3d}  "
              f"p50 {report.latency_p50_ms:7.3f} ms  "
              f"p95 {report.latency_p95_ms:7.3f} ms  "
              f"{report.throughput_qps:8.0f} qps")
    return {
        "vertices": args.mix_vertices,
        "reads": args.mix_reads,
        "baseline": baseline,
        "with_updates": rates,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--density", type=float, default=0.02)
    parser.add_argument("--eq-vertices", type=int, default=900)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--object-deltas", type=int, default=12)
    parser.add_argument("--weight-deltas", type=int, default=12)
    parser.add_argument("--speedup-vertices", type=int, default=10000)
    parser.add_argument("--mix-vertices", type=int, default=1500)
    parser.add_argument("--mix-reads", type=int, default=600)
    parser.add_argument("--mix-updates", type=int, default=4)
    parser.add_argument("--mix-workers", type=int, default=3)
    parser.add_argument("--mix-concurrency", type=int, default=6)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (smaller equivalence/mixed "
                             "sections; the 10k speedup gate still runs)")
    parser.add_argument("--json", default="BENCH_updates.json",
                        help="report path ('' disables)")
    args = parser.parse_args(argv)
    run_started = time.time()
    if args.quick:
        args.eq_vertices = min(args.eq_vertices, 500)
        args.queries = min(args.queries, 12)
        args.mix_vertices = min(args.mix_vertices, 800)
        args.mix_reads = min(args.mix_reads, 300)

    failures: List[str] = []
    print(f"live-update bench: seed={args.seed}, k={args.k}, "
          f"density={args.density}")
    equivalence = bench_equivalence(args, failures)
    speedup = bench_speedup(args, failures)
    mixed = bench_mixed_load(args)

    report = {
        "bench": "updates",
        "seed": args.seed,
        "quick": args.quick,
        "equivalence": equivalence,
        "speedup": speedup,
        "mixed_load": mixed,
        "failures": failures,
    }
    if args.json:
        write_report(args.json, report, run_started)
        print(f"  report written to {args.json}")
    if failures:
        for line in failures:
            print(f"  !! {line}", file=sys.stderr)
        return 1
    print("  all equivalence gates and the 5x speedup floor passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
