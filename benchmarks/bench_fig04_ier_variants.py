"""Figure 4: IER combined with five shortest-path oracles (distance graph).

Paper shape: PHL is the consistent winner (orders of magnitude over
Dijkstra), materialized G-tree next; TNR and CH converge at high density;
all methods converge as density grows.
"""

from repro.experiments import figures
from repro.experiments.runner import random_queries
from repro.objects import uniform_objects

from _bench_utils import run_once, run_queries

KS = (1, 5, 10, 25)
DENSITIES = (0.003, 0.01, 0.1)


def test_fig04_shape(benchmark, nw):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig04_ier_variants(
            nw, ks=KS, densities=DENSITIES, num_queries=12
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    # PHL wins (within measurement noise) everywhere and is fastest on
    # average; Dijkstra loses by >10x at every k.
    labels = ("Dijk", "MGtree", "PHL", "TNR", "CH")
    for k in KS:
        assert by_k.at("PHL", k) <= 1.1 * min(by_k.at(name, k) for name in labels)
        assert by_k.at("Dijk", k) > 5 * by_k.at("PHL", k)
    assert by_k.at("Dijk", 10) > 10 * by_k.at("PHL", 10)
    assert by_k.mean("PHL") == min(by_k.mean(name) for name in labels)
    # MGtree is the runner-up on average.
    assert by_k.mean("MGtree") < by_k.mean("TNR")
    assert by_k.mean("MGtree") < by_k.mean("CH")
    # Methods converge with density: Dijkstra's lead shrinks.
    gap_low = by_d.at("Dijk", DENSITIES[0]) / by_d.at("PHL", DENSITIES[0])
    gap_high = by_d.at("Dijk", DENSITIES[-1]) / by_d.at("PHL", DENSITIES[-1])
    assert gap_high < gap_low


def test_query_ier_phl(benchmark, nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    alg = nw.make("ier-phl", objects)
    run_queries(benchmark, alg, random_queries(nw.graph, 10, seed=1), 10)


def test_query_ier_dijkstra(benchmark, nw):
    objects = uniform_objects(nw.graph, 0.01, seed=0)
    alg = nw.make("ier-dijk", objects)
    run_queries(benchmark, alg, random_queries(nw.graph, 10, seed=1), 10)
