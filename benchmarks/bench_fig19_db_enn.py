"""Figure 19: DisBrw's Object Hierarchy vs the DB-ENN improvement.

Paper shape: DB-ENN (R-tree Euclidean candidates) wins, most clearly at
low k where the Object Hierarchy's intersection overhead dominates.
"""

from repro.experiments import figures

from _bench_utils import run_once

KS = (1, 5, 10)
DENSITIES = (0.003, 0.05)


def test_fig19_shape(benchmark, nw):
    by_k, by_d = run_once(
        benchmark,
        lambda: figures.fig19_db_enn(
            nw, ks=KS, densities=DENSITIES, num_queries=12
        ),
    )
    print()
    print(by_k.format_text())
    print(by_d.format_text())
    # DB-ENN clearly wins at k=1 (the paper's peak improvement regime).
    assert by_k.at("DB-ENN", 1) < by_k.at("DisBrw", 1)
    # Overall DB-ENN is at least competitive.
    assert by_k.mean("DB-ENN") < 1.3 * by_k.mean("DisBrw")
