"""Chaos bench: the serving stack under a seeded fault plan.

Drives the full resilience tentpole end to end and writes
``BENCH_chaos.json``:

1. computes a fault-free sequential ground truth for a hotspot workload;
2. installs a seeded :class:`~repro.resilience.FaultPlan` injecting
   store-IO faults (a guaranteed first-load corruption plus random load
   and save failures), a ~5% background kernel fault rate, a
   total-kernel-outage burst window (to trip the circuit breaker) and
   one worker kill mid-run;
3. replays the workload through a :class:`KNNServer` with retrying
   closed-loop clients;
4. clears the plan and probes until the breaker re-closes.

Gates (any failure exits 1; the JSON records all of them):

* availability — ``ok / requests >= 0.99`` under the plan;
* zero wrong answers — non-degraded OK responses byte-identical to the
  fault-free truth (same method, same kernel); degraded responses exact
  under :func:`~repro.knn.base.verify_knn_result` (the repo's
  cross-method agreement standard: distances within 1e-9 relative,
  vertex ids free only under distance ties) and flagged via provenance;
* at least one degraded response (the fallback chain actually ran);
* the ``ine`` breaker opened during the outage burst and re-closed
  after recovery;
* the supervisor restarted at least one worker (the injected kill);
* at least one store artifact was quarantined;
* after the plan is cleared, answers are non-degraded and byte-identical
  again.

Usage::

    python benchmarks/bench_chaos.py            # full run
    python benchmarks/bench_chaos.py --quick    # CI-sized run
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # direct script runs without install
    sys.path.insert(0, str(REPO_SRC))

from repro.engine.engine import QueryEngine  # noqa: E402
from repro.engine.workbench import IndexCache  # noqa: E402
from repro.graph.generators import road_network  # noqa: E402
from repro.knn.base import verify_knn_result  # noqa: E402
from repro.objects import uniform_objects  # noqa: E402
from repro.resilience import (  # noqa: E402
    FaultPlan,
    FaultSpec,
    clear_plan,
    install_plan,
    quarantine_counts,
    reset_quarantine_counts,
)
from repro.server import (  # noqa: E402
    KNNServer,
    hotspot_workload,
    run_closed_loop,
    sequential_baseline,
)
from repro.store import IndexStore  # noqa: E402

from report import write_report  # noqa: E402


def build_plan(seed: int, burst: tuple) -> FaultPlan:
    """The seeded chaos plan (see module docstring for the shape)."""
    return FaultPlan(seed=seed, specs=(
        # First store read is corrupt (guaranteed quarantine), later
        # reads fail 10% of the time.
        FaultSpec("store.load", nth_calls=(1,), probability=0.10),
        # A quarter of artifact writes fail; saves are tolerated (the
        # freshly built index is served anyway).
        FaultSpec("store.save", probability=0.25),
        # Background kernel fault rate on the INE/SSSP hot path.
        FaultSpec("kernel.sssp", probability=0.05),
        # Total kernel outage for a window of call ordinals — enough
        # consecutive primary failures to trip the breaker open.
        FaultSpec("kernel.sssp", between=burst, probability=1.0),
        # One worker thread dies mid-run; the supervisor must replace it.
        FaultSpec("worker.die", nth_calls=(12,)),
    ))


def check_answers(responses, truths) -> Dict[str, int]:
    """Compare server responses to fault-free truth; count outcomes."""
    out = {"ok": 0, "degraded": 0, "wrong": 0, "missing": 0, "failed": 0}
    for response, truth in zip(responses, truths):
        if response is None:
            out["missing"] += 1
            continue
        if not response.ok:
            out["failed"] += 1
            continue
        out["ok"] += 1
        if response.degraded:
            out["degraded"] += 1
            # A fallback method: exact, but float associativity may
            # differ in the last ulp — hold it to the repo's
            # cross-method agreement standard.
            if not verify_knn_result(response.result, truth) or len(
                response.result
            ) != len(truth):
                out["wrong"] += 1
        elif response.result.as_tuples() != truth.as_tuples():
            # Same method, same kernel: byte-identical or it's wrong.
            out["wrong"] += 1
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", default="BENCH_chaos.json")
    args = parser.parse_args()

    vertices = args.vertices or (800 if args.quick else 2000)
    requests = args.requests or (150 if args.quick else 400)
    burst = (40, 90) if args.quick else (100, 170)
    k = 5

    run_started = time.time()
    graph = road_network(vertices, seed=args.seed)
    # Density 0.02 >= the planner threshold: "auto" resolves to INE on
    # the array kernel, so kernel.sssp faults hit the primary method.
    objects = uniform_objects(graph, density=0.02, seed=args.seed + 1)
    items = hotspot_workload(
        graph, requests, k, hot_vertices=32, seed=args.seed + 2
    )

    print(f"{graph}, |O|={len(objects)}, {requests} requests, k={k}")
    truth_engine = QueryEngine(graph, objects)
    baseline_qps, truths = sequential_baseline(truth_engine, items)
    print(f"  fault-free baseline: {baseline_qps:.0f} qps")

    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="chaos-store-") as tmp:
        store = IndexStore(tmp)
        # Prebuild the fallback index into the store fault-free; the
        # chaos engine then *loads* it — the store.load fault surface.
        IndexCache(graph, store=store).prebuild(["gtree"])
        reset_quarantine_counts()

        cache = IndexCache(graph, store=store)
        engine = QueryEngine(cache, objects)
        server = KNNServer(
            engine,
            workers=4,
            max_batch=8,
            cache_capacity=0,  # no result cache: every query computes
            breaker_threshold=4,
            breaker_cooldown_s=0.4,
            heartbeat_interval_s=0.1,
            wedge_timeout_s=2.0,
        )
        server.start(warmup_methods=["auto"])

        plan = install_plan(build_plan(args.seed, burst))
        try:
            report = run_closed_loop(
                server, items, concurrency=8, timeout_s=30.0,
                retries=3, retry_backoff_s=0.01,
            )
            time.sleep(0.3)  # let the supervisor notice the killed worker
            plan_snapshot = plan.snapshot()
            health_during = server.health()
        finally:
            clear_plan()

        # Recovery: with the plan gone the breaker must re-close (the
        # cooldown expires, a half-open probe succeeds).
        recovered = False
        recovery_checks = {"ok": 0, "degraded": 0, "mismatched": 0}
        deadline = time.monotonic() + 30.0
        probe_items = items[:20]
        while time.monotonic() < deadline:
            state = server.health()["breakers"].get("ine", {}).get("state")
            if state in (None, "closed"):
                recovered = True
                break
            server.query(items[0].vertex, k)
            time.sleep(0.1)
        for item, truth in zip(probe_items, truths[:20]):
            response = server.query(item.vertex, item.k)
            recovery_checks["ok"] += response.ok
            recovery_checks["degraded"] += bool(response.degraded)
            if (
                not response.ok
                or response.result.as_tuples() != truth.as_tuples()
            ):
                recovery_checks["mismatched"] += 1
        health_after = server.health()
        stats = server.stats()
        server.stop()
        quarantined = quarantine_counts(store.root)
        reset_quarantine_counts()

    answers = check_answers(report.responses, truths)
    total = report.requests
    ok_rate = answers["ok"] / total if total else 0.0
    breaker = health_after["breakers"].get("ine", {})
    restarts = health_after["workers"]["restarts_total"]

    if ok_rate < 0.99:
        failures.append(f"availability {ok_rate:.4f} < 0.99")
    if answers["wrong"]:
        failures.append(f"{answers['wrong']} wrong answers")
    if not answers["degraded"]:
        failures.append("no degraded responses — fallback chain never ran")
    if breaker.get("opened_total", 0) < 1:
        failures.append("ine breaker never opened")
    if not recovered or breaker.get("state") != "closed":
        failures.append(f"ine breaker did not re-close: {breaker}")
    if restarts < 1:
        failures.append("supervisor restarted no workers")
    if sum(quarantined.values()) < 1:
        failures.append("no store artifact was quarantined")
    if recovery_checks["degraded"] or recovery_checks["mismatched"]:
        failures.append(
            f"post-recovery answers not clean: {recovery_checks}"
        )

    print(
        f"  under chaos: {answers['ok']}/{total} ok "
        f"({ok_rate:.2%}), {answers['degraded']} degraded, "
        f"{answers['wrong']} wrong, client retries "
        f"{report.client_retries}, server retries "
        f"{stats['counts'].get('retries', 0)}"
    )
    print(
        f"  breaker: opened {breaker.get('opened_total', 0)}x, "
        f"re-closed {breaker.get('closed_after_open', 0)}x, final state "
        f"{breaker.get('state')}; worker restarts {restarts}; "
        f"quarantined {dict(quarantined)}"
    )

    payload = {
        "bench": "chaos",
        "vertices": vertices,
        "requests": total,
        "k": k,
        "seed": args.seed,
        "availability": round(ok_rate, 4),
        "answers": answers,
        "status_counts": report.status_counts,
        "client_retries": report.client_retries,
        "server_retries": stats["counts"].get("retries", 0),
        "degraded_responses": stats["counts"].get("degraded", 0),
        "breaker_ine": breaker,
        "breaker_during": health_during["breakers"].get("ine", {}),
        "worker_restarts": restarts,
        "quarantined": dict(quarantined),
        "recovery": {"recovered": recovered, **recovery_checks},
        "fault_plan": plan_snapshot,
        "failures": failures,
    }
    if args.json:
        write_report(args.json, payload, run_started)
        print(f"  report written to {args.json}")
    if failures:
        for failure in failures:
            print(f"  !! {failure}", file=sys.stderr)
        return 1
    print("  all chaos gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
