"""Delta types for the live-update engine.

This module is deliberately dependency-free (only stdlib) so that index
modules (:mod:`repro.index.gtree`, :mod:`repro.index.road`,
:mod:`repro.pathfinding.ch`) can import :class:`RepairUnavailable`
without circular imports, and so delta objects can cross thread
boundaries cheaply.

Delta semantics
---------------

* :class:`ObjectDelta` — add/remove/move a POI (a vertex id) in one
  category's object set.  ``move`` is sugar for remove(vertex) +
  add(target).  Adding an existing object or removing a missing one is
  an error surfaced by :meth:`repro.engine.engine.QueryEngine.apply_updates`.
* :class:`WeightDelta` — set the travel weight of undirected edge
  ``(u, v)`` to the **absolute** value ``new_weight``.  Absolute (not
  relative) weights make replaying a delta stream idempotent: applying
  the same batch twice leaves the graph unchanged, which is what lets
  several engines share one mutated workbench.

Repair contracts
----------------

Incremental repair must be *byte-identical* to a from-scratch rebuild on
the same partition hierarchy: repaired index matrices compare equal with
``np.array_equal`` and repaired kNN answers match rebuilt answers
exactly.  An index that cannot honour that contract for a given state
(e.g. it was loaded from the store without repair provenance) raises
:class:`RepairUnavailable`; callers fall back to dropping the index and
rebuilding lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class RepairUnavailable(Exception):
    """The index cannot repair itself in place; rebuild instead."""


@dataclass(frozen=True)
class ObjectDelta:
    """One POI mutation: ``kind`` is ``"add"``, ``"remove"`` or ``"move"``."""

    kind: str
    vertex: int
    target: int = -1  # destination vertex for "move"

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove", "move"):
            raise ValueError(f"unknown object delta kind {self.kind!r}")
        if self.kind == "move" and self.target < 0:
            raise ValueError("move delta needs a target vertex")


@dataclass(frozen=True)
class WeightDelta:
    """Set undirected edge ``(u, v)`` travel weight to ``new_weight``."""

    u: int
    v: int
    new_weight: float

    def __post_init__(self) -> None:
        if not self.new_weight > 0.0:
            raise ValueError("edge weights must stay positive")


def add_object(vertex: int) -> ObjectDelta:
    return ObjectDelta("add", int(vertex))


def remove_object(vertex: int) -> ObjectDelta:
    return ObjectDelta("remove", int(vertex))


def move_object(vertex: int, target: int) -> ObjectDelta:
    return ObjectDelta("move", int(vertex), int(target))


def set_weight(u: int, v: int, new_weight: float) -> WeightDelta:
    return WeightDelta(int(u), int(v), float(new_weight))


@dataclass
class UpdateReport:
    """What one ``apply_updates`` call touched, for tests and benchmarks.

    ``repaired`` maps index name -> per-index repair counters (e.g. the
    number of G-tree nodes whose matrices were actually recomputed);
    ``dropped`` lists indexes/algorithm instances that could not repair
    in place and will be rebuilt lazily on next use.
    """

    objects_added: int = 0
    objects_removed: int = 0
    weight_changes: List[Tuple[int, int, float, float]] = field(
        default_factory=list
    )
    repaired: Dict[str, Dict[str, int]] = field(default_factory=dict)
    dropped: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def weights_changed(self) -> int:
        return len(self.weight_changes)

    def merge_repair(self, name: str, counters: Dict[str, int]) -> None:
        slot = self.repaired.setdefault(name, {})
        for key, value in counters.items():
            slot[key] = slot.get(key, 0) + int(value)

    def to_dict(self) -> dict:
        return {
            "objects_added": self.objects_added,
            "objects_removed": self.objects_removed,
            "weights_changed": self.weights_changed,
            "repaired": {k: dict(v) for k, v in self.repaired.items()},
            "dropped": list(self.dropped),
            "elapsed_s": self.elapsed_s,
        }


def split_deltas(
    deltas: Sequence[object],
) -> Tuple[List[ObjectDelta], List[WeightDelta]]:
    """Partition a mixed delta stream, rejecting unknown types."""
    objs: List[ObjectDelta] = []
    weights: List[WeightDelta] = []
    for delta in deltas:
        if isinstance(delta, ObjectDelta):
            objs.append(delta)
        elif isinstance(delta, WeightDelta):
            weights.append(delta)
        else:
            raise TypeError(f"not a delta: {delta!r}")
    return objs, weights


def net_object_changes(
    deltas: Sequence[ObjectDelta],
    current: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """Resolve a delta stream against ``current`` into net adds/removes.

    Validates each delta in order against the evolving set, so e.g.
    remove(v) followed by add(v) is legal and nets out to nothing.
    """
    present = set(int(o) for o in current)
    added: set = set()
    removed: set = set()

    def _add(v: int) -> None:
        if v in present:
            raise ValueError(f"object {v} already present")
        present.add(v)
        if v in removed:
            removed.discard(v)
        else:
            added.add(v)

    def _remove(v: int) -> None:
        if v not in present:
            raise ValueError(f"object {v} not present")
        present.discard(v)
        if v in added:
            added.discard(v)
        else:
            removed.add(v)

    for delta in deltas:
        if delta.kind == "add":
            _add(int(delta.vertex))
        elif delta.kind == "remove":
            _remove(int(delta.vertex))
        else:  # move
            _remove(int(delta.vertex))
            _add(int(delta.target))
    return sorted(added), sorted(removed)


def coalesce_weight_deltas(
    deltas: Sequence[WeightDelta],
) -> List[WeightDelta]:
    """Last-writer-wins per undirected edge, preserving first-seen order."""
    latest: Dict[Tuple[int, int], WeightDelta] = {}
    order: List[Tuple[int, int]] = []
    for delta in deltas:
        key = (min(delta.u, delta.v), max(delta.u, delta.v))
        if key not in latest:
            order.append(key)
        latest[key] = delta
    return [latest[key] for key in order]


__all__ = [
    "RepairUnavailable",
    "ObjectDelta",
    "WeightDelta",
    "UpdateReport",
    "add_object",
    "remove_object",
    "move_object",
    "set_weight",
    "split_deltas",
    "net_object_changes",
    "coalesce_weight_deltas",
]
