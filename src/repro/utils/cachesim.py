"""Trace-driven CPU cache simulator (Table 3 analogue).

The paper profiles three G-tree distance-matrix layouts with ``perf``
hardware counters and shows the 1-D array layout incurs ~50x fewer cache
misses than chained hashing.  We cannot read hardware counters portably
from Python, so we model the memory system instead: each matrix layout
emits a trace of byte addresses it would touch, and this simulator replays
the trace through a small set-associative LRU cache hierarchy.  The model
reproduces the *ordering* the paper reports (array << quadratic probing <
chained hashing) which is the experiment's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class CacheLevel:
    """One set-associative LRU cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    hits: int = 0
    misses: int = 0
    _sets: List[List[int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        n_lines = self.size_bytes // self.line_bytes
        self.n_sets = max(1, n_lines // self.associativity)
        self._sets = [[] for _ in range(self.n_sets)]

    def access(self, address: int) -> bool:
        """Access ``address``; returns True on hit."""
        line = address // self.line_bytes
        way = self._sets[line % self.n_sets]
        try:
            way.remove(line)
            way.append(line)
            self.hits += 1
            return True
        except ValueError:
            way.append(line)
            if len(way) > self.associativity:
                way.pop(0)
            self.misses += 1
            return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """An inclusive L1/L2/L3 hierarchy replaying an address trace.

    Sizes default to a scaled-down desktop CPU (the traces we replay come
    from scaled-down networks, so the cache must scale too for the working
    set/capacity ratio to match the paper's setting).
    """

    def __init__(
        self,
        l1_bytes: int = 8 * 1024,
        l2_bytes: int = 64 * 1024,
        l3_bytes: int = 512 * 1024,
        line_bytes: int = 64,
    ) -> None:
        self.levels = [
            CacheLevel(l1_bytes, line_bytes, associativity=8),
            CacheLevel(l2_bytes, line_bytes, associativity=8),
            CacheLevel(l3_bytes, line_bytes, associativity=16),
        ]

    def access(self, address: int) -> int:
        """Access an address; returns the level index that hit (3 = memory)."""
        for i, level in enumerate(self.levels):
            if level.access(address):
                # Maintain inclusion: bring the line into upper levels too.
                for upper in self.levels[:i]:
                    upper.access(address)
                return i
        return len(self.levels)

    def replay(self, trace: Iterable[int]) -> Dict[str, int]:
        """Replay a full address trace; returns per-level miss counts."""
        for address in trace:
            self.access(address)
        return self.stats()

    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for i, level in enumerate(self.levels, start=1):
            out[f"L{i}_hits"] = level.hits
            out[f"L{i}_misses"] = level.misses
        return out

    def reset(self) -> None:
        for level in self.levels:
            level.reset_stats()
            level.__post_init__()


class AddressTraceRecorder:
    """Collects the byte addresses a data-structure layout would touch.

    Layout models append addresses here instead of actually simulating the
    CPU; the recorder also counts "instructions" (one per logical probe
    step) to mirror the paper's INS column.
    """

    __slots__ = ("addresses", "instructions")

    def __init__(self) -> None:
        self.addresses: List[int] = []
        self.instructions = 0

    def touch(self, address: int, instructions: int = 1) -> None:
        self.addresses.append(address)
        self.instructions += instructions

    def __len__(self) -> int:
        return len(self.addresses)
