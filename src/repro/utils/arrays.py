"""Ragged-array flattening helpers for the persistent index store.

Every index serializes to a flat dict of numpy arrays (``to_arrays``).
Per-node ragged sequences — border lists, labels, matrices — are stored
as one concatenated array plus an ``offsets`` array of length ``n + 1``,
the same offset-indexed layout the paper's Section 6.2 uses in memory.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def concat_ragged(
    rows: Sequence[np.ndarray], dtype
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a ragged list of 1-D arrays into ``(flat, offsets[n+1])``."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        offsets[i + 1] = offsets[i] + len(row)
    if rows:
        flat = np.concatenate([np.asarray(r, dtype=dtype) for r in rows])
    else:
        flat = np.empty(0, dtype=dtype)
    return flat.astype(dtype, copy=False), offsets


def ragged_row(flat: np.ndarray, offsets: np.ndarray, i: int) -> np.ndarray:
    """Row ``i`` of a :func:`concat_ragged` pair."""
    return flat[int(offsets[i]) : int(offsets[i + 1])]
