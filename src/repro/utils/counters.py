"""Opt-in instrumentation counters.

Several of the paper's figures report algorithm-internal statistics rather
than wall-clock time — Figure 9(b) plots G-tree "path cost" (the number of
border-to-border distance-matrix computations) against the number of
vertices ROAD bypasses; Table 3 profiles memory accesses.  Algorithms in
this library accept an optional :class:`Counters` and record into it; the
shared :data:`NULL_COUNTERS` sentinel records nothing, so un-instrumented
benchmark runs pay a single attribute read per event site.
"""

from __future__ import annotations

from typing import Dict


class Counters:
    """Mutable bag of named event counters.

    >>> c = Counters()
    >>> c.add("heap_pops"); c.add("heap_pops", 2)
    >>> c["heap_pops"]
    3
    """

    __slots__ = ("enabled", "_counts")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self._counts[name] = self._counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def reset(self) -> None:
        self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counters({body})"


#: Shared disabled counters; used as default everywhere.
NULL_COUNTERS = Counters(enabled=False)

#: Process-wide build-event counters.  Every road-network index records a
#: ``build:<name>`` event when it runs its (expensive) constructor, and
#: *not* when it is rehydrated via ``from_arrays`` — which is how the
#: store tests assert that a warm-started ``Workbench`` performs zero
#: index builds.
BUILD_COUNTERS = Counters()
