"""Opt-in instrumentation counters.

Several of the paper's figures report algorithm-internal statistics rather
than wall-clock time — Figure 9(b) plots G-tree "path cost" (the number of
border-to-border distance-matrix computations) against the number of
vertices ROAD bypasses; Table 3 profiles memory accesses.  Algorithms in
this library accept an optional :class:`Counters` and record into it; the
shared :data:`NULL_COUNTERS` sentinel records nothing, so un-instrumented
benchmark runs pay a single attribute read per event site.
"""

from __future__ import annotations

from typing import Dict

#: Canonical counter names follow a documented ``<phase>_<what>`` scheme
#: (see docs/performance.md): the *phase* names the algorithm stage doing
#: the work (``expand`` — incremental network expansion; ``sssp`` —
#: bounded single-source searches; ``bidir`` — bidirectional upward CH
#: searches; ``leaf``/``matrix`` — G-tree leaf search and border-matrix
#: ops; ``euclid``/``verify`` — IER candidate generation and network
#: verification; ``interval``/``browse`` — SILC interval lookups and
#: distance browsing; ``table``/``local`` — TNR table hits and local
#: fallbacks; ``label`` — hub-label scans), and the *what* names the
#: event.  Algorithms record canonical names; this table maps the
#: pre-normalization method-prefixed names onto them, and
#: :meth:`Counters.__getitem__` resolves both spellings, so every
#: historical ``result.counters["ine_settled"]`` read keeps working.
LEGACY_ALIASES: Dict[str, str] = {
    "ine_settled": "expand_settled",
    "road_settled": "expand_settled",
    "road_bypassed": "expand_bypassed",
    "dijkstra_settled": "sssp_settled",
    "astar_settled": "sssp_settled",
    "ch_settled": "bidir_settled",
    "gtree_leaf_settled": "leaf_settled",
    "gtree_matrix_ops": "matrix_ops",
    "ier_network_computations": "verify_network_computations",
    "ier_false_hits": "verify_false_hits",
    "ier_candidate_replacements": "euclid_candidate_replacements",
    "disbrw_interval_lookups": "interval_lookups",
    "disbrw_insert_pruned": "browse_insert_pruned",
    "disbrw_block_pruned": "browse_block_pruned",
    "disbrw_dropped": "browse_dropped",
    "disbrw_refinements": "browse_refinements",
    "disbrw_region_bounds": "browse_region_bounds",
    "disbrw_enn_retrieved": "browse_enn_retrieved",
    "tnr_table_queries": "table_lookups",
    "tnr_local_queries": "local_searches",
    "hl_queries": "label_scans",
}


def canonical_name(name: str) -> str:
    """The canonical ``<phase>_<what>`` spelling of a counter name."""
    return LEGACY_ALIASES.get(name, name)


class Counters:
    """Mutable bag of named event counters.

    Lookups resolve :data:`LEGACY_ALIASES`, so the pre-normalization
    method-prefixed names keep reading the canonical counts.

    >>> c = Counters()
    >>> c.add("heap_pops"); c.add("heap_pops", 2)
    >>> c["heap_pops"]
    3
    >>> c.add("expand_settled", 7)
    >>> c["ine_settled"]
    7
    """

    __slots__ = ("enabled", "_counts")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self._counts[name] = self._counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        counts = self._counts
        value = counts.get(name)
        if value is not None:
            return value
        return counts.get(LEGACY_ALIASES.get(name, name), 0)

    def reset(self) -> None:
        self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counters({body})"


#: Shared disabled counters; used as default everywhere.
NULL_COUNTERS = Counters(enabled=False)

#: Process-wide build-event counters.  Every road-network index records a
#: ``build:<name>`` event when it runs its (expensive) constructor, and
#: *not* when it is rehydrated via ``from_arrays`` — which is how the
#: store tests assert that a warm-started ``Workbench`` performs zero
#: index builds.
BUILD_COUNTERS = Counters()
