"""Shared in-memory building blocks used across the kNN methods.

The paper (Section 6.2) stresses that seemingly innocuous data-structure
choices — priority queues, settled-vertex containers, graph layouts — can
change experimental outcomes by integer factors.  This package holds the
shared implementations so every algorithm uses the *same* subroutines, as
the paper's methodology requires.
"""

from repro.utils.pqueue import BinaryHeap, DecreaseKeyHeap
from repro.utils.bitset import BitArray
from repro.utils.counters import Counters, NULL_COUNTERS

__all__ = [
    "BinaryHeap",
    "DecreaseKeyHeap",
    "BitArray",
    "Counters",
    "NULL_COUNTERS",
]
