"""Priority queues used by the kNN algorithms.

The paper (Section 6.2, choice 1) finds that a binary heap *without*
decrease-key — i.e. one that tolerates duplicate entries and discards
stale ones on pop — is about twice as fast as a heap that maintains a
position index for key updates, because road networks are degree bounded
and duplicates are rare.  ``BinaryHeap`` is that structure and is the queue
used by every algorithm in this library.

``DecreaseKeyHeap`` implements the textbook indexed heap.  It exists only
so the Figure 7 ablation ("1st Cut" vs "PQueue") can be reproduced.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple


class BinaryHeap:
    """Min-heap of ``(key, item)`` pairs allowing duplicate items.

    Stale entries (an item pushed again with a smaller key) are left in the
    heap and must be filtered by the caller, typically with a settled set.
    A monotone sequence number breaks key ties so items never need to be
    comparable:

    >>> h = BinaryHeap()
    >>> h.push(3.0, "a"); h.push(1.0, "b")
    >>> h.pop()
    (1.0, 'b')
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: float, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, item))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the ``(key, item)`` pair with smallest key."""
        key, _, item = heapq.heappop(self._heap)
        return key, item

    def peek(self) -> Tuple[float, Any]:
        key, _, item = self._heap[0]
        return key, item

    def peek_key(self) -> float:
        """Smallest key, or infinity when empty (``Front(Q)`` in the paper)."""
        return self._heap[0][0] if self._heap else float("inf")

    def clear(self) -> None:
        self._heap.clear()


class MaxHeap:
    """Max-heap of ``(key, item)`` pairs (keys negated internally).

    Used as the candidate list ``L`` in Distance Browsing, where the
    furthest of the current k candidates must be evicted quickly.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: float, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-key, self._seq, item))

    def pop(self) -> Tuple[float, Any]:
        key, _, item = heapq.heappop(self._heap)
        return -key, item

    def peek(self) -> Tuple[float, Any]:
        key, _, item = self._heap[0]
        return -key, item

    def peek_key(self) -> float:
        return -self._heap[0][0] if self._heap else float("-inf")

    def remove(self, item: Any) -> bool:
        """Remove one entry for ``item``; returns False if not present.

        Linear scan — the heap holds at most k entries in DisBrw, so this
        is cheap in practice.
        """
        for i, (_, _, existing) in enumerate(self._heap):
            if existing == item:
                last = self._heap.pop()
                if i < len(self._heap):
                    self._heap[i] = last
                    heapq.heapify(self._heap)
                return True
        return False

    def __contains__(self, item: Any) -> bool:
        return any(existing == item for _, _, existing in self._heap)


class DecreaseKeyHeap:
    """Indexed binary min-heap supporting decrease-key, no duplicates.

    This is the "first cut" queue from Figure 7: every vertex appears at
    most once and :meth:`push` updates the key in place when the vertex is
    already queued.  The position index makes each operation slower than
    :class:`BinaryHeap` — which is exactly the effect the ablation shows.
    """

    def __init__(self) -> None:
        self._keys: List[float] = []
        self._items: List[Any] = []
        self._pos: dict = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, item: Any) -> bool:
        return item in self._pos

    def key_of(self, item: Any) -> Optional[float]:
        i = self._pos.get(item)
        return None if i is None else self._keys[i]

    def push(self, key: float, item: Any) -> bool:
        """Insert ``item`` or decrease its key.

        Returns True if the heap changed (new item, or smaller key).
        """
        i = self._pos.get(item)
        if i is None:
            self._keys.append(key)
            self._items.append(item)
            self._pos[item] = len(self._keys) - 1
            self._sift_up(len(self._keys) - 1)
            return True
        if key < self._keys[i]:
            self._keys[i] = key
            self._sift_up(i)
            return True
        return False

    def pop(self) -> Tuple[float, Any]:
        key, item = self._keys[0], self._items[0]
        del self._pos[item]
        last_key, last_item = self._keys.pop(), self._items.pop()
        if self._keys:
            self._keys[0], self._items[0] = last_key, last_item
            self._pos[last_item] = 0
            self._sift_down(0)
        return key, item

    def peek_key(self) -> float:
        return self._keys[0] if self._keys else float("inf")

    def _sift_up(self, i: int) -> None:
        keys, items, pos = self._keys, self._items, self._pos
        key, item = keys[i], items[i]
        while i > 0:
            parent = (i - 1) >> 1
            if keys[parent] <= key:
                break
            keys[i], items[i] = keys[parent], items[parent]
            pos[items[i]] = i
            i = parent
        keys[i], items[i] = key, item
        pos[item] = i

    def _sift_down(self, i: int) -> None:
        keys, items, pos = self._keys, self._items, self._pos
        n = len(keys)
        key, item = keys[i], items[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            if child + 1 < n and keys[child + 1] < keys[child]:
                child += 1
            if keys[child] >= key:
                break
            keys[i], items[i] = keys[child], items[child]
            pos[items[i]] = i
            i = child
        keys[i], items[i] = key, item
        pos[item] = i
