"""Bit-array settled-vertex container (paper Section 6.2, choice 2).

INE, ROAD and the Dijkstra variants must track which vertices have been
settled.  The paper finds a pre-allocated bit array roughly 2x faster than
a hash set despite the per-query allocation cost, because it occupies 32x
less space than an int array and therefore fits far more entries per cache
line.  In Python the same trade-off appears between a ``set`` and a
``bytearray``; we use a ``bytearray`` (one byte per vertex) which profiles
faster than bit twiddling in CPython while keeping the pre-allocation
semantics of the paper.
"""

from __future__ import annotations


class BitArray:
    """Fixed-size boolean array over vertex ids ``0..n-1``.

    >>> b = BitArray(8)
    >>> b.set(3); b.get(3), b.get(4)
    (True, False)
    """

    __slots__ = ("_bytes", "_n")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("size must be non-negative")
        self._n = n
        self._bytes = bytearray(n)

    def __len__(self) -> int:
        return self._n

    def get(self, i: int) -> bool:
        return bool(self._bytes[i])

    def set(self, i: int) -> None:
        self._bytes[i] = 1

    def unset(self, i: int) -> None:
        self._bytes[i] = 0

    def __contains__(self, i: int) -> bool:
        return bool(self._bytes[i])

    def add(self, i: int) -> None:
        """Alias for :meth:`set` so BitArray is a drop-in for ``set()``."""
        self._bytes[i] = 1

    def clear(self) -> None:
        self._bytes = bytearray(self._n)

    def count(self) -> int:
        return sum(self._bytes)
