"""Object (POI) set generation and object indexes.

Implements the paper's three synthetic distributions (Section 4.2) —
uniform, clustered and minimum-object-distance — plus named POI sets
matching the relative densities of the real-world OpenStreetMap sets in
Table 2.  The decoupled object indexes themselves (R-tree for IER/DisBrw,
Occurrence List for G-tree, Association Directory for ROAD) live with
their consumers; :func:`object_index_costs` gathers their build time and
size for the Section 7.4 experiments.
"""

from repro.objects.generators import (
    POI_CATEGORIES,
    clustered_objects,
    min_distance_object_sets,
    poi_object_sets,
    uniform_objects,
)
from repro.objects.indexes import object_index_costs

__all__ = [
    "uniform_objects",
    "clustered_objects",
    "min_distance_object_sets",
    "poi_object_sets",
    "POI_CATEGORIES",
    "object_index_costs",
]
