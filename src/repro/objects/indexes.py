"""Object-index cost measurement (paper Section 7.4).

The paper is the first study to measure the *object* indexes separately
from the road-network indexes: R-trees (used by IER and DB-ENN),
Occurrence Lists (G-tree) and Association Directories (ROAD).  This
module builds all three for a given object set and reports their
construction times and sizes, plus the raw object array as INE's
lower-bound storage cost.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.index.gtree import GTree, OccurrenceList
from repro.index.road import AssociationDirectory, RoadIndex
from repro.spatial.rtree import RTree


def object_index_costs(
    graph: Graph,
    gtree: GTree,
    road: RoadIndex,
    objects: Sequence[int],
    rtree_node_capacity: int = 16,
) -> Dict[str, Dict[str, float]]:
    """Build every object index for ``objects`` and measure it.

    Returns ``{index_name: {"build_time_s": ..., "size_bytes": ...}}``
    with entries for ``ine`` (raw object list, the lower bound), ``rtree``
    (IER / DisBrw), ``occurrence_list`` (G-tree) and
    ``association_directory`` (ROAD).
    """
    objects = np.asarray(list(objects), dtype=np.int64)
    out: Dict[str, Dict[str, float]] = {}

    out["ine"] = {"build_time_s": 0.0, "size_bytes": float(objects.nbytes)}

    start = time.perf_counter()
    rtree = RTree(
        [graph.x[o] for o in objects],
        [graph.y[o] for o in objects],
        items=[int(o) for o in objects],
        node_capacity=rtree_node_capacity,
    )
    out["rtree"] = {
        "build_time_s": time.perf_counter() - start,
        "size_bytes": float(rtree.size_bytes()),
    }

    ol = OccurrenceList(gtree, objects)
    out["occurrence_list"] = {
        "build_time_s": ol.build_time(),
        "size_bytes": float(ol.size_bytes()),
    }

    ad = AssociationDirectory(road, objects)
    out["association_directory"] = {
        "build_time_s": ad.build_time(),
        "size_bytes": float(ad.size_bytes()),
    }
    return out
