"""Object-set generators (paper Section 4.2).

All generators return sorted numpy arrays of object vertex ids and take
explicit seeds.  Densities are ratios d = |O| / |V| as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.pathfinding.bulk import bulk_sssp, eccentric_vertex, network_center


def uniform_objects(
    graph: Graph, density: float, seed: int = 0, minimum: int = 1
) -> np.ndarray:
    """Uniformly random object vertices at the given density.

    Because vertices themselves concentrate where the road network is
    dense, uniform vertex sampling mimics real POIs (more objects in
    cities) — the paper's rationale for this distribution.
    """
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    n = graph.num_vertices
    size = max(minimum, int(round(density * n)))
    size = min(size, n)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=size, replace=False))


def clustered_objects(
    graph: Graph,
    num_clusters: int,
    max_cluster_size: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Clustered objects: BFS-grown clusters around random centres.

    For each of ``num_clusters`` uniformly random central vertices, up to
    ``max_cluster_size`` vertices in its vicinity are selected by
    expanding outwards (the distribution used to evaluate ROAD).
    """
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    centers = rng.choice(n, size=min(num_clusters, n), replace=False)
    chosen = set()
    for center in centers:
        size = int(rng.integers(1, max_cluster_size + 1))
        frontier = [int(center)]
        seen = {int(center)}
        picked = 0
        while frontier and picked < size:
            u = frontier.pop(0)
            chosen.add(u)
            picked += 1
            for v, _ in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
    return np.sort(np.asarray(sorted(chosen), dtype=np.int64))


def min_distance_object_sets(
    graph: Graph,
    num_sets: int,
    size: int,
    seed: int = 0,
) -> Tuple[List[np.ndarray], np.ndarray, float]:
    """Minimum-object-distance sets R_1..R_m (worst-case remoteness).

    From the network-centre vertex ``v_c``, the maximum network distance
    ``D_max`` is found; set ``R_i`` samples ``size`` objects whose network
    distance from ``v_c`` is at least ``D_max / 2^(m-i+1)`` — so the
    minimum object distance grows exponentially with i.

    Returns ``(sets, query_pool, D_max)`` where ``query_pool`` holds the
    vertices closer to the centre than any R_1 object (the paper draws
    query vertices from distances ``[0, D_max/2^m)``).
    """
    vc = network_center(graph)
    _, dmax = eccentric_vertex(graph, vc)
    dist = bulk_sssp(graph, [vc])[0]
    rng = np.random.default_rng(seed)
    sets: List[np.ndarray] = []
    for i in range(1, num_sets + 1):
        threshold = dmax / (2 ** (num_sets - i + 1))
        eligible = np.nonzero(np.isfinite(dist) & (dist >= threshold))[0]
        if len(eligible) == 0:
            raise ValueError(
                f"no vertices at distance >= {threshold:.3f} for set R{i}"
            )
        take = min(size, len(eligible))
        sets.append(np.sort(rng.choice(eligible, size=take, replace=False)))
    query_pool = np.nonzero(
        np.isfinite(dist) & (dist < dmax / (2 ** num_sets))
    )[0]
    if len(query_pool) == 0:
        query_pool = np.asarray([vc], dtype=np.int64)
    return sets, query_pool, dmax


#: Named POI categories with the relative densities of Table 2 (NW column)
#: and whether the paper observes them to be clustered.
POI_CATEGORIES: Tuple[Tuple[str, float, bool], ...] = (
    ("schools", 0.004, False),
    ("parks", 0.005, False),
    ("fast_food", 0.001, True),
    ("post_offices", 0.001, False),
    ("hospitals", 0.0002, False),
    ("hotels", 0.0004, True),
    ("universities", 0.00009, False),
    ("courthouses", 0.00005, False),
)


def poi_object_sets(
    graph: Graph,
    seed: int = 0,
    minimum: int = 10,
    categories: Optional[Sequence[Tuple[str, float, bool]]] = None,
    density_scale: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Table 2 stand-ins: one object set per named POI category.

    Densities follow the paper's real-world sets; categories the paper
    identifies as clustered (fast food, hotels) are generated with the
    clustered distribution, the rest uniformly.  ``minimum`` guarantees
    each set can answer the default k on scaled-down networks, and
    ``density_scale`` scales every category up so the relative size
    spread survives on networks 100x smaller than the paper's (matching
    the scaled default density, see DESIGN.md).
    """
    if categories is None:
        categories = POI_CATEGORIES
    out: Dict[str, np.ndarray] = {}
    for index, (name, density, clustered) in enumerate(categories):
        set_seed = seed + 101 * index
        size = max(
            minimum, int(round(density * density_scale * graph.num_vertices))
        )
        if clustered:
            clusters = max(2, size // 3)
            objs = clustered_objects(
                graph, num_clusters=clusters, max_cluster_size=5, seed=set_seed
            )
            if len(objs) > size:
                rng = np.random.default_rng(set_seed)
                objs = np.sort(rng.choice(objs, size=size, replace=False))
        else:
            objs = uniform_objects(
                graph, density=size / graph.num_vertices, seed=set_seed
            )
        out[name] = objs
    return out
