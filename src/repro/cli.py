"""Command-line interface: quick queries and experiments without code.

Examples::

    # generate a network, drop objects, answer one query with every method
    python -m repro query --vertices 2000 --density 0.01 --k 5 --query 42

    # let the engine's planner pick the method for the workload
    python -m repro query --vertices 2000 --methods auto

    # compare method timings at several densities
    python -m repro compare --vertices 2000 --k 10

    # prebuild every index the main methods need and persist them
    python -m repro build --vertices 2000 --store ./store

    # answer queries warm-starting from the persisted indexes
    python -m repro query --vertices 2000 --store ./store

    # inspect / clean the artifact store
    python -m repro store ls --store ./store
    python -m repro store gc --store ./store

    # list every registered kNN method
    python -m repro methods

    # dataset statistics for a DIMACS file
    python -m repro info --gr network.gr --co network.co
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.engine import (
    MethodUnavailable,
    QueryEngine,
    get_method,
    known_methods,
    method_specs,
)
from repro.experiments.runner import Workbench, measure_query_time, random_queries
from repro.graph.dimacs import load_dimacs
from repro.graph.generators import road_network, travel_time_weights
from repro.objects import uniform_objects
from repro.store import (
    INDEX_KINDS,
    ArtifactMissing,
    IndexStore,
    StoreError,
    artifact_key,
    expand_kinds,
    load_objects,
    save_graph,
    save_objects,
)
from repro.utils.counters import BUILD_COUNTERS


def _build_graph(args: argparse.Namespace):
    if getattr(args, "gr", None):
        graph = load_dimacs(args.gr, getattr(args, "co", None))
    else:
        graph = road_network(args.vertices, seed=args.seed)
    if getattr(args, "travel_time", False):
        graph = travel_time_weights(graph, seed=args.seed)
    return graph


def _open_store(args: argparse.Namespace) -> Optional[IndexStore]:
    path = getattr(args, "store", None)
    return IndexStore(path) if path else None


def _validate_methods(methods: Optional[Sequence[str]]) -> Optional[str]:
    """Return an error message for the first unknown method, else None.

    ``"auto"`` is accepted everywhere a method name is: the engine's
    planner resolves it per workload.
    """
    known = known_methods()
    for name in methods or ():
        if name != "auto" and name not in known:
            return (
                f"unknown method {name!r}; known methods: "
                f"{', '.join(['auto'] + known)}"
            )
    return None


def cmd_query(args: argparse.Namespace) -> int:
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    graph = _build_graph(args)
    store = _open_store(args)
    objects = None
    if store is not None:
        # Prefer the object set `repro build --density` persisted for
        # this (graph, density, seed); regenerate on a clean miss.
        try:
            objects = [
                int(o)
                for o in load_objects(
                    store,
                    graph,
                    params={"density": args.density, "seed": args.seed},
                )
            ]
        except ArtifactMissing:
            objects = None
        if objects is not None and len(objects) < args.k:
            objects = None  # saved without the k-minimum this query needs
    if objects is None:
        objects = uniform_objects(graph, args.density, seed=args.seed, minimum=args.k)
    engine = QueryEngine(graph, objects, seed=args.seed, store=store)
    query = args.query if args.query is not None else graph.num_vertices // 2
    print(f"{graph}, |O|={len(objects)}, query={query}, k={args.k}")
    methods = args.methods or engine.available_methods()
    reference: Optional[List[float]] = None
    reference_method: Optional[str] = None
    ran = 0
    for method in methods:
        try:
            result = engine.query(query, args.k, method=method)
        except MethodUnavailable as exc:
            print(f"  {method:10} unavailable: {exc.reason}", file=sys.stderr)
            continue
        ran += 1
        shown = ", ".join(f"v{n.vertex}@{n.distance:.2f}" for n in result)
        label = result.method if method == "auto" else method
        print(f"  {label:10} [{shown}]  ({result.time_us:.0f}us)")
        if reference is None:
            reference = result.distances
            reference_method = label
        elif not np.allclose(reference, result.distances, rtol=1e-9):
            print(f"  !! {label} disagrees with {reference_method}", file=sys.stderr)
            return 1
    if ran == 0:
        print("no runnable methods", file=sys.stderr)
        return 1
    print("all methods agree")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    graph = _build_graph(args)
    engine = QueryEngine(graph, [], seed=args.seed, store=_open_store(args))
    queries = random_queries(graph, args.queries, seed=args.seed)
    methods = args.methods or engine.available_methods()
    densities = args.densities or [0.001, 0.01, 0.1]
    header = f"{'method':10}" + "".join(f"{d:>12}" for d in densities)
    print(f"{graph}, k={args.k}, {args.queries} queries/cell")
    print(header)
    per_density = {
        density: engine.with_objects(
            uniform_objects(graph, density, seed=args.seed, minimum=args.k)
        )
        for density in densities
    }
    for method in methods:
        row = f"{method:10}"
        for density in densities:
            dense_engine = per_density[density]
            try:
                resolved = dense_engine.resolve_method(method, args.k)
                alg = dense_engine.algorithm(resolved)
            except MethodUnavailable:
                row += f"{'n/a':>12}"
                continue
            row += f"{measure_query_time(alg, queries, args.k):>10.0f}us"
        print(row)
    return 0


def cmd_methods(args: argparse.Namespace) -> int:
    """List registered methods; with a graph, report applicability."""
    bench = None
    if args.vertices or getattr(args, "gr", None):
        bench = Workbench(_build_graph(args))
        print(f"availability on: {bench.graph}")
    print(f"{'name':11} {'requires':22} summary")
    for spec in method_specs():
        requires = ",".join(spec.requires) or "-"
        line = f"{spec.name:11} {requires:22} {spec.summary}"
        if bench is not None:
            reason = spec.availability(bench)
            if reason is not None:
                line += f"  [unavailable: {reason}]"
        print(line)
    print(
        "\n'auto' is also accepted: the engine plans INE at high object "
        "density and IER/G-tree at low density."
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Prebuild road-network indexes and persist them to a store.

    The set of indexes comes from the registry's per-method ``requires``
    declarations — exactly what the chosen methods will need at query
    time, nothing more.
    """
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    store = _open_store(args)
    if store is None:
        print("build requires --store PATH", file=sys.stderr)
        return 2
    if args.indexes:
        unknown = [k for k in args.indexes if k not in INDEX_KINDS]
        if unknown:
            print(
                f"unknown index kind {unknown[0]!r}; persistable kinds: "
                f"{', '.join(INDEX_KINDS)}",
                file=sys.stderr,
            )
            return 2
    graph = _build_graph(args)
    if not store.contains("graph", artifact_key(graph)):
        save_graph(store, graph)
    bench = Workbench(graph, seed=args.seed, store=store)
    if args.indexes:
        kinds = list(dict.fromkeys(args.indexes))
    else:
        methods = args.methods or bench.available_methods()
        if "auto" in methods:
            # The planner may pick any main method depending on density,
            # so "auto" prewarms everything the main lineup needs.
            methods = list(
                dict.fromkeys(
                    [m for m in methods if m != "auto"]
                    + bench.available_methods()
                )
            )
        kinds = list(
            dict.fromkeys(req for m in methods for req in get_method(m).requires)
        )
    # Dependencies first (TNR/hub labels ride on CH) so each per-kind
    # timing/label below reflects only that kind's own work.
    kinds = expand_kinds(kinds)
    print(f"{graph} -> {store.root}")
    for kind in kinds:
        counter = f"build:{kind}"
        before = BUILD_COUNTERS.as_dict().get(counter, 0)
        start = time.perf_counter()
        obtained = bench.prebuild([kind])  # owns the applicability skips
        elapsed = time.perf_counter() - start
        if not obtained:
            print(f"  {kind:11} skipped (over the {bench.silc_limit}-vertex cap)")
            continue
        index = getattr(bench, kind)
        how = "built" if BUILD_COUNTERS.as_dict().get(counter, 0) > before else "loaded"
        print(
            f"  {kind:11} {how} in {elapsed:.2f}s "
            f"({index.size_bytes() / 1024:.0f} KB in memory)"
        )
    if args.density is not None:
        obj_params = {"density": args.density, "seed": args.seed}
        if store.contains("objects", artifact_key(graph, obj_params)):
            print("  objects     already stored")
        else:
            objects = uniform_objects(graph, args.density, seed=args.seed)
            save_objects(store, graph, objects, params=obj_params)
            print(f"  objects     saved ({len(objects)} vertices)")
    print(f"store now holds {len(store.entries())} artifacts")
    return 0


def _existing_store(args: argparse.Namespace) -> Optional[IndexStore]:
    """The store at ``--store``, or None (with a message) if absent.

    Inspection commands must not mkdir a typo'd path into existence.
    """
    store = _open_store(args)
    if store is None or not store.root.is_dir():
        where = store.root if store is not None else "(empty --store path)"
        print(f"no store at {where}", file=sys.stderr)
        return None
    return store


def cmd_store_ls(args: argparse.Namespace) -> int:
    """List every artifact in the store."""
    store = _existing_store(args)
    if store is None:
        return 2
    entries = store.entries()
    stale = store.stale_entry_count()
    stale_note = (
        f" (+{stale} from another store format; run `repro store gc` to reclaim)"
        if stale
        else ""
    )
    if not entries:
        print(f"{store.root}: empty store{stale_note}")
        return 0
    total_kb = sum(e.nbytes for e in entries) / 1024
    print(f"{store.root}: {len(entries)} artifacts, "
          f"{total_kb:.0f} KB on disk{stale_note}")
    print(f"{'kind':11} {'key':17} {'size':>9} {'build':>8}  params")
    for e in entries:
        params = ", ".join(f"{k}={v}" for k, v in sorted(e.params.items()))
        print(
            f"{e.kind:11} {e.key:17} {e.nbytes / 1024:>7.0f}KB "
            f"{e.build_time_s:>7.2f}s  {params or '-'}"
        )
    return 0


def cmd_store_gc(args: argparse.Namespace) -> int:
    """Sweep corrupt, version-mismatched and orphaned artifacts."""
    store = _existing_store(args)
    if store is None:
        return 2
    removed = store.gc(dry_run=args.dry_run, clear=args.all)
    verb = "would remove" if args.dry_run else "removed"
    if not removed:
        print("store is clean; nothing to collect")
        return 0
    for artifact_id, reason in removed:
        print(f"{verb} {artifact_id}: {reason}")
    print(f"{verb} {len(removed)} artifacts")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    degrees = np.diff(graph.vertex_start)
    print(graph)
    print(f"  avg degree      {float(degrees.mean()):.2f}")
    print(f"  degree-2 share  {100 * float((degrees == 2).mean()):.1f}%")
    print(f"  max speed S     {graph.max_speed():.2f}")
    print(f"  CSR footprint   {graph.size_bytes() / 1024:.0f} KB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="kNN on road networks (VLDB 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_vertices: int = 2000) -> None:
        p.add_argument("--vertices", type=int, default=default_vertices,
                       help="synthetic network size (ignored with --gr)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--gr", help="DIMACS .gr file instead of a synthetic network")
        p.add_argument("--co", help="DIMACS .co coordinate file")
        p.add_argument("--travel-time", action="store_true",
                       help="use travel-time edge weights")

    q = sub.add_parser("query", help="answer one kNN query with every method")
    common(q)
    q.add_argument("--density", type=float, default=0.01)
    q.add_argument("--k", type=int, default=5)
    q.add_argument("--query", type=int, help="query vertex (default: centre id)")
    q.add_argument("--methods", nargs="*",
                   help="subset of methods to run ('auto' lets the engine pick)")
    q.add_argument("--store", help="index store directory to warm-start from")
    q.set_defaults(func=cmd_query)

    c = sub.add_parser("compare", help="timing table across densities")
    common(c)
    c.add_argument("--k", type=int, default=10)
    c.add_argument("--queries", type=int, default=20)
    c.add_argument("--densities", nargs="*", type=float)
    c.add_argument("--methods", nargs="*")
    c.add_argument("--store", help="index store directory to warm-start from")
    c.set_defaults(func=cmd_compare)

    b = sub.add_parser(
        "build", help="prebuild indexes and persist them to a store"
    )
    common(b)
    b.add_argument("--store", required=True,
                   help="index store directory (created if absent)")
    b.add_argument("--methods", nargs="*",
                   help="persist what these methods require (default: all "
                        "main methods runnable on the network)")
    b.add_argument("--indexes", nargs="*",
                   help="explicit index kinds instead (gtree road silc ch "
                        "hub_labels tnr)")
    b.add_argument("--density", type=float,
                   help="also save a uniform object set at this density")
    b.set_defaults(func=cmd_build)

    s = sub.add_parser("store", help="inspect or clean an index store")
    ssub = s.add_subparsers(dest="store_command", required=True)
    sls = ssub.add_parser("ls", help="list artifacts")
    sls.add_argument("--store", required=True)
    sls.set_defaults(func=cmd_store_ls)
    sgc = ssub.add_parser(
        "gc", help="remove corrupt, version-mismatched and orphaned artifacts"
    )
    sgc.add_argument("--store", required=True)
    sgc.add_argument("--dry-run", action="store_true",
                     help="report what would be removed without removing")
    sgc.add_argument("--all", action="store_true",
                     help="clear the entire store")
    sgc.set_defaults(func=cmd_store_gc)

    m = sub.add_parser("methods", help="list registered kNN methods")
    common(m, default_vertices=0)
    m.set_defaults(func=cmd_methods)

    i = sub.add_parser("info", help="dataset statistics")
    common(i)
    i.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except StoreError as exc:
        # Anticipated store damage: surface the curated repair message
        # (e.g. "run `repro store gc`, then rebuild") as a one-liner, in
        # the same message-plus-exit-code style as other user errors.
        print(f"store error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
