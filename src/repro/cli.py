"""Command-line interface: quick queries and experiments without code.

Examples::

    # generate a network, drop objects, answer one query with every method
    python -m repro query --vertices 2000 --density 0.01 --k 5 --query 42

    # let the engine's planner pick the method for the workload
    python -m repro query --vertices 2000 --methods auto

    # compare method timings at several densities
    python -m repro compare --vertices 2000 --k 10

    # list every registered kNN method
    python -m repro methods

    # dataset statistics for a DIMACS file
    python -m repro info --gr network.gr --co network.co
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.engine import (
    MethodUnavailable,
    QueryEngine,
    known_methods,
    method_specs,
)
from repro.experiments.runner import Workbench, measure_query_time, random_queries
from repro.graph.dimacs import load_dimacs
from repro.graph.generators import road_network, travel_time_weights
from repro.objects import uniform_objects


def _build_graph(args: argparse.Namespace):
    if getattr(args, "gr", None):
        graph = load_dimacs(args.gr, getattr(args, "co", None))
    else:
        graph = road_network(args.vertices, seed=args.seed)
    if getattr(args, "travel_time", False):
        graph = travel_time_weights(graph, seed=args.seed)
    return graph


def _validate_methods(methods: Optional[Sequence[str]]) -> Optional[str]:
    """Return an error message for the first unknown method, else None.

    ``"auto"`` is accepted everywhere a method name is: the engine's
    planner resolves it per workload.
    """
    known = known_methods()
    for name in methods or ():
        if name != "auto" and name not in known:
            return (
                f"unknown method {name!r}; known methods: "
                f"{', '.join(['auto'] + known)}"
            )
    return None


def cmd_query(args: argparse.Namespace) -> int:
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    graph = _build_graph(args)
    objects = uniform_objects(graph, args.density, seed=args.seed, minimum=args.k)
    engine = QueryEngine(graph, objects)
    query = args.query if args.query is not None else graph.num_vertices // 2
    print(f"{graph}, |O|={len(objects)}, query={query}, k={args.k}")
    methods = args.methods or engine.available_methods()
    reference: Optional[List[float]] = None
    reference_method: Optional[str] = None
    ran = 0
    for method in methods:
        try:
            result = engine.query(query, args.k, method=method)
        except MethodUnavailable as exc:
            print(f"  {method:10} unavailable: {exc.reason}", file=sys.stderr)
            continue
        ran += 1
        shown = ", ".join(f"v{n.vertex}@{n.distance:.2f}" for n in result)
        label = result.method if method == "auto" else method
        print(f"  {label:10} [{shown}]  ({result.time_us:.0f}us)")
        if reference is None:
            reference = result.distances
            reference_method = label
        elif not np.allclose(reference, result.distances, rtol=1e-9):
            print(f"  !! {label} disagrees with {reference_method}", file=sys.stderr)
            return 1
    if ran == 0:
        print("no runnable methods", file=sys.stderr)
        return 1
    print("all methods agree")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    graph = _build_graph(args)
    engine = QueryEngine(graph, [])
    queries = random_queries(graph, args.queries, seed=args.seed)
    methods = args.methods or engine.available_methods()
    densities = args.densities or [0.001, 0.01, 0.1]
    header = f"{'method':10}" + "".join(f"{d:>12}" for d in densities)
    print(f"{graph}, k={args.k}, {args.queries} queries/cell")
    print(header)
    per_density = {
        density: engine.with_objects(
            uniform_objects(graph, density, seed=args.seed, minimum=args.k)
        )
        for density in densities
    }
    for method in methods:
        row = f"{method:10}"
        for density in densities:
            dense_engine = per_density[density]
            try:
                resolved = dense_engine.resolve_method(method, args.k)
                alg = dense_engine.algorithm(resolved)
            except MethodUnavailable:
                row += f"{'n/a':>12}"
                continue
            row += f"{measure_query_time(alg, queries, args.k):>10.0f}us"
        print(row)
    return 0


def cmd_methods(args: argparse.Namespace) -> int:
    """List registered methods; with a graph, report applicability."""
    bench = None
    if args.vertices or getattr(args, "gr", None):
        bench = Workbench(_build_graph(args))
        print(f"availability on: {bench.graph}")
    print(f"{'name':11} {'requires':22} summary")
    for spec in method_specs():
        requires = ",".join(spec.requires) or "-"
        line = f"{spec.name:11} {requires:22} {spec.summary}"
        if bench is not None:
            reason = spec.availability(bench)
            if reason is not None:
                line += f"  [unavailable: {reason}]"
        print(line)
    print(
        "\n'auto' is also accepted: the engine plans INE at high object "
        "density and IER/G-tree at low density."
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    degrees = np.diff(graph.vertex_start)
    print(graph)
    print(f"  avg degree      {float(degrees.mean()):.2f}")
    print(f"  degree-2 share  {100 * float((degrees == 2).mean()):.1f}%")
    print(f"  max speed S     {graph.max_speed():.2f}")
    print(f"  CSR footprint   {graph.size_bytes() / 1024:.0f} KB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="kNN on road networks (VLDB 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_vertices: int = 2000) -> None:
        p.add_argument("--vertices", type=int, default=default_vertices,
                       help="synthetic network size (ignored with --gr)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--gr", help="DIMACS .gr file instead of a synthetic network")
        p.add_argument("--co", help="DIMACS .co coordinate file")
        p.add_argument("--travel-time", action="store_true",
                       help="use travel-time edge weights")

    q = sub.add_parser("query", help="answer one kNN query with every method")
    common(q)
    q.add_argument("--density", type=float, default=0.01)
    q.add_argument("--k", type=int, default=5)
    q.add_argument("--query", type=int, help="query vertex (default: centre id)")
    q.add_argument("--methods", nargs="*",
                   help="subset of methods to run ('auto' lets the engine pick)")
    q.set_defaults(func=cmd_query)

    c = sub.add_parser("compare", help="timing table across densities")
    common(c)
    c.add_argument("--k", type=int, default=10)
    c.add_argument("--queries", type=int, default=20)
    c.add_argument("--densities", nargs="*", type=float)
    c.add_argument("--methods", nargs="*")
    c.set_defaults(func=cmd_compare)

    m = sub.add_parser("methods", help="list registered kNN methods")
    common(m, default_vertices=0)
    m.set_defaults(func=cmd_methods)

    i = sub.add_parser("info", help="dataset statistics")
    common(i)
    i.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
