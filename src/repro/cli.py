"""Command-line interface: quick queries and experiments without code.

Examples::

    # generate a network, drop objects, answer one query with every method
    python -m repro query --vertices 2000 --density 0.01 --k 5 --query 42

    # let the engine's planner pick the method for the workload
    python -m repro query --vertices 2000 --methods auto

    # compare method timings at several densities
    python -m repro compare --vertices 2000 --k 10

    # prebuild every index the main methods need and persist them
    python -m repro build --vertices 2000 --store ./store

    # answer queries warm-starting from the persisted indexes
    python -m repro query --vertices 2000 --store ./store

    # inspect / clean the artifact store
    python -m repro store ls --store ./store
    python -m repro store gc --store ./store

    # stream a (gzipped) DIMACS file into a memory-mappable artifact,
    # then serve it zero-copy
    python -m repro ingest --gr USA.gr.gz --co USA.co.gz --store ./store
    python -m repro serve --store ./store --graph-key <printed key>

    # serve queries concurrently from stdin over warm indexes
    python -m repro serve --vertices 2000 --store ./store --workers 4

    # drive the server with a synthetic workload, report QPS + latency
    python -m repro loadtest --vertices 2000 --workload hotspot --requests 500

    # list every registered kNN method
    python -m repro methods

    # dataset statistics for a DIMACS file
    python -m repro info --gr network.gr --co network.co
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine import (
    MethodUnavailable,
    QueryEngine,
    get_method,
    known_methods,
    method_specs,
)
from repro.experiments.runner import Workbench, measure_query_time, random_queries
from repro.graph.dimacs import load_dimacs
from repro.graph.generators import road_network, travel_time_weights
from repro.graph.graph import Graph
from repro.objects import uniform_objects
from repro.store import (
    INDEX_KINDS,
    STORE_FORMATS,
    ArtifactMissing,
    IndexStore,
    StoreError,
    artifact_key,
    expand_kinds,
    load_objects,
    save_graph,
    save_objects,
)
from repro.utils.counters import BUILD_COUNTERS


def _build_graph(args: argparse.Namespace):
    if getattr(args, "graph_key", None):
        store = _open_store(args)
        if store is None:
            raise StoreError("--graph-key requires --store PATH")
        # Zero-copy for flat artifacts: the serve/loadtest workers then
        # share one mapped graph through the page cache.
        graph = Graph.from_store_mmap(store, args.graph_key)
    elif getattr(args, "gr", None):
        graph = load_dimacs(args.gr, getattr(args, "co", None))
    else:
        graph = road_network(args.vertices, seed=args.seed)
    if getattr(args, "travel_time", False):
        graph = travel_time_weights(graph, seed=args.seed)
    return graph


def _open_store(args: argparse.Namespace) -> Optional[IndexStore]:
    path = getattr(args, "store", None)
    fmt = getattr(args, "store_format", None) or "npz"
    return IndexStore(path, format=fmt) if path else None


def _validate_methods(methods: Optional[Sequence[str]]) -> Optional[str]:
    """Return an error message for the first unknown method, else None.

    ``"auto"`` is accepted everywhere a method name is: the engine's
    planner resolves it per workload.
    """
    known = known_methods()
    for name in methods or ():
        if name != "auto" and name not in known:
            return (
                f"unknown method {name!r}; known methods: "
                f"{', '.join(['auto'] + known)}"
            )
    return None


def cmd_query(args: argparse.Namespace) -> int:
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    graph, objects, engine = _engine_and_objects(args)
    query = args.query if args.query is not None else graph.num_vertices // 2
    print(
        f"{graph}, |O|={len(objects)}, query={query}, k={args.k}, "
        f"kernel={engine.kernel}"
    )
    methods = args.methods or engine.available_methods()
    reference: Optional[List[float]] = None
    reference_method: Optional[str] = None
    ran = 0
    for method in methods:
        try:
            result = engine.query(query, args.k, method=method)
        except MethodUnavailable as exc:
            print(f"  {method:10} unavailable: {exc.reason}", file=sys.stderr)
            continue
        ran += 1
        shown = ", ".join(f"v{n.vertex}@{n.distance:.2f}" for n in result)
        label = result.method if method == "auto" else method
        print(f"  {label:10} [{shown}]  ({result.time_us:.0f}us)")
        if reference is None:
            reference = result.distances
            reference_method = label
        elif not np.allclose(reference, result.distances, rtol=1e-9):
            print(f"  !! {label} disagrees with {reference_method}", file=sys.stderr)
            return 1
    if ran == 0:
        print("no runnable methods", file=sys.stderr)
        return 1
    print("all methods agree")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    graph = _build_graph(args)
    engine = QueryEngine(
        graph, [], seed=args.seed, store=_open_store(args),
        kernel=getattr(args, "kernel", None),
    )
    queries = random_queries(graph, args.queries, seed=args.seed)
    methods = args.methods or engine.available_methods()
    densities = args.densities or [0.001, 0.01, 0.1]
    header = f"{'method':10}" + "".join(f"{d:>12}" for d in densities)
    print(f"{graph}, k={args.k}, {args.queries} queries/cell")
    print(header)
    per_density = {
        density: engine.with_objects(
            uniform_objects(graph, density, seed=args.seed, minimum=args.k)
        )
        for density in densities
    }
    for method in methods:
        row = f"{method:10}"
        for density in densities:
            dense_engine = per_density[density]
            try:
                resolved = dense_engine.resolve_method(method, args.k)
                alg = dense_engine.algorithm(resolved)
            except MethodUnavailable:
                row += f"{'n/a':>12}"
                continue
            row += f"{measure_query_time(alg, queries, args.k):>10.0f}us"
        print(row)
    return 0


def cmd_methods(args: argparse.Namespace) -> int:
    """List registered methods; with a graph, report applicability."""
    bench = None
    if args.vertices or getattr(args, "gr", None):
        bench = Workbench(_build_graph(args))
        print(f"availability on: {bench.graph}")
    print(f"{'name':11} {'requires':22} summary")
    for spec in method_specs():
        requires = ",".join(spec.requires) or "-"
        line = f"{spec.name:11} {requires:22} {spec.summary}"
        if bench is not None:
            reason = spec.availability(bench)
            if reason is not None:
                line += f"  [unavailable: {reason}]"
        print(line)
    print(
        "\n'auto' is also accepted: the engine plans INE at high object "
        "density and IER/G-tree at low density."
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Prebuild road-network indexes and persist them to a store.

    The set of indexes comes from the registry's per-method ``requires``
    declarations — exactly what the chosen methods will need at query
    time, nothing more.
    """
    error = _validate_methods(args.methods)
    if error:
        print(error, file=sys.stderr)
        return 2
    store = _open_store(args)
    if store is None:
        print("build requires --store PATH", file=sys.stderr)
        return 2
    if args.indexes:
        unknown = [k for k in args.indexes if k not in INDEX_KINDS]
        if unknown:
            print(
                f"unknown index kind {unknown[0]!r}; persistable kinds: "
                f"{', '.join(INDEX_KINDS)}",
                file=sys.stderr,
            )
            return 2
    graph = _build_graph(args)
    if not store.contains("graph", artifact_key(graph)):
        save_graph(store, graph)
    bench = Workbench(graph, seed=args.seed, store=store)
    if args.indexes:
        kinds = list(dict.fromkeys(args.indexes))
    else:
        methods = args.methods or bench.available_methods()
        if "auto" in methods:
            # The planner may pick any main method depending on density,
            # so "auto" prewarms everything the main lineup needs.
            methods = list(
                dict.fromkeys(
                    [m for m in methods if m != "auto"]
                    + bench.available_methods()
                )
            )
        kinds = list(
            dict.fromkeys(req for m in methods for req in get_method(m).requires)
        )
    # Dependencies first (TNR/hub labels ride on CH) so each per-kind
    # timing/label below reflects only that kind's own work.
    kinds = expand_kinds(kinds)
    print(f"{graph} -> {store.root}")
    for kind in kinds:
        counter = f"build:{kind}"
        before = BUILD_COUNTERS.as_dict().get(counter, 0)
        start = time.perf_counter()
        obtained = bench.prebuild([kind])  # owns the applicability skips
        elapsed = time.perf_counter() - start
        if not obtained:
            print(f"  {kind:11} skipped (over the {bench.silc_limit}-vertex cap)")
            continue
        index = getattr(bench, kind)
        how = "built" if BUILD_COUNTERS.as_dict().get(counter, 0) > before else "loaded"
        print(
            f"  {kind:11} {how} in {elapsed:.2f}s "
            f"({index.size_bytes() / 1024:.0f} KB in memory)"
        )
    if args.density is not None:
        obj_params = {"density": args.density, "seed": args.seed}
        if store.contains("objects", artifact_key(graph, obj_params)):
            print("  objects     already stored")
        else:
            objects = uniform_objects(graph, args.density, seed=args.seed)
            save_objects(store, graph, objects, params=obj_params)
            print(f"  objects     saved ({len(objects)} vertices)")
    print(f"store now holds {len(store.entries())} artifacts")
    return 0


def _existing_store(args: argparse.Namespace) -> Optional[IndexStore]:
    """The store at ``--store``, or None (with a message) if absent.

    Inspection commands must not mkdir a typo'd path into existence.
    """
    store = _open_store(args)
    if store is None or not store.root.is_dir():
        where = store.root if store is not None else "(empty --store path)"
        print(f"no store at {where}", file=sys.stderr)
        return None
    return store


def cmd_store_ls(args: argparse.Namespace) -> int:
    """List every artifact in the store."""
    store = _existing_store(args)
    if store is None:
        return 2
    entries = store.entries()
    stale = store.stale_entry_count()
    stale_note = (
        f" (+{stale} from another store format; run `repro store gc` to reclaim)"
        if stale
        else ""
    )
    if not entries:
        print(f"{store.root}: empty store{stale_note}")
        return 0
    total_kb = sum(e.nbytes for e in entries) / 1024
    mapped_kb = sum(e.mapped_nbytes for e in entries) / 1024
    print(f"{store.root}: {len(entries)} artifacts, "
          f"{total_kb:.0f} KB on disk, {mapped_kb:.0f} KB mapped{stale_note}")
    print(f"{'kind':11} {'key':17} {'fmt':4} {'on-disk':>9} {'mapped':>9} "
          f"{'build':>8}  params")
    for e in entries:
        params = ", ".join(f"{k}={v}" for k, v in sorted(e.params.items()))
        # mapped_nbytes is 0 on entries written before the field existed;
        # show "-" so operators can spot artifacts needing migration.
        mapped = f"{e.mapped_nbytes / 1024:>7.0f}KB" if e.mapped_nbytes else (
            f"{'-':>9}"
        )
        print(
            f"{e.kind:11} {e.key:17} {e.format:4} {e.nbytes / 1024:>7.0f}KB "
            f"{mapped} {e.build_time_s:>7.2f}s  {params or '-'}"
        )
    return 0


def cmd_store_gc(args: argparse.Namespace) -> int:
    """Sweep corrupt, version-mismatched and orphaned artifacts."""
    store = _existing_store(args)
    if store is None:
        return 2
    removed = store.gc(dry_run=args.dry_run, clear=args.all)
    verb = "would remove" if args.dry_run else "removed"
    if not removed:
        print("store is clean; nothing to collect")
        return 0
    for artifact_id, reason in removed:
        print(f"{verb} {artifact_id}: {reason}")
    print(f"{verb} {len(removed)} artifacts")
    return 0


def _engine_and_objects(args: argparse.Namespace):
    """Graph + object set + engine shared by query/serve/loadtest.

    With a ``--store``, the object set `repro build --density` persisted
    for this (graph, density, seed) is preferred (regenerated on a clean
    miss or when saved without the k-minimum this run needs) and the
    engine warm-starts its indexes from disk.
    """
    graph = _build_graph(args)
    store = _open_store(args)
    objects = None
    if store is not None:
        try:
            objects = [
                int(o)
                for o in load_objects(
                    store,
                    graph,
                    params={"density": args.density, "seed": args.seed},
                )
            ]
        except ArtifactMissing:
            objects = None
        if objects is not None and len(objects) < args.k:
            objects = None
    if objects is None:
        objects = uniform_objects(
            graph, args.density, seed=args.seed, minimum=args.k
        )
    engine = QueryEngine(
        graph, objects, seed=args.seed, store=store,
        kernel=getattr(args, "kernel", None),
    )
    return graph, objects, engine


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the concurrent server, answering queries read from stdin.

    Protocol: one request per line, ``VERTEX K [METHOD]``; the command
    lines ``stats`` (JSON statistics; ``stats flush`` also closes the
    since-flush window), ``metrics`` (Prometheus text) and ``health``
    (worker liveness, circuit breakers, quarantine counts) report on
    the running server; EOF stops it and prints its statistics.  Index
    builds happen during warmup, never while serving — point
    ``--store`` at a prebuilt store and warmup is a millisecond disk
    load.
    """
    from repro.server import KNNServer

    error = _validate_methods([args.method])
    if error:
        print(error, file=sys.stderr)
        return 2
    graph, objects, engine = _engine_and_objects(args)
    server = KNNServer(
        engine,
        workers=args.workers,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        cache_capacity=args.cache_capacity,
        default_deadline_s=args.deadline,
    )
    server.start(warmup_methods=[args.method])
    builds_before = sum(BUILD_COUNTERS.as_dict().values())
    print(
        f"{graph}, |O|={len(objects)}, {args.workers} workers; "
        "reading 'VERTEX K [METHOD]' lines from stdin "
        "('stats' / 'metrics' / 'health' report on the running server)"
    )
    try:
        for line in sys.stdin:
            parts = line.split()
            if not parts:
                continue
            command = parts[0].lower()
            if command == "stats":
                snapshot = (
                    server.flush_stats()
                    if len(parts) > 1 and parts[1] == "flush"
                    else server.stats()
                )
                print(json.dumps(snapshot, indent=2, sort_keys=True))
                continue
            if command == "metrics":
                print(server.metrics_text())
                continue
            if command == "health":
                print(json.dumps(server.health(), indent=2, sort_keys=True))
                continue
            try:
                vertex = int(parts[0])
                k = int(parts[1]) if len(parts) > 1 else args.k
                method = parts[2] if len(parts) > 2 else args.method
            except ValueError:
                print(f"bad request line: {line.strip()!r}", file=sys.stderr)
                continue
            response = server.query(vertex, k, method)
            if response.ok:
                shown = ", ".join(
                    f"v{n.vertex}@{n.distance:.2f}" for n in response.result
                )
                extra = " [cached]" if response.cache_hit else ""
                print(
                    f"ok {response.latency_s * 1e3:.2f}ms "
                    f"{response.result.method} [{shown}]{extra}"
                )
            else:
                print(f"{response.status}: {response.error}", file=sys.stderr)
    finally:
        server.stop()
    stats = server.stats()
    builds = sum(BUILD_COUNTERS.as_dict().values()) - builds_before
    print(
        f"served {stats['counts'].get('ok', 0)} requests, "
        f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
        f"index builds while serving: {builds}"
    )
    return 0


def _build_workload(args: argparse.Namespace, graph):
    """The (requests, categories) pair for ``--workload`` — shared by
    ``loadtest`` and ``profile`` so both drive identical traffic."""
    from repro.server import (
        category_switching_workload,
        diurnal_workload,
        hotspot_workload,
        uniform_workload,
    )

    categories: Optional[Dict[str, Sequence[int]]] = None
    if args.workload == "categories":
        categories = {
            name: uniform_objects(
                graph, args.density, seed=args.seed + offset, minimum=args.k
            )
            for offset, name in enumerate(
                ("restaurants", "fuel", "parking"), start=1
            )
        }
        items = category_switching_workload(
            graph, args.requests, args.k, list(categories),
            switch_every=args.switch_every, method=args.method, seed=args.seed,
        )
    elif args.workload == "uniform":
        items = uniform_workload(
            graph, args.requests, args.k, method=args.method, seed=args.seed
        )
    elif args.workload == "hotspot":
        items = hotspot_workload(
            graph, args.requests, args.k, hot_vertices=args.hot_vertices,
            skew=args.skew, method=args.method, seed=args.seed,
        )
    else:  # diurnal
        items = diurnal_workload(
            graph, args.requests, args.k, hot_vertices=args.hot_vertices,
            skew=args.skew, method=args.method, seed=args.seed,
        )
    return items, categories


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive the server with a synthetic workload and report the numbers.

    Prints throughput and p50/p95/p99 latency, compares against the
    single-threaded sequential baseline (``engine.query`` on the same
    workload), verifies server answers against the baseline's, and
    writes the machine-readable report to ``--json`` (default
    ``BENCH_server.json``) for trajectory tracking.
    """
    from repro.server import (
        KNNServer,
        run_closed_loop,
        run_open_loop,
        sequential_baseline,
    )

    error = _validate_methods([args.method])
    if error:
        print(error, file=sys.stderr)
        return 2
    graph, objects, engine = _engine_and_objects(args)
    items, categories = _build_workload(args, graph)
    server = KNNServer(
        engine,
        workers=args.workers,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        cache_capacity=args.cache_capacity,
        categories=categories,
        default_deadline_s=args.deadline,
    )
    print(f"{graph}, |O|={len(objects)}, workload={args.workload}, "
          f"{args.requests} requests, k={args.k}")
    baseline_qps = None
    baseline_results = None
    if args.baseline:
        # The baseline runs first on the same engines, so it also warms
        # every index/algorithm — serve time then performs zero builds.
        engines = {None: engine}
        for name in categories or {}:
            engines[name] = server.engine_for(name)
        baseline_qps, baseline_results = sequential_baseline(engines, items)
        print(f"  sequential baseline   {baseline_qps:8.0f} qps")
    server.start(warmup_methods=[args.method])
    builds_before = sum(BUILD_COUNTERS.as_dict().values())
    if args.open_loop or args.workload == "diurnal":
        report = run_open_loop(
            server, items, time_scale=args.time_scale,
            timeout_s=args.client_timeout, retries=args.client_retries,
        )
    else:
        report = run_closed_loop(
            server, items, concurrency=args.concurrency,
            timeout_s=args.client_timeout, retries=args.client_retries,
        )
    server.stop()
    serve_builds = sum(BUILD_COUNTERS.as_dict().values()) - builds_before
    report.baseline_qps = baseline_qps
    mismatches = 0
    if baseline_results is not None:
        # Server answers must be byte-identical to direct engine.query.
        # (A None slot is a driver-side timeout, reported separately.)
        for truth, response in zip(baseline_results, report.responses):
            if response is not None and response.ok and response.result != truth:
                mismatches += 1
    payload = report.to_dict()
    payload["serve_time_index_builds"] = serve_builds
    print(
        f"  server ({args.workers} workers) {report.throughput_qps:8.0f} qps   "
        f"p50 {report.latency_p50_ms:.2f}ms  p95 {report.latency_p95_ms:.2f}ms  "
        f"p99 {report.latency_p99_ms:.2f}ms"
    )
    counts = ", ".join(f"{k}={v}" for k, v in sorted(report.status_counts.items()))
    print(f"  statuses: {counts}")
    if report.client_retries:
        print(f"  client retries: {report.client_retries}")
    cache = payload["server"]["cache"]
    print(
        f"  cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['hit_rate']:.0%}), coalesced "
        f"{payload['server']['batch']['coalesced_hits']}"
    )
    print(f"  index builds while serving: {serve_builds}")
    if report.speedup is not None:
        print(f"  speedup over sequential: {report.speedup:.1f}x")
    # Write the report before the verification verdict: a failing run is
    # exactly the one whose numbers must not be lost.
    payload["baseline_mismatches"] = mismatches
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  report written to {args.json}")
    if mismatches:
        print(f"  !! {mismatches} responses disagree with baseline",
              file=sys.stderr)
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace one query and pretty-print its span tree.

    Runs the query twice: once cold (indexes/algorithms may build — the
    ``ensure`` span shows what that costs) and once warm, printing both
    trees so the preprocessing/query split is visible in one command.
    """
    from repro.obs import TRACER, tracing

    error = _validate_methods([args.method])
    if error:
        print(error, file=sys.stderr)
        return 2
    graph, objects, engine = _engine_and_objects(args)
    query = args.query if args.query is not None else graph.num_vertices // 2
    print(f"{graph}, |O|={len(objects)}, query={query}, k={args.k}")
    trees = []
    with tracing(clear=True):
        for label in ("cold", "warm"):
            engine.query(query, args.k, method=args.method)
            tree = TRACER.recent(1)[0]
            trees.append({"run": label, "trace": tree.to_dict()})
            print(f"-- {label} --")
            print(tree.pretty())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(trees, fh, indent=2, sort_keys=True)
        print(f"trace written to {args.json}")
    return 0


def _tree_has(span, name: str) -> bool:
    """True when ``span`` or any descendant carries ``name``."""
    if span.name == name:
        return True
    return any(_tree_has(child, name) for child in span.children)


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a served workload: metrics report + top-k slow queries.

    Drives the concurrent server with the same synthetic workloads as
    ``loadtest`` — but with tracing on and a zero slow-query threshold,
    so every query lands in the slow log with its counters and span
    tree.  Writes a machine-readable report (default ``PROFILE.json``)
    holding the windowed metrics snapshot (per-method latency
    histograms with p50/p95/p99), server/cache statistics, the k
    slowest queries and recent span trees.
    """
    from repro.obs import REGISTRY, TRACER, run_metadata, tracing
    from repro.server import KNNServer, run_closed_loop

    error = _validate_methods([args.method])
    if error:
        print(error, file=sys.stderr)
        return 2
    run_started = time.time()
    graph, objects, engine = _engine_and_objects(args)
    items, categories = _build_workload(args, graph)
    server = KNNServer(
        engine,
        workers=args.workers,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        cache_capacity=args.cache_capacity,
        categories=categories,
        default_deadline_s=args.deadline,
    )
    print(f"{graph}, |O|={len(objects)}, workload={args.workload}, "
          f"{args.requests} requests, k={args.k}")
    before = REGISTRY.snapshot()
    with tracing(slow_threshold_s=args.slow_threshold, clear=True):
        server.start(warmup_methods=[args.method])
        report = run_closed_loop(server, items, concurrency=args.concurrency)
        stats = server.stats()
        server.stop()
        top_slow = TRACER.top_slow(args.top)
        # Prefer complete trees (ones that reached the knn kernel) —
        # cache hits produce childless serve_group spans.
        ring = TRACER.recent()
        complete = [s for s in ring if _tree_has(s, "knn")]
        picked = complete[-args.traces :]
        if len(picked) < args.traces:
            rest = [s for s in ring if not _tree_has(s, "knn")]
            picked = rest[len(picked) - args.traces :] + picked
        traces = [s.to_dict() for s in picked]
    metrics = REGISTRY.delta(before)
    per_method: Dict[str, Dict[str, object]] = {}
    for label, series in metrics.get("knn_query_seconds", {}).get(
        "series", {}
    ).items():
        method = label.split("=", 1)[1] if "=" in label else label
        per_method[method] = {
            "count": series["count"],
            "mean_ms": series["mean"] * 1e3,
            "p50_ms": series["p50"] * 1e3,
            "p95_ms": series["p95"] * 1e3,
            "p99_ms": series["p99"] * 1e3,
            "max_ms": series["max"] * 1e3,
        }
    payload = {
        "meta": run_metadata(run_started),
        "workload": {
            "kind": args.workload,
            "requests": args.requests,
            "k": args.k,
            "method": args.method,
            "workers": args.workers,
            "concurrency": args.concurrency,
        },
        "throughput_qps": report.throughput_qps,
        "per_method": per_method,
        "server": stats,
        "metrics": metrics,
        "top_slow": top_slow,
        "traces": traces,
    }
    print(f"  throughput {report.throughput_qps:8.0f} qps")
    print(f"  {'method':10} {'count':>7} {'p50':>9} {'p95':>9} {'p99':>9}")
    for method, row in sorted(per_method.items()):
        print(
            f"  {method:10} {row['count']:>7.0f} {row['p50_ms']:>7.2f}ms "
            f"{row['p95_ms']:>7.2f}ms {row['p99_ms']:>7.2f}ms"
        )
    cache = stats["cache"]
    print(
        f"  cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['hit_rate']:.0%})"
    )
    if top_slow:
        worst = top_slow[0]
        print(
            f"  slowest query: {worst['time_ms']:.2f}ms "
            f"method={worst['method']} vertex={worst['vertex']} k={worst['k']}"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  profile written to {args.json}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a DIMACS file into a store graph artifact.

    Unlike ``--gr`` on the other commands (which materialises the whole
    arc set through ``load_dimacs``), ingest runs the chunked
    sort/spill/merge pipeline under ``--memory-budget-mb`` and writes
    straight to the store — the path for continental-scale inputs.  The
    printed key feeds ``--graph-key`` on query/serve/loadtest.
    """
    from repro.graph.ingest import ingest_dimacs

    store = _open_store(args)
    report = ingest_dimacs(
        args.gr,
        args.co,
        store,
        name=args.name,
        memory_budget_mb=args.memory_budget_mb,
        restrict_to_lcc=not args.keep_components,
        tmp_dir=args.tmp_dir,
    )
    print(f"{args.gr} -> {store.root} [{store.format}]")
    print(f"  vertices        {report.num_vertices}")
    print(f"  edges           {report.num_edges}")
    print(f"  arcs read       {report.arcs_read} "
          f"({report.runs_spilled} sorted run(s) spilled)")
    if report.restricted_to_lcc and report.components_dropped:
        print(f"  components dropped  {report.components_dropped}")
    print(f"  artifact        {report.artifact_nbytes / 1e6:.1f} MB on disk, "
          f"{report.artifact_mapped_nbytes / 1e6:.1f} MB mapped")
    print(f"  ingest time     {report.ingest_time_s:.2f}s")
    print(f"  graph key       {report.key}")
    print(f"load it with: --store {store.root} --graph-key {report.key}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    degrees = np.diff(graph.vertex_start)
    print(graph)
    print(f"  avg degree      {float(degrees.mean()):.2f}")
    print(f"  degree-2 share  {100 * float((degrees == 2).mean()):.1f}%")
    print(f"  max speed S     {graph.max_speed():.2f}")
    print(f"  CSR footprint   {graph.size_bytes() / 1024:.0f} KB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="kNN on road networks (VLDB 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_vertices: int = 2000) -> None:
        p.add_argument("--vertices", type=int, default=default_vertices,
                       help="synthetic network size (ignored with --gr)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--gr", help="DIMACS .gr file instead of a synthetic network")
        p.add_argument("--co", help="DIMACS .co coordinate file")
        p.add_argument("--travel-time", action="store_true",
                       help="use travel-time edge weights")
        p.add_argument("--kernel", choices=("python", "array"),
                       help="hot-path kernel (default: array; 'python' runs "
                            "the reference per-edge loops)")
        p.add_argument("--graph-key",
                       help="load the graph from a store artifact (requires "
                            "--store; flat artifacts load zero-copy via mmap)")

    q = sub.add_parser("query", help="answer one kNN query with every method")
    common(q)
    q.add_argument("--density", type=float, default=0.01)
    q.add_argument("--k", type=int, default=5)
    q.add_argument("--query", type=int, help="query vertex (default: centre id)")
    q.add_argument("--methods", nargs="*",
                   help="subset of methods to run ('auto' lets the engine pick)")
    q.add_argument("--store", help="index store directory to warm-start from")
    q.set_defaults(func=cmd_query)

    c = sub.add_parser("compare", help="timing table across densities")
    common(c)
    c.add_argument("--k", type=int, default=10)
    c.add_argument("--queries", type=int, default=20)
    c.add_argument("--densities", nargs="*", type=float)
    c.add_argument("--methods", nargs="*")
    c.add_argument("--store", help="index store directory to warm-start from")
    c.set_defaults(func=cmd_compare)

    b = sub.add_parser(
        "build", help="prebuild indexes and persist them to a store"
    )
    common(b)
    b.add_argument("--store", required=True,
                   help="index store directory (created if absent)")
    b.add_argument("--methods", nargs="*",
                   help="persist what these methods require (default: all "
                        "main methods runnable on the network)")
    b.add_argument("--indexes", nargs="*",
                   help="explicit index kinds instead (gtree road silc ch "
                        "hub_labels tnr)")
    b.add_argument("--density", type=float,
                   help="also save a uniform object set at this density")
    b.add_argument("--store-format", choices=STORE_FORMATS, default="npz",
                   help="artifact payload format ('flat' writes per-array "
                        ".npy files that load as read-only memory maps)")
    b.set_defaults(func=cmd_build)

    ig = sub.add_parser(
        "ingest",
        help="stream a DIMACS .gr/.co (optionally .gz) into a store graph "
             "artifact under a memory budget",
    )
    ig.add_argument("--gr", required=True,
                    help="DIMACS .gr or .gr.gz arc file")
    ig.add_argument("--co", help="DIMACS .co or .co.gz coordinate file")
    ig.add_argument("--store", required=True,
                    help="index store directory (created if absent)")
    ig.add_argument("--store-format", choices=STORE_FORMATS, default="flat",
                    help="artifact payload format (default flat: per-array "
                         ".npy files served zero-copy via mmap)")
    ig.add_argument("--memory-budget-mb", type=float, default=512.0,
                    help="ingest working-set budget; parse chunks, spill "
                         "runs and vectorised blocks derive from it")
    ig.add_argument("--name", help="graph name (default: the .gr basename)")
    ig.add_argument("--keep-components", action="store_true",
                    help="keep disconnected fragments instead of restricting "
                         "to the largest connected component")
    ig.add_argument("--tmp-dir",
                    help="scratch directory for spill runs (default: system "
                         "temp; point at a large disk for continental inputs)")
    ig.set_defaults(func=cmd_ingest)

    s = sub.add_parser("store", help="inspect or clean an index store")
    ssub = s.add_subparsers(dest="store_command", required=True)
    sls = ssub.add_parser("ls", help="list artifacts")
    sls.add_argument("--store", required=True)
    sls.set_defaults(func=cmd_store_ls)
    sgc = ssub.add_parser(
        "gc", help="remove corrupt, version-mismatched and orphaned artifacts"
    )
    sgc.add_argument("--store", required=True)
    sgc.add_argument("--dry-run", action="store_true",
                     help="report what would be removed without removing")
    sgc.add_argument("--all", action="store_true",
                     help="clear the entire store")
    sgc.set_defaults(func=cmd_store_gc)

    def serving_knobs(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=4,
                       help="worker thread count (default 4)")
        p.add_argument("--max-queue", type=int, default=1024,
                       help="bounded request queue (admission control)")
        p.add_argument("--max-batch", type=int, default=32,
                       help="max requests one worker drains per dispatch")
        p.add_argument("--cache-capacity", type=int, default=4096,
                       help="result-cache entries (0 disables)")
        p.add_argument("--deadline", type=float,
                       help="default per-request deadline in seconds")
        p.add_argument("--density", type=float, default=0.01)
        p.add_argument("--k", type=int, default=5)
        p.add_argument("--method", default="auto",
                       help="method for served queries ('auto' plans per set)")
        p.add_argument("--store", help="index store directory to warm-start from")

    sv = sub.add_parser(
        "serve", help="serve kNN queries concurrently from stdin"
    )
    common(sv)
    serving_knobs(sv)
    sv.set_defaults(func=cmd_serve)

    lt = sub.add_parser(
        "loadtest", help="drive the server with a synthetic workload"
    )
    common(lt)
    serving_knobs(lt)
    lt.add_argument("--workload", default="hotspot",
                    choices=("uniform", "hotspot", "diurnal", "categories"))
    lt.add_argument("--requests", type=int, default=500)
    lt.add_argument("--concurrency", type=int, default=16,
                    help="closed-loop client count")
    lt.add_argument("--open-loop", action="store_true",
                    help="inject at workload arrival times instead of "
                         "closed-loop (diurnal always runs open-loop)")
    lt.add_argument("--time-scale", type=float, default=0.05,
                    help="open-loop schedule compression (0.05 replays a "
                         "60s diurnal trace in 3s)")
    lt.add_argument("--hot-vertices", type=int, default=64,
                    help="hotspot/diurnal: size of the Zipf hot set")
    lt.add_argument("--skew", type=float, default=1.1,
                    help="hotspot/diurnal: Zipf skew exponent")
    lt.add_argument("--switch-every", type=int, default=10,
                    help="categories: requests between category hops")
    lt.add_argument("--no-baseline", dest="baseline", action="store_false",
                    help="skip the sequential baseline (and verification)")
    lt.add_argument("--client-retries", type=int, default=0,
                    help="client-side resubmissions of error/timed-out "
                         "requests (with doubling backoff)")
    lt.add_argument("--client-timeout", type=float, default=30.0,
                    help="client-side wait per attempt, seconds")
    lt.add_argument("--json", default="BENCH_server.json",
                    help="machine-readable report path ('' disables)")
    lt.set_defaults(func=cmd_loadtest)

    tr = sub.add_parser(
        "trace", help="trace one query and pretty-print its span tree"
    )
    common(tr)
    tr.add_argument("--density", type=float, default=0.01)
    tr.add_argument("--k", type=int, default=5)
    tr.add_argument("--query", type=int,
                    help="query vertex (default: centre id)")
    tr.add_argument("--method", default="auto",
                    help="method to trace ('auto' lets the engine pick)")
    tr.add_argument("--store", help="index store directory to warm-start from")
    tr.add_argument("--json", default="",
                    help="also write the span trees as JSON ('' disables)")
    tr.set_defaults(func=cmd_trace)

    pf = sub.add_parser(
        "profile",
        help="profile a served workload: metrics report + slow queries",
    )
    common(pf)
    serving_knobs(pf)
    pf.add_argument("--workload", default="hotspot",
                    choices=("uniform", "hotspot", "diurnal", "categories"))
    pf.add_argument("--requests", type=int, default=300)
    pf.add_argument("--concurrency", type=int, default=16,
                    help="closed-loop client count")
    pf.add_argument("--hot-vertices", type=int, default=64,
                    help="hotspot/diurnal: size of the Zipf hot set")
    pf.add_argument("--skew", type=float, default=1.1,
                    help="hotspot/diurnal: Zipf skew exponent")
    pf.add_argument("--switch-every", type=int, default=10,
                    help="categories: requests between category hops")
    pf.add_argument("--slow-threshold", type=float, default=0.0,
                    help="slow-query log threshold in seconds (default 0: "
                         "log every query)")
    pf.add_argument("--top", type=int, default=10,
                    help="slow queries to keep in the report")
    pf.add_argument("--traces", type=int, default=3,
                    help="recent span trees to keep in the report")
    pf.add_argument("--json", default="PROFILE.json",
                    help="machine-readable report path ('' disables)")
    pf.set_defaults(func=cmd_profile)

    m = sub.add_parser("methods", help="list registered kNN methods")
    common(m, default_vertices=0)
    m.set_defaults(func=cmd_methods)

    i = sub.add_parser("info", help="dataset statistics")
    common(i)
    i.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except StoreError as exc:
        # Anticipated store damage: surface the curated repair message
        # (e.g. "run `repro store gc`, then rebuild") as a one-liner, in
        # the same message-plus-exit-code style as other user errors.
        print(f"store error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
