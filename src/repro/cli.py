"""Command-line interface: quick queries and experiments without code.

Examples::

    # generate a network, drop objects, answer one query with every method
    python -m repro query --vertices 2000 --density 0.01 --k 5 --query 42

    # compare method timings at several densities
    python -m repro compare --vertices 2000 --k 10

    # dataset statistics for a DIMACS file
    python -m repro info --gr network.gr --co network.co
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.experiments.runner import Workbench, measure_query_time, random_queries
from repro.graph.dimacs import load_dimacs
from repro.graph.generators import road_network, travel_time_weights
from repro.objects import uniform_objects
from repro.utils.counters import Counters


def _build_graph(args: argparse.Namespace):
    if getattr(args, "gr", None):
        graph = load_dimacs(args.gr, getattr(args, "co", None))
    else:
        graph = road_network(args.vertices, seed=args.seed)
    if getattr(args, "travel_time", False):
        graph = travel_time_weights(graph, seed=args.seed)
    return graph


def cmd_query(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    workbench = Workbench(graph)
    objects = uniform_objects(graph, args.density, seed=args.seed, minimum=args.k)
    query = args.query if args.query is not None else graph.num_vertices // 2
    print(f"{graph}, |O|={len(objects)}, query={query}, k={args.k}")
    methods = args.methods or workbench.available_methods()
    reference: Optional[List[float]] = None
    for method in methods:
        alg = workbench.make(method, objects)
        counters = Counters()
        result = alg.knn(query, args.k, counters=counters)
        distances = [d for d, _ in result]
        shown = ", ".join(f"v{v}@{d:.2f}" for d, v in result)
        print(f"  {method:10} [{shown}]")
        if reference is None:
            reference = distances
        elif not np.allclose(reference, distances, rtol=1e-9):
            print(f"  !! {method} disagrees with {methods[0]}", file=sys.stderr)
            return 1
    print("all methods agree")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    workbench = Workbench(graph)
    queries = random_queries(graph, args.queries, seed=args.seed)
    methods = args.methods or workbench.available_methods()
    densities = args.densities or [0.001, 0.01, 0.1]
    header = f"{'method':10}" + "".join(f"{d:>12}" for d in densities)
    print(f"{graph}, k={args.k}, {args.queries} queries/cell")
    print(header)
    for method in methods:
        row = f"{method:10}"
        for density in densities:
            objects = uniform_objects(
                graph, density, seed=args.seed, minimum=args.k
            )
            alg = workbench.make(method, objects)
            row += f"{measure_query_time(alg, queries, args.k):>10.0f}us"
        print(row)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    degrees = np.diff(graph.vertex_start)
    print(graph)
    print(f"  avg degree      {float(degrees.mean()):.2f}")
    print(f"  degree-2 share  {100 * float((degrees == 2).mean()):.1f}%")
    print(f"  max speed S     {graph.max_speed():.2f}")
    print(f"  CSR footprint   {graph.size_bytes() / 1024:.0f} KB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="kNN on road networks (VLDB 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--vertices", type=int, default=2000,
                       help="synthetic network size (ignored with --gr)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--gr", help="DIMACS .gr file instead of a synthetic network")
        p.add_argument("--co", help="DIMACS .co coordinate file")
        p.add_argument("--travel-time", action="store_true",
                       help="use travel-time edge weights")

    q = sub.add_parser("query", help="answer one kNN query with every method")
    common(q)
    q.add_argument("--density", type=float, default=0.01)
    q.add_argument("--k", type=int, default=5)
    q.add_argument("--query", type=int, help="query vertex (default: centre id)")
    q.add_argument("--methods", nargs="*", help="subset of methods to run")
    q.set_defaults(func=cmd_query)

    c = sub.add_parser("compare", help="timing table across densities")
    common(c)
    c.add_argument("--k", type=int, default=10)
    c.add_argument("--queries", type=int, default=20)
    c.add_argument("--densities", nargs="*", type=float)
    c.add_argument("--methods", nargs="*")
    c.set_defaults(func=cmd_compare)

    i = sub.add_parser("info", help="dataset statistics")
    common(i)
    i.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
