"""R-tree with incremental (suspend/resume) Euclidean kNN.

IER's candidate generator (Section 3.2) and DB-ENN's (Appendix A.1.1) is
"retrieve the next Euclidean nearest neighbour" — a best-first search over
an R-tree whose priority queue survives between retrievals so the search
can be suspended after the first k results and resumed when a candidate
turns out to be a false hit.  :class:`EuclideanKNNCursor` is that
suspendable search; :class:`RTree` is an STR bulk-loaded R-tree (the
object sets are known up front, so bulk loading gives well-packed nodes,
matching the paper's "parameters chosen for best performance").
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.utils.pqueue import BinaryHeap


class _Node:
    __slots__ = ("min_x", "min_y", "max_x", "max_y", "children", "entries")

    def __init__(self) -> None:
        self.min_x = math.inf
        self.min_y = math.inf
        self.max_x = -math.inf
        self.max_y = -math.inf
        self.children: List["_Node"] = []
        self.entries: List[Tuple[float, float, int]] = []  # (x, y, item)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def extend_bbox(self, min_x: float, min_y: float, max_x: float, max_y: float) -> None:
        self.min_x = min(self.min_x, min_x)
        self.min_y = min(self.min_y, min_y)
        self.max_x = max(self.max_x, max_x)
        self.max_y = max(self.max_y, max_y)

    def min_dist(self, px: float, py: float) -> float:
        """Minimum Euclidean distance from a point to this bounding box."""
        dx = max(self.min_x - px, 0.0, px - self.max_x)
        dy = max(self.min_y - py, 0.0, py - self.max_y)
        return math.hypot(dx, dy)


class RTree:
    """STR bulk-loaded point R-tree mapping (x, y) points to item ids."""

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        items: Optional[Sequence[int]] = None,
        node_capacity: int = 16,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("coordinate arrays must have the same length")
        if node_capacity < 2:
            raise ValueError("node capacity must be at least 2")
        self.node_capacity = node_capacity
        self.num_items = len(xs)
        if items is None:
            items = range(len(xs))
        records = [
            (float(x), float(y), int(item)) for x, y, item in zip(xs, ys, items)
        ]
        self.root = self._bulk_load(records)

    # ------------------------------------------------------------------
    # Construction (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    def _bulk_load(self, records: List[Tuple[float, float, int]]) -> _Node:
        if not records:
            return _Node()
        cap = self.node_capacity
        # Leaf level.
        leaves: List[_Node] = []
        n = len(records)
        num_leaves = math.ceil(n / cap)
        slices = math.ceil(math.sqrt(num_leaves))
        records = sorted(records, key=lambda r: r[0])
        slice_size = math.ceil(n / slices)
        for s in range(0, n, slice_size):
            chunk = sorted(records[s : s + slice_size], key=lambda r: r[1])
            for i in range(0, len(chunk), cap):
                node = _Node()
                node.entries = chunk[i : i + cap]
                for x, y, _ in node.entries:
                    node.extend_bbox(x, y, x, y)
                leaves.append(node)
        # Upper levels.
        level = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            m = len(level)
            num_parents = math.ceil(m / cap)
            slices = math.ceil(math.sqrt(num_parents))
            level = sorted(level, key=lambda nd: (nd.min_x + nd.max_x) / 2)
            slice_size = math.ceil(m / slices)
            for s in range(0, m, slice_size):
                chunk = sorted(
                    level[s : s + slice_size],
                    key=lambda nd: (nd.min_y + nd.max_y) / 2,
                )
                for i in range(0, len(chunk), cap):
                    parent = _Node()
                    parent.children = chunk[i : i + cap]
                    for child in parent.children:
                        parent.extend_bbox(
                            child.min_x, child.min_y, child.max_x, child.max_y
                        )
                    parents.append(parent)
            level = parents
        return level[0]

    # ------------------------------------------------------------------
    # Incremental maintenance (live object deltas)
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float, item: int) -> None:
        """Insert one point, descending by least bbox enlargement.

        Cursor correctness does not depend on tree quality — node bboxes
        only need to *contain* their points for ``min_dist`` to stay a
        valid lower bound — so a simple quadratic-split-free insert
        (overflow splits along the longer bbox axis) is enough.
        """
        record = (float(x), float(y), int(item))
        node = self.root
        path: List[_Node] = []
        while not node.is_leaf:
            path.append(node)
            node = min(node.children, key=lambda c: self._enlargement(c, record))
        node.entries.append(record)
        for n in path + [node]:
            n.extend_bbox(record[0], record[1], record[0], record[1])
        self.num_items += 1
        if len(node.entries) > self.node_capacity:
            self._split_leaf(node, path)

    def remove(self, x: float, y: float, item: int) -> bool:
        """Remove one point; returns False when not found.

        Bounding boxes are *not* shrunk — a too-large bbox is still a
        valid (merely looser) lower bound for the cursor.  Emptied leaf
        chains are pruned so dead nodes do not linger on the heap.
        """
        record = (float(x), float(y), int(item))
        found = self._remove_rec(self.root, record)
        if found:
            self.num_items -= 1
        return found

    @staticmethod
    def _enlargement(node: _Node, record: Tuple[float, float, int]) -> float:
        px, py = record[0], record[1]
        min_x, min_y = min(node.min_x, px), min(node.min_y, py)
        max_x, max_y = max(node.max_x, px), max(node.max_y, py)
        return (max_x - min_x) * (max_y - min_y) - max(
            0.0, (node.max_x - node.min_x) * (node.max_y - node.min_y)
        )

    def _split_leaf(self, node: _Node, path: List[_Node]) -> None:
        axis = 0 if (node.max_x - node.min_x) >= (node.max_y - node.min_y) else 1
        node.entries.sort(key=lambda r: r[axis])
        half = len(node.entries) // 2
        sibling = _Node()
        sibling.entries = node.entries[half:]
        node.entries = node.entries[:half]
        for part in (node, sibling):
            part.min_x = part.min_y = math.inf
            part.max_x = part.max_y = -math.inf
            for rx, ry, _ in part.entries:
                part.extend_bbox(rx, ry, rx, ry)
        if path:
            parent = path[-1]
            parent.children.append(sibling)
            # Parent bboxes along the path already contain both halves; an
            # oversized internal node is tolerated (bboxes stay valid).
        else:
            new_root = _Node()
            new_root.children = [node, sibling]
            for child in new_root.children:
                new_root.extend_bbox(
                    child.min_x, child.min_y, child.max_x, child.max_y
                )
            self.root = new_root

    def _remove_rec(self, node: _Node, record: Tuple[float, float, int]) -> bool:
        if node.is_leaf:
            try:
                node.entries.remove(record)
            except ValueError:
                return False
            return True
        for child in node.children:
            if (
                child.min_x <= record[0] <= child.max_x
                and child.min_y <= record[1] <= child.max_y
                and self._remove_rec(child, record)
            ):
                if not child.children and not child.entries:
                    node.children.remove(child)
                return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, px: float, py: float, k: int) -> List[Tuple[float, int]]:
        """The k items nearest to (px, py) as ``(distance, item)`` pairs."""
        cursor = self.nearest_cursor(px, py)
        out: List[Tuple[float, int]] = []
        for pair in cursor:
            out.append(pair)
            if len(out) == k:
                break
        return out

    def nearest_cursor(self, px: float, py: float) -> "EuclideanKNNCursor":
        """A suspendable incremental nearest-neighbour cursor."""
        return EuclideanKNNCursor(self, px, py)

    def size_bytes(self) -> int:
        """Approximate footprint: 36 bytes per node bbox + 20 per entry."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 36
            total += 20 * len(node.entries)
            stack.extend(node.children)
        return total

    def __len__(self) -> int:
        return self.num_items


class EuclideanKNNCursor:
    """Best-first incremental Euclidean NN search over an :class:`RTree`.

    The heap persists across :meth:`next` calls so IER can resume after
    false hits.  :meth:`peek_distance` exposes the lower bound on the next
    result (``Front(E)`` in Algorithm 2) without consuming it.
    """

    def __init__(self, tree: RTree, px: float, py: float) -> None:
        self._px, self._py = float(px), float(py)
        self._heap = BinaryHeap()
        self.retrieved = 0
        if tree.num_items:
            self._heap.push(tree.root.min_dist(self._px, self._py), tree.root)

    def _advance(self) -> Optional[Tuple[float, int]]:
        heap = self._heap
        px, py = self._px, self._py
        while heap:
            key, element = heap.pop()
            if isinstance(element, _Node):
                if element.is_leaf:
                    for x, y, item in element.entries:
                        heap.push(math.hypot(x - px, y - py), (item,))
                else:
                    for child in element.children:
                        heap.push(child.min_dist(px, py), child)
            else:
                self.retrieved += 1
                return key, element[0]
        return None

    def next(self) -> Optional[Tuple[float, int]]:
        """Next ``(euclidean_distance, item)`` or None when exhausted."""
        return self._advance()

    def peek_distance(self) -> float:
        """Lower bound on the distance of the next result (inf if none).

        Pushes nodes down lazily until the heap front is an item or the
        bound is already exact enough (a node's min_dist is a valid lower
        bound, so the raw front key is returned).
        """
        return self._heap.peek_key()

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        while True:
            item = self._advance()
            if item is None:
                return
            yield item
