"""Morton (Z-order) codes.

SILC stores each vertex's colour keyed by the Morton code of its quadtree
block ("Morton Lists" in Distance Browsing); interleaving the bits of the
two grid coordinates linearises the quadtree so block lookup is a binary
search.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_B = [0x5555555555555555, 0x3333333333333333, 0x0F0F0F0F0F0F0F0F, 0x00FF00FF00FF00FF, 0x0000FFFF0000FFFF]
_S = [1, 2, 4, 8, 16]


def _part1by1(x: int) -> int:
    """Spread the low 32 bits of x so there is a zero bit between each."""
    x &= 0xFFFFFFFF
    x = (x | (x << _S[4])) & _B[4]
    x = (x | (x << _S[3])) & _B[3]
    x = (x | (x << _S[2])) & _B[2]
    x = (x | (x << _S[1])) & _B[1]
    x = (x | (x << _S[0])) & _B[0]
    return x


def _compact1by1(x: int) -> int:
    x &= _B[0]
    x = (x ^ (x >> _S[0])) & _B[1]
    x = (x ^ (x >> _S[1])) & _B[2]
    x = (x ^ (x >> _S[2])) & _B[3]
    x = (x ^ (x >> _S[3])) & _B[4]
    x = (x ^ (x >> _S[4])) & 0xFFFFFFFF
    return x


def morton_encode(col: int, row: int) -> int:
    """Interleave two 32-bit grid coordinates into one Morton code."""
    return _part1by1(col) | (_part1by1(row) << 1)


def morton_decode(code: int) -> Tuple[int, int]:
    """Inverse of :func:`morton_encode`; returns (col, row)."""
    return _compact1by1(code), _compact1by1(code >> 1)


def morton_encode_array(cols: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Vectorised Morton encoding for uint32 coordinate arrays."""
    x = cols.astype(np.uint64)
    y = rows.astype(np.uint64)

    def spread(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(0xFFFFFFFF)
        for b, s in zip(reversed(_B), reversed(_S)):
            v = (v | (v << np.uint64(s))) & np.uint64(b)
        return v

    return spread(x) | (spread(y) << np.uint64(1))
