"""Region quadtrees.

Two roles in this library, mirroring the paper:

* **SILC colour maps** (Section 3.3): for each source vertex, every other
  vertex is coloured by the first hop of its shortest path; contiguous
  same-colour regions are compressed into quadtree blocks.  Each block
  additionally stores the lambda-/lambda+ ratio bounds DisBrw uses to
  derive network-distance intervals.
* **Object Hierarchy** (Section 3.3 / Appendix A.1.1): a capacity-split
  quadtree over an object set, whose blocks DisBrw visits best-first.

Both are built over an integer grid obtained by quantising vertex
coordinates; when distinct-valued points collide in one grid cell the
block stores an explicit exception map rather than recursing forever.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class QuadBlock:
    """One quadtree block covering grid cells [cx, cx+size) x [cy, cy+size)."""

    __slots__ = (
        "cx",
        "cy",
        "size",
        "children",
        "value",
        "exceptions",
        "lam_minus",
        "lam_plus",
        "points",
        "count",
    )

    def __init__(self, cx: int, cy: int, size: int) -> None:
        self.cx = cx
        self.cy = cy
        self.size = size
        self.children: Optional[List["QuadBlock"]] = None
        self.value: Optional[int] = None
        self.exceptions: Optional[Dict[Tuple[int, int], int]] = None
        self.lam_minus = math.inf
        self.lam_plus = -math.inf
        self.points: Optional[List[int]] = None
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def contains_cell(self, gx: int, gy: int) -> bool:
        return self.cx <= gx < self.cx + self.size and self.cy <= gy < self.cy + self.size

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return f"QuadBlock({kind}, cell=({self.cx},{self.cy}), size={self.size})"


class QuadTree:
    """Region quadtree over quantised planar points.

    Use :meth:`from_colored_points` for SILC colour maps and
    :meth:`from_points` for Object Hierarchies.
    """

    def __init__(
        self,
        root: QuadBlock,
        grid_bits: int,
        x0: float,
        y0: float,
        cell_w: float,
        cell_h: float,
    ) -> None:
        self.root = root
        self.grid_bits = grid_bits
        self.x0 = x0
        self.y0 = y0
        self.cell_w = cell_w
        self.cell_h = cell_h

    # ------------------------------------------------------------------
    # Grid helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _grid_params(
        xs: np.ndarray, ys: np.ndarray, grid_bits: int
    ) -> Tuple[float, float, float, float]:
        grid = 1 << grid_bits
        x0, y0 = float(xs.min()), float(ys.min())
        spanx = float(xs.max()) - x0 or 1.0
        spany = float(ys.max()) - y0 or 1.0
        return x0, y0, spanx / grid, spany / grid

    def to_cell(self, x: float, y: float) -> Tuple[int, int]:
        grid = (1 << self.grid_bits) - 1
        gx = min(int((x - self.x0) / self.cell_w), grid)
        gy = min(int((y - self.y0) / self.cell_h), grid)
        return max(gx, 0), max(gy, 0)

    def block_bbox(self, block: QuadBlock) -> Tuple[float, float, float, float]:
        """World-coordinate bounding box of a block."""
        return (
            self.x0 + block.cx * self.cell_w,
            self.y0 + block.cy * self.cell_h,
            self.x0 + (block.cx + block.size) * self.cell_w,
            self.y0 + (block.cy + block.size) * self.cell_h,
        )

    def min_dist(self, block: QuadBlock, px: float, py: float) -> float:
        """Min Euclidean distance from (px, py) to the block's bbox."""
        min_x, min_y, max_x, max_y = self.block_bbox(block)
        dx = max(min_x - px, 0.0, px - max_x)
        dy = max(min_y - py, 0.0, py - max_y)
        return math.hypot(dx, dy)

    def max_dist(self, block: QuadBlock, px: float, py: float) -> float:
        """Max Euclidean distance from (px, py) to the block's bbox."""
        min_x, min_y, max_x, max_y = self.block_bbox(block)
        dx = max(abs(px - min_x), abs(px - max_x))
        dy = max(abs(py - min_y), abs(py - max_y))
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # SILC colour map construction
    # ------------------------------------------------------------------
    @classmethod
    def from_colored_points(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        colors: Sequence[int],
        ratios: Optional[Sequence[float]] = None,
        grid_bits: int = 10,
        skip: Optional[int] = None,
    ) -> "QuadTree":
        """Compress a colouring into uniform-colour quadtree blocks.

        ``colors[i]`` is the first-hop colour of point i; ``ratios[i]`` the
        Euclidean/network distance ratio aggregated into lambda bounds.
        ``skip`` excludes one index (SILC excludes the source itself).
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        colors_arr = np.asarray(colors, dtype=np.int64)
        ratio_arr = (
            np.asarray(ratios, dtype=np.float64) if ratios is not None else None
        )
        x0, y0, cw, chh = cls._grid_params(xs, ys, grid_bits)
        grid = (1 << grid_bits) - 1
        gx = np.clip(((xs - x0) / cw).astype(np.int64), 0, grid)
        gy = np.clip(((ys - y0) / chh).astype(np.int64), 0, grid)

        indices = [i for i in range(len(xs)) if i != skip and colors_arr[i] >= 0]

        def build(cx: int, cy: int, size: int, members: List[int]) -> QuadBlock:
            block = QuadBlock(cx, cy, size)
            block.count = len(members)
            if ratio_arr is not None and members:
                rs = ratio_arr[members]
                block.lam_minus = float(rs.min())
                block.lam_plus = float(rs.max())
            if not members:
                return block
            first = colors_arr[members[0]]
            if all(colors_arr[i] == first for i in members):
                block.value = int(first)
                return block
            if size == 1:
                # Distinct colours collide in one cell: exception map.
                block.exceptions = {
                    (int(gx[i]), int(gy[i])): int(colors_arr[i]) for i in members
                }
                block.value = int(first)
                return block
            half = size // 2
            quadrants: List[List[int]] = [[], [], [], []]
            for i in members:
                qx = 0 if gx[i] < cx + half else 1
                qy = 0 if gy[i] < cy + half else 1
                quadrants[qy * 2 + qx].append(i)
            block.children = [
                build(cx, cy, half, quadrants[0]),
                build(cx + half, cy, half, quadrants[1]),
                build(cx, cy + half, half, quadrants[2]),
                build(cx + half, cy + half, half, quadrants[3]),
            ]
            return block

        root = build(0, 0, 1 << grid_bits, indices)
        return cls(root, grid_bits, x0, y0, cw, chh)

    # ------------------------------------------------------------------
    # Object Hierarchy construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        items: Optional[Sequence[int]] = None,
        leaf_capacity: int = 8,
        grid_bits: int = 10,
    ) -> "QuadTree":
        """Capacity-split quadtree over points; leaves list item ids.

        Every block records its object ``count`` — the extra preprocessing
        step the paper adds so DisBrw can tighten Dk from node upper
        bounds (Appendix A.1).
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if items is None:
            items = list(range(len(xs)))
        items = [int(i) for i in items]
        x0, y0, cw, chh = cls._grid_params(xs, ys, grid_bits) if len(xs) else (
            0.0,
            0.0,
            1.0,
            1.0,
        )
        grid = (1 << grid_bits) - 1
        gx = np.clip(((xs - x0) / cw).astype(np.int64), 0, grid) if len(xs) else xs
        gy = np.clip(((ys - y0) / chh).astype(np.int64), 0, grid) if len(ys) else ys

        def build(cx: int, cy: int, size: int, members: List[int]) -> QuadBlock:
            block = QuadBlock(cx, cy, size)
            block.count = len(members)
            if len(members) <= leaf_capacity or size == 1:
                block.points = [items[i] for i in members]
                return block
            half = size // 2
            quadrants: List[List[int]] = [[], [], [], []]
            for i in members:
                qx = 0 if gx[i] < cx + half else 1
                qy = 0 if gy[i] < cy + half else 1
                quadrants[qy * 2 + qx].append(i)
            if any(len(q) == len(members) for q in quadrants) and size <= 2:
                block.points = [items[i] for i in members]
                return block
            block.children = [
                build(cx, cy, half, quadrants[0]),
                build(cx + half, cy, half, quadrants[1]),
                build(cx, cy + half, half, quadrants[2]),
                build(cx + half, cy + half, half, quadrants[3]),
            ]
            return block

        root = build(0, 0, 1 << grid_bits, list(range(len(xs))))
        return cls(root, grid_bits, x0, y0, cw, chh)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> QuadBlock:
        """The leaf block whose region contains world point (x, y)."""
        gx, gy = self.to_cell(x, y)
        block = self.root
        while not block.is_leaf:
            half = block.size // 2
            qx = 0 if gx < block.cx + half else 1
            qy = 0 if gy < block.cy + half else 1
            block = block.children[qy * 2 + qx]
        return block

    def color_at(self, x: float, y: float) -> Optional[int]:
        """SILC colour of the world point (x, y)."""
        gx, gy = self.to_cell(x, y)
        block = self.locate(x, y)
        if block.exceptions is not None:
            hit = block.exceptions.get((gx, gy))
            if hit is not None:
                return hit
        return block.value

    def leaves(self) -> Iterable[QuadBlock]:
        stack = [self.root]
        while stack:
            block = stack.pop()
            if block.is_leaf:
                yield block
            else:
                stack.extend(block.children)

    def num_blocks(self) -> int:
        total = 0
        stack = [self.root]
        while stack:
            block = stack.pop()
            total += 1
            if not block.is_leaf:
                stack.extend(block.children)
        return total

    def size_bytes(self) -> int:
        """Approximate footprint: 48 bytes per block + exception entries."""
        total = 0
        for block in self._all_blocks():
            total += 48
            if block.exceptions:
                total += 24 * len(block.exceptions)
            if block.points:
                total += 8 * len(block.points)
        return total

    def _all_blocks(self) -> Iterable[QuadBlock]:
        stack = [self.root]
        while stack:
            block = stack.pop()
            yield block
            if not block.is_leaf:
                stack.extend(block.children)
