"""Spatial index substrates: Morton codes, R-tree, region quadtree.

The R-tree supplies IER and DB-ENN with incremental Euclidean nearest
neighbours; quadtrees compress SILC's first-hop colouring and implement
Distance Browsing's Object Hierarchy.
"""

from repro.spatial.morton import morton_encode, morton_decode
from repro.spatial.rtree import RTree, EuclideanKNNCursor
from repro.spatial.quadtree import QuadTree, QuadBlock

__all__ = [
    "morton_encode",
    "morton_decode",
    "RTree",
    "EuclideanKNNCursor",
    "QuadTree",
    "QuadBlock",
]
