"""Road-network graph substrate.

Provides the CSR graph structure recommended by the paper (Section 6.2,
choice 3), synthetic road-network generators standing in for the DIMACS
datasets, a DIMACS reader/writer for real files, and the multilevel
partitioner shared by G-tree and ROAD.
"""

from repro.graph.graph import Graph, GraphBuilder
from repro.graph.generators import (
    delaunay_network,
    grid_network,
    road_network,
    scaled_network_suite,
)
from repro.graph.dimacs import load_dimacs, save_dimacs
from repro.graph.partition import partition_graph, recursive_partition

__all__ = [
    "Graph",
    "GraphBuilder",
    "grid_network",
    "delaunay_network",
    "road_network",
    "scaled_network_suite",
    "load_dimacs",
    "save_dimacs",
    "partition_graph",
    "recursive_partition",
]
