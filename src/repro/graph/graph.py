"""CSR road-network graph.

The paper (Section 6.2, choice 3) replaces per-vertex adjacency-list
objects with two flat arrays: ``edges`` holding every adjacency list
consecutively and ``vertices`` holding the starting offset of each list.
``Graph`` is exactly that structure, backed by numpy arrays, with vertex
coordinates for Euclidean bounds and both travel-distance and travel-time
edge weights (the paper evaluates both, Sections 7.2-7.5).

Graphs are undirected and connected: every edge is stored in both
directions and the builder verifies connectivity (the paper's problem
definition assumes a connected undirected graph).
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components


class Graph:
    """Undirected road network in CSR form.

    Topology is fixed after construction; edge weights may drift via
    :meth:`apply_weight_deltas` (time-varying travel times), which keeps
    the cached derived structures consistent.

    Attributes
    ----------
    vertex_start : ``int64[V+1]``
        ``vertex_start[u]..vertex_start[u+1]`` indexes u's adjacency list.
    edge_target : ``int32[2E]``
        Flattened adjacency lists (each undirected edge appears twice).
    edge_weight : ``float64[2E]``
        Active edge weights (travel distance by default).
    x, y : ``float64[V]``
        Planar vertex coordinates (used for Euclidean lower bounds).
    """

    def __init__(
        self,
        vertex_start: np.ndarray,
        edge_target: np.ndarray,
        edge_weight: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        name: str = "graph",
        weight_kind: str = "distance",
    ) -> None:
        self.vertex_start = vertex_start
        self.edge_target = edge_target
        self.edge_weight = edge_weight
        self.x = x
        self.y = y
        self.name = name
        self.weight_kind = weight_kind
        self._csr: Optional[csr_matrix] = None
        self._max_speed: Optional[float] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertex_start) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edge_target) // 2

    def degree(self, u: int) -> int:
        return int(self.vertex_start[u + 1] - self.vertex_start[u])

    def neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(v, w(u, v))`` for every neighbor v of u."""
        start, end = self.vertex_start[u], self.vertex_start[u + 1]
        targets = self.edge_target
        weights = self.edge_weight
        for i in range(start, end):
            yield int(targets[i]), float(weights[i])

    def neighbor_slice(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Adjacency of u as ``(targets, weights)`` array views."""
        start, end = self.vertex_start[u], self.vertex_start[u + 1]
        return self.edge_target[start:end], self.edge_weight[start:end]

    def edge_weight_between(self, u: int, v: int) -> Optional[float]:
        """Weight of edge (u, v), or None when absent."""
        targets, weights = self.neighbor_slice(u)
        hits = np.nonzero(targets == v)[0]
        if len(hits) == 0:
            return None
        return float(weights[hits[0]])

    def euclidean(self, u: int, v: int) -> float:
        """Euclidean distance between the coordinates of u and v."""
        return math.hypot(self.x[u] - self.x[v], self.y[u] - self.y[v])

    def euclidean_to_point(self, u: int, px: float, py: float) -> float:
        return math.hypot(self.x[u] - px, self.y[u] - py)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def to_csr_matrix(self) -> csr_matrix:
        """Scipy CSR adjacency matrix (cached) for bulk preprocessing."""
        if self._csr is None:
            n = self.num_vertices
            indptr = self.vertex_start.astype(np.int64)
            self._csr = csr_matrix(
                (self.edge_weight, self.edge_target.astype(np.int64), indptr),
                shape=(n, n),
            )
        return self._csr

    def max_speed(self) -> float:
        """``S = max(euclidean_length / weight)`` over all edges.

        For travel-time weights this is the maximum speed in the network;
        ``euclidean / S`` is then a valid network-distance lower bound
        (paper Section 7.5).  For travel-distance weights where weights
        are >= euclidean lengths this is <= 1.
        """
        if self._max_speed is None:
            n = self.num_vertices
            sources = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self.vertex_start)
            )
            targets = self.edge_target
            dx = self.x[sources] - self.x[targets]
            dy = self.y[sources] - self.y[targets]
            lengths = np.hypot(dx, dy)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.where(self.edge_weight > 0, lengths / self.edge_weight, 0.0)
            self._max_speed = float(ratio.max()) if len(ratio) else 1.0
            if self._max_speed <= 0:
                self._max_speed = 1.0
        return self._max_speed

    def euclidean_lower_bound(self, u: int, v: int) -> float:
        """Valid network-distance lower bound for the active weights."""
        return self.euclidean(u, v) / self.max_speed()

    def with_weights(self, edge_weight: np.ndarray, weight_kind: str) -> "Graph":
        """A graph sharing topology and coordinates but different weights."""
        if len(edge_weight) != len(self.edge_target):
            raise ValueError("weight array length must match edge count")
        return Graph(
            self.vertex_start,
            self.edge_target,
            np.asarray(edge_weight, dtype=np.float64),
            self.x,
            self.y,
            name=f"{self.name}:{weight_kind}",
            weight_kind=weight_kind,
        )

    def apply_weight_deltas(
        self, deltas: Sequence
    ) -> List[Tuple[int, int, float, float]]:
        """Mutate edge weights in place from :class:`repro.updates.WeightDelta`s.

        Each delta sets undirected edge ``(u, v)`` to the absolute weight
        ``new_weight``; both directed copies are updated and the cached
        CSR matrix, max-speed bound and fingerprint are invalidated (a
        stale fingerprint would poison store artifacts and server result
        caches).  Returns ``(u, v, old, new)`` for deltas that actually
        changed a weight — replaying an already-applied batch yields an
        empty list, making delta streams idempotent.

        Raises ``KeyError`` for a missing edge and ``ValueError`` for a
        non-positive weight, *before* mutating anything in that delta.
        """
        changed: List[Tuple[int, int, float, float]] = []
        starts = self.vertex_start
        targets = self.edge_target
        weights = self.edge_weight
        dirty = False
        for delta in deltas:
            u, v = int(delta.u), int(delta.v)
            new_w = float(delta.new_weight)
            if not new_w > 0.0:
                raise ValueError(f"edge ({u}, {v}) weight must stay positive")
            if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
                raise KeyError(f"edge ({u}, {v}) references unknown vertex")
            pos_uv = starts[u] + np.nonzero(
                targets[starts[u]:starts[u + 1]] == v
            )[0]
            pos_vu = starts[v] + np.nonzero(
                targets[starts[v]:starts[v + 1]] == u
            )[0]
            if len(pos_uv) == 0 or len(pos_vu) == 0:
                raise KeyError(f"no edge between {u} and {v}")
            old_w = float(weights[pos_uv[0]])
            if old_w == new_w:
                continue
            weights[pos_uv] = new_w
            weights[pos_vu] = new_w
            changed.append((u, v, old_w, new_w))
            dirty = True
        if dirty:
            self._csr = None
            self._max_speed = None
            self._fingerprint = None
        return changed

    def edge_list(self) -> List[Tuple[int, int, float]]:
        """Undirected edge list with u < v (each edge once)."""
        out = []
        for u in range(self.num_vertices):
            targets, weights = self.neighbor_slice(u)
            for v, w in zip(targets, weights):
                if u < v:
                    out.append((u, int(v), float(w)))
        return out

    def size_bytes(self) -> int:
        """In-memory footprint of the CSR arrays (index-size experiments)."""
        return (
            self.vertex_start.nbytes
            + self.edge_target.nbytes
            + self.edge_weight.nbytes
            + self.x.nbytes
            + self.y.nbytes
        )

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The CSR arrays as a flat dict — an ``IndexStore`` artifact payload."""
        return {
            "vertex_start": self.vertex_start,
            "edge_target": self.edge_target,
            "edge_weight": self.edge_weight,
            "x": self.x,
            "y": self.y,
            "name": np.asarray(self.name),
            "weight_kind": np.asarray(self.weight_kind),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "Graph":
        """Rebuild a graph from :meth:`to_arrays` output."""
        return cls(
            np.asarray(arrays["vertex_start"], dtype=np.int64),
            np.asarray(arrays["edge_target"], dtype=np.int32),
            np.asarray(arrays["edge_weight"], dtype=np.float64),
            np.asarray(arrays["x"], dtype=np.float64),
            np.asarray(arrays["y"], dtype=np.float64),
            name=str(arrays.get("name", "graph")),
            weight_kind=str(arrays.get("weight_kind", "distance")),
        )

    #: (array name, target dtype) pairs :meth:`from_store_mmap` verifies
    #: stay zero-copy.
    _CSR_FIELDS = (
        ("vertex_start", np.int64),
        ("edge_target", np.int32),
        ("edge_weight", np.float64),
        ("x", np.float64),
        ("y", np.float64),
    )

    @classmethod
    def from_store_mmap(cls, store, key: str) -> "Graph":
        """Construct a graph over a store artifact **without copying**.

        For a ``flat`` artifact the CSR arrays are read-only memory maps:
        construction touches no data pages, the OS faults them in on
        first access, and every process mapping the same store shares
        them through the page cache.  For a legacy ``npz`` artifact the
        arrays materialise (that is the transparent-fallback contract) —
        still one copy, never two.

        A no-copy guard verifies each array the graph holds shares
        memory with the loaded view; a silent copy (e.g. a dtype drift
        in a foreign artifact) raises ``StoreError`` rather than quietly
        doubling a continental-scale footprint.  The resulting graph is
        immutable: ``apply_weight_deltas`` on mapped weights raises
        ``ValueError`` (read-only array), by design.
        """
        from repro.store.store import StoreError

        arrays = store.get("graph", key)
        graph = cls.from_arrays(arrays)
        mapped = getattr(store.info("graph", key), "format", "npz") == "flat"
        if mapped:
            for name, _dtype in cls._CSR_FIELDS:
                if not np.shares_memory(getattr(graph, name), arrays[name]):
                    raise StoreError(
                        f"from_store_mmap copied array {name!r} (dtype "
                        f"{arrays[name].dtype} in artifact); the flat "
                        "artifact was written with a foreign layout"
                    )
        return graph

    #: Rows hashed per :meth:`fingerprint` chunk — bounds the transient
    #: heap cost of hashing to ~32 MB regardless of graph size.
    _FINGERPRINT_CHUNK = 4 << 20

    def fingerprint(self) -> str:
        """Content hash of topology, weights and coordinates (cached).

        The persistent index store keys every artifact by this digest, so
        an index saved for one network can never be served for another —
        including the same topology under different edge weights (the
        travel-time variants).

        Hashing walks each array in bounded chunks: ``tobytes()`` on a
        whole continental-scale array would allocate a full heap copy
        (and fault in every page of a memory-mapped graph at once).  The
        digest is byte-identical to whole-array hashing for the
        C-contiguous 1-D arrays a graph holds.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            step = self._FINGERPRINT_CHUNK
            for arr in (
                self.vertex_start,
                self.edge_target,
                self.edge_weight,
                self.x,
                self.y,
            ):
                flat = arr if arr.ndim == 1 else np.ascontiguousarray(arr)
                for i in range(0, len(flat), step):
                    h.update(np.ascontiguousarray(flat[i : i + step]).tobytes())
            h.update(self.weight_kind.encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, weights={self.weight_kind})"
        )


class GraphBuilder:
    """Incremental builder producing a validated :class:`Graph`.

    >>> b = GraphBuilder()
    >>> a = b.add_vertex(0.0, 0.0); c = b.add_vertex(1.0, 0.0)
    >>> b.add_edge(a, c, 1.0)
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    def __init__(self) -> None:
        self._xs: List[float] = []
        self._ys: List[float] = []
        self._edges: List[Tuple[int, int, float]] = []

    def add_vertex(self, x: float, y: float) -> int:
        self._xs.append(float(x))
        self._ys.append(float(y))
        return len(self._xs) - 1

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            raise ValueError("self loops are not allowed in road networks")
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        n = len(self._xs)
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) references unknown vertex")
        self._edges.append((u, v, float(weight)))

    @property
    def num_vertices(self) -> int:
        return len(self._xs)

    def build(
        self,
        name: str = "graph",
        weight_kind: str = "distance",
        require_connected: bool = True,
    ) -> Graph:
        n = len(self._xs)
        if n == 0:
            raise ValueError("graph must have at least one vertex")
        # Deduplicate parallel edges keeping the smallest weight, then
        # expand to both directions and sort into CSR order.
        best: dict = {}
        for u, v, w in self._edges:
            key = (u, v) if u < v else (v, u)
            prev = best.get(key)
            if prev is None or w < prev:
                best[key] = w
        m = len(best)
        src = np.empty(2 * m, dtype=np.int64)
        dst = np.empty(2 * m, dtype=np.int32)
        wgt = np.empty(2 * m, dtype=np.float64)
        for i, ((u, v), w) in enumerate(best.items()):
            src[2 * i], dst[2 * i], wgt[2 * i] = u, v, w
            src[2 * i + 1], dst[2 * i + 1], wgt[2 * i + 1] = v, u, w
        order = np.lexsort((dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        vertex_start = np.zeros(n + 1, dtype=np.int64)
        np.add.at(vertex_start, src + 1, 1)
        np.cumsum(vertex_start, out=vertex_start)
        graph = Graph(
            vertex_start,
            dst,
            wgt,
            np.asarray(self._xs, dtype=np.float64),
            np.asarray(self._ys, dtype=np.float64),
            name=name,
            weight_kind=weight_kind,
        )
        if require_connected and m > 0:
            n_components, _ = connected_components(
                graph.to_csr_matrix(), directed=False
            )
            if n_components != 1:
                raise ValueError(
                    f"graph has {n_components} connected components; road "
                    "networks must be connected (pass require_connected="
                    "False to skip this check)"
                )
        return graph


def from_edge_list(
    coordinates: Sequence[Tuple[float, float]],
    edges: Sequence[Tuple[int, int, float]],
    name: str = "graph",
    weight_kind: str = "distance",
    require_connected: bool = True,
) -> Graph:
    """Convenience constructor from coordinate and edge sequences."""
    builder = GraphBuilder()
    for x, y in coordinates:
        builder.add_vertex(x, y)
    for u, v, w in edges:
        builder.add_edge(u, v, w)
    return builder.build(
        name=name, weight_kind=weight_kind, require_connected=require_connected
    )


def largest_connected_component(graph: Graph) -> Graph:
    """Restrict ``graph`` to its largest connected component.

    Used by the DIMACS loader and the generators: real and synthetic data
    can contain small disconnected fragments that the problem definition
    excludes.
    """
    n_components, labels = connected_components(graph.to_csr_matrix(), directed=False)
    if n_components == 1:
        return graph
    largest = np.argmax(np.bincount(labels))
    keep = np.nonzero(labels == largest)[0]
    remap = -np.ones(graph.num_vertices, dtype=np.int64)
    remap[keep] = np.arange(len(keep))
    builder = GraphBuilder()
    for old in keep:
        builder.add_vertex(graph.x[old], graph.y[old])
    for u, v, w in graph.edge_list():
        if remap[u] >= 0 and remap[v] >= 0:
            builder.add_edge(int(remap[u]), int(remap[v]), w)
    return builder.build(name=graph.name, weight_kind=graph.weight_kind)
