"""Multilevel graph partitioning shared by G-tree and ROAD.

Both indexes recursively partition the road network with fanout ``f``
(Section 3.4/3.5).  The paper uses the same multilevel scheme [18]
(coarsen / initial partition / refine, i.e. Metis-style) for both methods
so their hierarchies are comparable; we do the same:

1. **Coarsening** — heavy-edge matching contracts matched vertex pairs
   until the graph is small.
2. **Initial bisection** — BFS region growing from a peripheral vertex
   until half the vertex weight is claimed.
3. **Refinement** — boundary Fiedler/Kernighan–Lin style passes (a
   simplified FM: move the boundary vertex with best gain, with balance
   constraints) at every uncoarsening level.

f-way partitions are obtained by recursive (weighted) bisection, which is
what multilevel tools do for small fanouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph

Adjacency = List[List[Tuple[int, float]]]


def _induced_adjacency(graph: Graph, vertices: Sequence[int]) -> Adjacency:
    """Adjacency of the subgraph induced by ``vertices`` with local ids."""
    local = {int(v): i for i, v in enumerate(vertices)}
    adj: Adjacency = [[] for _ in vertices]
    for v, i in local.items():
        targets, weights = graph.neighbor_slice(v)
        for t, w in zip(targets, weights):
            j = local.get(int(t))
            if j is not None:
                adj[i].append((j, float(w)))
    return adj


def _coarsen(
    adj: Adjacency, node_weight: List[int], rng: np.random.Generator
) -> Tuple[Adjacency, List[int], List[int]]:
    """One heavy-edge-matching coarsening pass.

    Returns (coarse adjacency, coarse node weights, fine->coarse map).
    """
    n = len(adj)
    match = [-1] * n
    order = rng.permutation(n)
    for u in order:
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for v, w in adj[u]:
            if match[v] == -1 and v != u and w > best_w:
                best, best_w = v, w
        if best != -1:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    coarse_of = [-1] * n
    next_id = 0
    for u in range(n):
        if coarse_of[u] == -1:
            coarse_of[u] = next_id
            if match[u] != u:
                coarse_of[match[u]] = next_id
            next_id += 1
    coarse_weight = [0] * next_id
    for u in range(n):
        coarse_weight[coarse_of[u]] += node_weight[u]
    edge_accum: List[Dict[int, float]] = [dict() for _ in range(next_id)]
    for u in range(n):
        cu = coarse_of[u]
        for v, w in adj[u]:
            cv = coarse_of[v]
            if cu != cv:
                edge_accum[cu][cv] = edge_accum[cu].get(cv, 0.0) + w
    coarse_adj: Adjacency = [list(d.items()) for d in edge_accum]
    return coarse_adj, coarse_weight, coarse_of


def _initial_bisection(
    adj: Adjacency,
    node_weight: List[int],
    target_weight: int,
    rng: np.random.Generator,
) -> List[int]:
    """Grow part 0 by BFS from a peripheral vertex until target weight."""
    n = len(adj)
    side = [1] * n
    if n == 0:
        return side
    # Peripheral start: BFS from a random vertex, take the last reached.
    start = int(rng.integers(n))
    seen = [False] * n
    queue = [start]
    seen[start] = True
    last = start
    while queue:
        nxt: List[int] = []
        for u in queue:
            last = u
            for v, _ in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    nxt.append(v)
        queue = nxt

    grown = 0
    seen = [False] * n
    frontier = [last]
    seen[last] = True
    while frontier and grown < target_weight:
        nxt = []
        for u in frontier:
            if grown >= target_weight:
                break
            side[u] = 0
            grown += node_weight[u]
            for v, _ in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    nxt.append(v)
        frontier = nxt
    if grown < target_weight:
        # Disconnected: claim arbitrary remaining vertices.
        for u in range(n):
            if grown >= target_weight:
                break
            if side[u] == 1:
                side[u] = 0
                grown += node_weight[u]
    return side


def _refine(
    adj: Adjacency,
    node_weight: List[int],
    side: List[int],
    target_weight: int,
    passes: int = 4,
    imbalance: float = 0.1,
) -> None:
    """Boundary FM refinement: greedily move best-gain boundary vertices."""
    n = len(adj)
    total = sum(node_weight)
    weight0 = sum(w for u, w in enumerate(node_weight) if side[u] == 0)
    lo = int(target_weight * (1 - imbalance))
    hi = int(target_weight * (1 + imbalance)) + 1

    for _ in range(passes):
        moved_any = False
        # Gain of moving u to the other side: (cut edges) - (internal edges).
        gains: List[Tuple[float, int]] = []
        for u in range(n):
            external = internal = 0.0
            for v, w in adj[u]:
                if side[v] != side[u]:
                    external += w
                else:
                    internal += w
            if external > 0:
                gains.append((external - internal, u))
        gains.sort(reverse=True)
        for gain, u in gains:
            if gain <= 0:
                break
            if side[u] == 0:
                new_weight0 = weight0 - node_weight[u]
            else:
                new_weight0 = weight0 + node_weight[u]
            if not (lo <= new_weight0 <= hi):
                continue
            side[u] = 1 - side[u]
            weight0 = new_weight0
            moved_any = True
        if not moved_any:
            break


def _bisect_local(
    adj: Adjacency,
    node_weight: List[int],
    fraction: float,
    rng: np.random.Generator,
    coarsen_threshold: int = 64,
) -> List[int]:
    """Multilevel weighted bisection of a local-id subgraph.

    Returns a side label (0/1) per local vertex; side 0 receives roughly
    ``fraction`` of the total vertex weight.
    """
    total = sum(node_weight)
    target = int(round(total * fraction))
    if len(adj) <= coarsen_threshold:
        side = _initial_bisection(adj, node_weight, target, rng)
        _refine(adj, node_weight, side, target)
        return side
    coarse_adj, coarse_weight, coarse_of = _coarsen(adj, node_weight, rng)
    if len(coarse_adj) >= len(adj):  # matching made no progress
        side = _initial_bisection(adj, node_weight, target, rng)
        _refine(adj, node_weight, side, target)
        return side
    coarse_side = _bisect_local(coarse_adj, coarse_weight, fraction, rng)
    side = [coarse_side[coarse_of[u]] for u in range(len(adj))]
    _refine(adj, node_weight, side, target)
    return side


def _geometric_bisect(
    graph: Graph, vs: np.ndarray, fraction: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Median-cut bisection on the wider coordinate axis (vectorised).

    The array-kernel partitioner: road networks are embedded planar
    graphs, so cutting at the weighted median of the wider axis yields
    cuts whose border counts match the multilevel partitioner's (measured
    on the synthetic suite) at a tiny fraction of its cost — every step
    is one ``argpartition``, no per-edge Python work.  Exactly balanced
    by construction.
    """
    px, py = graph.x[vs], graph.y[vs]
    axis = px if np.ptp(px) >= np.ptp(py) else py
    k = max(1, min(len(vs) - 1, int(round(len(vs) * fraction))))
    idx = np.argpartition(axis, k)
    return vs[idx[:k]], vs[idx[k:]]


def partition_graph(
    graph: Graph,
    vertices: Optional[Sequence[int]] = None,
    fanout: int = 4,
    seed: int = 0,
    method: str = "multilevel",
) -> List[np.ndarray]:
    """Partition (a subgraph of) ``graph`` into ``fanout`` balanced parts.

    Returns a list of ``fanout`` arrays of global vertex ids.  Parts are
    balanced within ~10% and the partitioner minimises cut edges, which is
    what keeps G-tree/ROAD border sets small.

    ``method`` selects the bisection kernel: ``"multilevel"`` (the
    coarsen/grow/refine scheme above, reference) or ``"geometric"``
    (vectorised median cuts, used by array-kernel index builds).
    """
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    if method not in ("multilevel", "geometric"):
        raise ValueError(f"unknown partition method {method!r}")
    if vertices is None:
        vertices = np.arange(graph.num_vertices)
    vertices = np.asarray(vertices, dtype=np.int64)
    rng = np.random.default_rng(seed)

    def split(vs: np.ndarray, parts: int) -> List[np.ndarray]:
        if parts == 1 or len(vs) <= 1:
            out = [vs]
            out.extend(np.empty(0, dtype=np.int64) for _ in range(parts - 1))
            return out
        left_parts = parts // 2
        fraction = left_parts / parts
        if method == "geometric":
            left, right = _geometric_bisect(graph, vs, fraction)
        else:
            adj = _induced_adjacency(graph, vs)
            side = _bisect_local(adj, [1] * len(vs), fraction, rng)
            side_arr = np.asarray(side)
            left = vs[side_arr == 0]
            right = vs[side_arr == 1]
        if len(left) == 0 or len(right) == 0:
            # Degenerate cut: fall back to an arbitrary balanced split.
            half = max(1, int(len(vs) * fraction))
            left, right = vs[:half], vs[half:]
        return split(left, left_parts) + split(right, parts - left_parts)

    return split(vertices, fanout)


@dataclass
class PartitionNode:
    """A node in a recursive partition hierarchy.

    ``vertices`` are global vertex ids of the subgraph; leaves have no
    children.  Used as the common skeleton for G-tree and ROAD.
    """

    vertices: np.ndarray
    children: List["PartitionNode"] = field(default_factory=list)
    level: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> List["PartitionNode"]:
        if self.is_leaf:
            return [self]
        out: List[PartitionNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


def recursive_partition(
    graph: Graph,
    fanout: int = 4,
    max_leaf_size: Optional[int] = None,
    max_levels: Optional[int] = None,
    seed: int = 0,
    method: str = "multilevel",
) -> PartitionNode:
    """Recursively partition ``graph`` into a hierarchy.

    Stops splitting a node when it has at most ``max_leaf_size`` vertices
    (G-tree's leaf capacity tau) or when ``max_levels`` levels below the
    root have been created (ROAD's level parameter l).  At least one of the
    two stopping criteria must be given.  ``method`` picks the bisection
    kernel (see :func:`partition_graph`).
    """
    if max_leaf_size is None and max_levels is None:
        raise ValueError("provide max_leaf_size and/or max_levels")

    def build(vs: np.ndarray, level: int) -> PartitionNode:
        node = PartitionNode(vertices=vs, level=level)
        done_by_size = max_leaf_size is not None and len(vs) <= max_leaf_size
        done_by_level = max_levels is not None and level >= max_levels
        if done_by_size or done_by_level or len(vs) <= fanout:
            return node
        parts = partition_graph(
            graph, vs, fanout, seed=seed + level * 997 + len(vs), method=method
        )
        parts = [p for p in parts if len(p) > 0]
        if len(parts) <= 1:
            return node
        node.children = [build(p, level + 1) for p in parts]
        return node

    return build(np.arange(graph.num_vertices, dtype=np.int64), 0)
