"""Streaming DIMACS ingest: continental graphs into flat store artifacts.

``load_dimacs`` holds the whole arc set in a Python dict — fine at the
laptop scale the tests run, hopeless for the paper's headline networks
(USA: 24M vertices, 58M arcs).  :func:`ingest_dimacs` streams a ``.gr``
(+ optional ``.co``) file — gzipped or plain — into a CSR ``graph``
artifact under an explicit **memory budget**:

1. Arc lines are parsed in bounded chunks; each chunk is normalised to
   ``u < v``, sorted, deduplicated (minimum weight wins, matching
   ``load_dimacs``) and spilled to disk as a sorted run.
2. Runs are k-way merged (streaming, ``heapq.merge``) into one sorted,
   deduplicated arc file — a disk-backed memmap, never a dict.
3. The CSR arrays are filled block-vectorised into ``np.lib.format``
   memmaps: degree counting, chunked prefix sum, a counting-sort style
   scatter, then a segmented per-row sort so adjacency lists come out
   sorted by target exactly as ``GraphBuilder`` emits them.
4. Optionally (default, matching ``load_dimacs``) the graph is
   restricted to its largest connected component, again block-vectorised
   over the memmaps.

The result is written through ``IndexStore.put`` — with a
``format="flat"`` store that is a straight stream from scratch memmaps
to per-array ``.npy`` files, and the ingested graph is then served
zero-copy via :meth:`Graph.from_store_mmap`.

The byte-level contract: for inputs small enough to compare,
``ingest_dimacs`` produces a graph whose :meth:`Graph.fingerprint` is
identical to ``load_dimacs`` on the same files (same dedup rule, same
adjacency order, same default coordinates, same LCC restriction) — the
tier-1 suite holds that line.
"""

from __future__ import annotations

import heapq
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.graph.dimacs import open_dimacs
from repro.graph.graph import Graph

#: One undirected arc record in a spilled run: endpoints with u < v.
ARC_DTYPE = np.dtype([("u", "<i8"), ("v", "<i8"), ("w", "<f8")])

#: Floor for chunk/block sizes so tiny budgets stay functional instead
#: of degenerating into per-line spills.
_MIN_CHUNK_ROWS = 4096


@dataclass
class IngestReport:
    """What one ingest run did — the CLI prints this, tests assert on it."""

    key: str
    num_vertices: int
    num_edges: int
    arcs_read: int
    runs_spilled: int
    restricted_to_lcc: bool
    components_dropped: int
    ingest_time_s: float
    artifact_nbytes: int
    artifact_mapped_nbytes: int


def _chunk_rows(memory_budget_mb: float) -> int:
    """Parse-chunk size: the budget's dominant term is the Python-level
    int/float objects a chunk holds before vectorisation (~160 B/arc)."""
    budget = max(1.0, float(memory_budget_mb)) * 1e6
    return max(_MIN_CHUNK_ROWS, min(int(budget * 0.25 / 160), 8 << 20))


def _block_rows(memory_budget_mb: float) -> int:
    """Vector-op block size: each block materialises a handful of
    int64/float64 scratch arrays (~64 B/arc across the fill pipeline)."""
    budget = max(1.0, float(memory_budget_mb)) * 1e6
    return max(_MIN_CHUNK_ROWS, int(budget * 0.25 / 64))


def _dedup_sorted(
    u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse consecutive duplicate (u, v) pairs keeping the min weight."""
    if len(u) == 0:
        return u, v, w
    new = np.empty(len(u), dtype=bool)
    new[0] = True
    new[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    starts = np.nonzero(new)[0]
    return u[starts], v[starts], np.minimum.reduceat(w, starts)


def _spill_run(
    tmp: Path, index: int, us: List[int], vs: List[int], ws: List[float]
) -> Tuple[Optional[Path], int]:
    """Normalise, sort, dedup one parsed chunk and write it as a run.

    Returns ``(path, rows)``; ``(None, 0)`` when the chunk had no
    surviving arcs (all self-loops).
    """
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = np.asarray(ws, dtype=np.float64)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi  # drop self-loops, as load_dimacs does
    lo, hi, w = lo[keep], hi[keep], w[keep]
    if len(lo) == 0:
        return None, 0
    order = np.lexsort((hi, lo))
    lo, hi, w = _dedup_sorted(lo[order], hi[order], w[order])
    rec = np.empty(len(lo), dtype=ARC_DTYPE)
    rec["u"], rec["v"], rec["w"] = lo, hi, w
    path = tmp / f"run-{index:05d}.npy"
    with open(path, "wb") as fh:
        np.save(fh, rec, allow_pickle=False)
    return path, len(rec)


def _parse_arcs(
    gr_path, tmp: Path, chunk: int
) -> Tuple[int, int, List[Path]]:
    """Stream the ``.gr`` file into sorted runs.

    Returns ``(num_vertices, arcs_read, run_paths)``.  The vertex count
    honours both the ``p sp`` header and the largest id actually seen
    (real exports have renumbering gaps past the header count).
    """
    num_vertices = 0
    max_id = -1
    arcs_read = 0
    runs: List[Path] = []
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []

    def flush() -> None:
        path, _rows = _spill_run(tmp, len(runs), us, vs, ws)
        if path is not None:
            runs.append(path)
        us.clear()
        vs.clear()
        ws.clear()

    with open_dimacs(gr_path) as stream:
        for line in stream:
            # Match _parse_gr's tolerance: split first, dispatch on the
            # token — arc lines may carry leading whitespace.
            parts = line.split()
            if not parts or parts[0] != "a":
                if parts and parts[0] == "p":
                    num_vertices = int(parts[2])
                continue
            u, v = int(parts[1]) - 1, int(parts[2]) - 1
            if u > max_id:
                max_id = u
            if v > max_id:
                max_id = v
            us.append(u)
            vs.append(v)
            ws.append(float(parts[3]))
            arcs_read += 1
            if len(us) >= chunk:
                flush()
    flush()
    return max(num_vertices, max_id + 1), arcs_read, runs


def _iter_run(rec: np.ndarray, block: int) -> Iterator[Tuple[int, int, float]]:
    """Stream a sorted run as tuples, touching ``block`` rows at a time."""
    for i in range(0, len(rec), block):
        chunk = rec[i : i + block]
        yield from zip(
            chunk["u"].tolist(), chunk["v"].tolist(), chunk["w"].tolist()
        )


def _merge_runs(runs: List[Path], tmp: Path, block: int) -> Tuple[np.ndarray, int]:
    """K-way merge sorted runs into one deduplicated arc memmap.

    Returns ``(arc_memmap, logical_length)`` — the memmap is allocated
    at the pessimistic pre-dedup size; callers slice to the logical
    length.  With a single run this is a zero-work mmap of that run.
    """
    if len(runs) == 1:
        rec = np.load(runs[0], mmap_mode="r")
        return rec, len(rec)
    mapped = [np.load(p, mmap_mode="r") for p in runs]
    total = int(sum(len(a) for a in mapped))
    out = np.lib.format.open_memmap(
        tmp / "merged.npy", mode="w+", dtype=ARC_DTYPE, shape=(total,)
    )
    m = 0
    last_u = last_v = -1
    for u, v, w in heapq.merge(*(_iter_run(a, block) for a in mapped)):
        if u == last_u and v == last_v:
            if w < out[m - 1]["w"]:
                out[m - 1]["w"] = w
        else:
            out[m] = (u, v, w)
            m += 1
            last_u, last_v = u, v
    return out, m


def _chunked_cumsum(counts: np.ndarray, out: np.ndarray, block: int) -> None:
    """``out[i] = sum(counts[:i])`` with ``out[0] = 0``, block at a time."""
    out[0] = 0
    running = 0
    for i in range(0, len(counts), block):
        part = np.cumsum(counts[i : i + block], dtype=np.int64)
        out[i + 1 : i + 1 + len(part)] = running + part
        running += int(part[-1]) if len(part) else 0


def _sort_adjacency(
    vertex_start: np.ndarray,
    edge_target: np.ndarray,
    edge_weight: np.ndarray,
    block: int,
) -> None:
    """Sort each adjacency list by target, a bounded span at a time.

    Rows are already grouped (CSR invariant); this orders *within* rows
    so the layout is byte-identical to ``GraphBuilder``'s global
    ``lexsort((dst, src))``.
    """
    n = len(vertex_start) - 1
    a = 0
    while a < n:
        b = a + 1
        while b < n and vertex_start[b + 1] - vertex_start[a] <= block:
            b += 1
        lo, hi = int(vertex_start[a]), int(vertex_start[b])
        if hi > lo:
            counts = np.diff(vertex_start[a : b + 1]).astype(np.int64)
            rows = np.repeat(np.arange(a, b, dtype=np.int64), counts)
            targets = np.asarray(edge_target[lo:hi])
            order = np.lexsort((targets, rows))
            edge_target[lo:hi] = targets[order]
            edge_weight[lo:hi] = np.asarray(edge_weight[lo:hi])[order]
        a = b


def _fill_csr(
    n: int,
    arcs: np.ndarray,
    m: int,
    tmp: Path,
    tag: str,
    block: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Counting-sort ``m`` sorted (u < v) arcs into CSR memmaps."""
    deg = np.zeros(n + 1, dtype=np.int64)
    for i in range(0, m, block):
        chunk = arcs[i : min(i + block, m)]
        np.add.at(deg, np.asarray(chunk["u"]) + 1, 1)
        np.add.at(deg, np.asarray(chunk["v"]) + 1, 1)
    vertex_start = np.lib.format.open_memmap(
        tmp / f"vertex_start{tag}.npy", mode="w+", dtype=np.int64, shape=(n + 1,)
    )
    _chunked_cumsum(deg[1:], vertex_start, block)
    cursor = np.asarray(vertex_start[:-1]).copy()
    edge_target = np.lib.format.open_memmap(
        tmp / f"edge_target{tag}.npy", mode="w+", dtype=np.int32, shape=(2 * m,)
    )
    edge_weight = np.lib.format.open_memmap(
        tmp / f"edge_weight{tag}.npy", mode="w+", dtype=np.float64, shape=(2 * m,)
    )
    for i in range(0, m, block):
        chunk = arcs[i : min(i + block, m)]
        cw = np.asarray(chunk["w"])
        for src, dst in (
            (np.asarray(chunk["u"]), np.asarray(chunk["v"])),
            (np.asarray(chunk["v"]), np.asarray(chunk["u"])),
        ):
            order = np.argsort(src, kind="stable")
            s, d, w = src[order], dst[order], cw[order]
            uniq, first, counts = np.unique(
                s, return_index=True, return_counts=True
            )
            within = np.arange(len(s), dtype=np.int64) - np.repeat(first, counts)
            pos = cursor[s] + within
            edge_target[pos] = d
            edge_weight[pos] = w
            cursor[uniq] += counts
    _sort_adjacency(vertex_start, edge_target, edge_weight, block)
    return vertex_start, edge_target, edge_weight


def _default_coords(n: int, tmp: Path, tag: str, block: int):
    """Coordinate memmaps with ``load_dimacs``'s defaults: (v, 0.0)."""
    x = np.lib.format.open_memmap(
        tmp / f"x{tag}.npy", mode="w+", dtype=np.float64, shape=(n,)
    )
    y = np.lib.format.open_memmap(
        tmp / f"y{tag}.npy", mode="w+", dtype=np.float64, shape=(n,)
    )
    for i in range(0, n, block):
        j = min(n, i + block)
        x[i:j] = np.arange(i, j, dtype=np.float64)
        y[i:j] = 0.0
    return x, y


def _apply_coords(co_path, x: np.ndarray, y: np.ndarray, chunk: int) -> None:
    """Overlay ``.co`` coordinates, chunk-vectorised; unknown ids ignored."""
    n = len(x)
    ids: List[int] = []
    xs: List[float] = []
    ys: List[float] = []

    def flush() -> None:
        if not ids:
            return
        idx = np.asarray(ids, dtype=np.int64)
        ok = (idx >= 0) & (idx < n)
        x[idx[ok]] = np.asarray(xs, dtype=np.float64)[ok]
        y[idx[ok]] = np.asarray(ys, dtype=np.float64)[ok]
        ids.clear()
        xs.clear()
        ys.clear()

    with open_dimacs(co_path) as stream:
        for line in stream:
            parts = line.split()
            if not parts or parts[0] != "v":
                continue
            ids.append(int(parts[1]) - 1)
            xs.append(float(parts[2]))
            ys.append(float(parts[3]))
            if len(ids) >= chunk:
                flush()
    flush()


def _largest_component_mask(
    vertex_start: np.ndarray, edge_target: np.ndarray, edge_weight: np.ndarray
) -> Tuple[Optional[np.ndarray], int]:
    """``(keep_mask, n_components)``; mask is None when already connected."""
    n = len(vertex_start) - 1
    matrix = csr_matrix(
        (np.asarray(edge_weight), np.asarray(edge_target), np.asarray(vertex_start)),
        shape=(n, n),
    )
    n_components, labels = connected_components(matrix, directed=False)
    if n_components <= 1:
        return None, n_components
    largest = int(np.argmax(np.bincount(labels)))
    return labels == largest, n_components


def _restrict_arcs(
    arcs: np.ndarray,
    m: int,
    keep: np.ndarray,
    remap: np.ndarray,
    tmp: Path,
    block: int,
) -> Tuple[np.ndarray, int]:
    """Filter + renumber the sorted arc stream to the kept component.

    The remap is monotonic (a prefix sum over ``keep``), so the output
    stays sorted by (u, v) and feeds :func:`_fill_csr` directly.
    """
    out = np.lib.format.open_memmap(
        tmp / "arcs-lcc.npy", mode="w+", dtype=ARC_DTYPE, shape=(max(m, 1),)
    )
    m2 = 0
    for i in range(0, m, block):
        chunk = arcs[i : min(i + block, m)]
        u, v = np.asarray(chunk["u"]), np.asarray(chunk["v"])
        ok = keep[u] & keep[v]
        rows = int(ok.sum())
        if rows == 0:
            continue
        sel = out[m2 : m2 + rows]
        sel["u"] = remap[u[ok]]
        sel["v"] = remap[v[ok]]
        sel["w"] = np.asarray(chunk["w"])[ok]
        m2 += rows
    return out, m2


def _compress(src: np.ndarray, keep: np.ndarray, out: np.ndarray, block: int) -> None:
    """``out = src[keep]`` without materialising either side at once."""
    pos = 0
    for i in range(0, len(src), block):
        part = np.asarray(src[i : i + block])[keep[i : i + block]]
        out[pos : pos + len(part)] = part
        pos += len(part)


def ingest_dimacs(
    gr_path,
    co_path=None,
    store=None,
    *,
    name: Optional[str] = None,
    memory_budget_mb: float = 512.0,
    restrict_to_lcc: bool = True,
    tmp_dir=None,
) -> IngestReport:
    """Stream a DIMACS graph into a store ``graph`` artifact.

    ``store`` is an :class:`repro.store.IndexStore`; open it with
    ``format="flat"`` for the zero-copy serving path (any format works —
    the knob only changes the payload written).  ``memory_budget_mb``
    bounds the ingest's own working set: parse chunks, spill-run sizes
    and every vectorised block derive from it.  Scratch runs live in a
    temporary directory (``tmp_dir`` or the system default) and are
    removed on return.

    Returns an :class:`IngestReport`; load the result with
    ``Graph.from_store_mmap(store, report.key)``.
    """
    if store is None:
        raise ValueError("ingest_dimacs requires a store to write into")
    started = time.perf_counter()
    chunk = _chunk_rows(memory_budget_mb)
    block = _block_rows(memory_budget_mb)
    tmp = Path(tempfile.mkdtemp(prefix="repro-ingest-", dir=tmp_dir))
    try:
        n, arcs_read, runs = _parse_arcs(gr_path, tmp, chunk)
        if not runs:
            raise ValueError(f"no arcs found in {gr_path}")
        arcs, m = _merge_runs(runs, tmp, block)
        vertex_start, edge_target, edge_weight = _fill_csr(
            n, arcs, m, tmp, "", block
        )
        x, y = _default_coords(n, tmp, "", block)
        if co_path is not None:
            _apply_coords(co_path, x, y, chunk)
        components_dropped = 0
        if restrict_to_lcc:
            keep, n_components = _largest_component_mask(
                vertex_start, edge_target, edge_weight
            )
            if keep is not None:
                components_dropped = n_components - 1
                remap = np.cumsum(keep, dtype=np.int64) - 1
                arcs, m = _restrict_arcs(arcs, m, keep, remap, tmp, block)
                n2 = int(keep.sum())
                vertex_start, edge_target, edge_weight = _fill_csr(
                    n2, arcs, m, tmp, "-lcc", block
                )
                x2, y2 = _default_coords(n2, tmp, "-lcc", block)
                _compress(x, keep, x2, block)
                _compress(y, keep, y2, block)
                x, y, n = x2, y2, n2
        graph = Graph(
            vertex_start,
            edge_target,
            edge_weight,
            x,
            y,
            name=name or Path(str(gr_path)).name,
            weight_kind="distance",
        )
        from repro.store.artifacts import save_graph

        info = save_graph(store, graph)
        return IngestReport(
            key=info.key,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            arcs_read=arcs_read,
            runs_spilled=len(runs),
            restricted_to_lcc=restrict_to_lcc,
            components_dropped=components_dropped,
            ingest_time_s=time.perf_counter() - started,
            artifact_nbytes=info.nbytes,
            artifact_mapped_nbytes=info.mapped_nbytes,
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
