"""Synthetic road-network generators.

The paper evaluates on ten DIMACS US road networks (48k-24M vertices,
Table 1).  Those datasets are not shipped here and pure-Python query
processing could not exercise them faithfully anyway, so this module
generates scaled-down networks that preserve the structural properties
the studied algorithms are actually sensitive to:

* **planar, degree-bounded topology** (grid/Delaunay hybrids),
* **degree-2 chains** — the paper reports ~30% degree-2 vertices on US
  networks and 95% on the NA highway network (Appendix A.1.2); the
  generator can subdivide edges to any chain fraction,
* **density gradients** — cities with dense local streets connected by
  sparse inter-city roads, so uniformly sampled objects cluster like POIs,
* **two weight kinds** — travel distance (weight >= Euclidean length, so
  Euclidean distance is a tight lower bound) and travel time (distance
  divided by a road-class speed, making the Euclidean bound loose — the
  effect Section 7.5 studies).

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.spatial import Delaunay

from repro.graph.graph import Graph, GraphBuilder, largest_connected_component

#: Road classes: (probability, speed) pairs used for travel-time weights.
#: Speeds are relative (local street = 1.0); motorways are 4x faster.
ROAD_CLASSES: Tuple[Tuple[float, float], ...] = (
    (0.70, 1.0),   # local street
    (0.20, 1.8),   # secondary road
    (0.08, 2.8),   # primary road
    (0.02, 4.0),   # motorway
)


def grid_network(
    width: int,
    height: int,
    seed: int = 0,
    weight_jitter: float = 0.3,
    drop_fraction: float = 0.1,
    name: Optional[str] = None,
) -> Graph:
    """Rectangular grid with jittered coordinates and random edge removal.

    Edge weights equal the Euclidean edge length scaled by a jitter factor
    ``>= 1`` so Euclidean distance stays a valid lower bound.
    """
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()
    jitter = rng.uniform(-0.25, 0.25, size=(width * height, 2))
    for r in range(height):
        for c in range(width):
            i = r * width + c
            builder.add_vertex(c + jitter[i, 0], r + jitter[i, 1])

    candidate_edges: List[Tuple[int, int]] = []
    for r in range(height):
        for c in range(width):
            i = r * width + c
            if c + 1 < width:
                candidate_edges.append((i, i + 1))
            if r + 1 < height:
                candidate_edges.append((i, i + width))

    keep = rng.random(len(candidate_edges)) >= drop_fraction
    # Guarantee connectivity with a spanning backbone: keep every edge in
    # row 0 and column 0 regardless of the drop coin flips.
    for idx, (u, v) in enumerate(candidate_edges):
        if u < width or u % width == 0:
            keep[idx] = True
    for (u, v), kept in zip(candidate_edges, keep):
        if not kept:
            continue
        length = math.hypot(
            builder._xs[u] - builder._xs[v], builder._ys[u] - builder._ys[v]
        )
        w = length * (1.0 + float(rng.random()) * weight_jitter)
        builder.add_edge(u, v, w)
    graph = builder.build(
        name=name or f"grid-{width}x{height}", require_connected=False
    )
    return largest_connected_component(graph)


def delaunay_network(
    num_vertices: int,
    seed: int = 0,
    keep_fraction: float = 0.75,
    weight_jitter: float = 0.3,
    name: Optional[str] = None,
) -> Graph:
    """Delaunay triangulation of random points, thinned to road density.

    Triangulations are too dense for road networks (average degree ~6), so
    a ``keep_fraction`` of non-tree edges is retained on top of a minimum
    spanning backbone built from the triangulation edges.
    """
    if num_vertices < 3:
        raise ValueError("need at least 3 vertices for a triangulation")
    rng = np.random.default_rng(seed)
    points = rng.random((num_vertices, 2)) * math.sqrt(num_vertices)
    tri = Delaunay(points)
    edges = set()
    for simplex in tri.simplices:
        for a in range(3):
            u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
            edges.add((min(u, v), max(u, v)))

    # Kruskal spanning tree to guarantee connectivity.
    parent = list(range(num_vertices))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    edge_list = sorted(
        edges,
        key=lambda e: math.hypot(
            points[e[0], 0] - points[e[1], 0], points[e[0], 1] - points[e[1], 1]
        ),
    )
    tree = set()
    for u, v in edge_list:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.add((u, v))

    builder = GraphBuilder()
    for x, y in points:
        builder.add_vertex(float(x), float(y))
    for u, v in edge_list:
        if (u, v) not in tree and rng.random() > keep_fraction:
            continue
        length = math.hypot(
            points[u, 0] - points[v, 0], points[u, 1] - points[v, 1]
        )
        w = length * (1.0 + float(rng.random()) * weight_jitter)
        builder.add_edge(u, v, w)
    return builder.build(name=name or f"delaunay-{num_vertices}")


def road_network(
    num_vertices: int,
    seed: int = 0,
    num_cities: Optional[int] = None,
    chain_fraction: float = 0.3,
    name: Optional[str] = None,
) -> Graph:
    """"Country"-style network: dense city cores, sparse countryside.

    This is the default stand-in for the DIMACS datasets.  Vertices are
    sampled from a mixture of city Gaussians (70%) and a uniform rural
    background (30%), triangulated and thinned like
    :func:`delaunay_network`, then ``chain_fraction`` of the vertices are
    inserted as degree-2 chain vertices by subdividing random edges —
    matching the paper's observation that ~30% of US vertices are degree-2.

    The returned graph carries travel-*distance* weights; use
    :func:`travel_time_weights` for the travel-time variant.
    """
    if num_vertices < 10:
        raise ValueError("road networks need at least 10 vertices")
    rng = np.random.default_rng(seed)
    n_chain = int(num_vertices * chain_fraction)
    n_base = max(4, num_vertices - n_chain)
    if num_cities is None:
        num_cities = max(2, int(math.sqrt(n_base) / 4))
    extent = math.sqrt(num_vertices) * 2.0

    n_city_vertices = int(n_base * 0.7)
    centers = rng.random((num_cities, 2)) * extent
    city_sizes = rng.multinomial(
        n_city_vertices, rng.dirichlet(np.ones(num_cities) * 2.0)
    )
    points: List[Tuple[float, float]] = []
    for center, size in zip(centers, city_sizes):
        sigma = extent / (num_cities * 4.0) + 0.1
        pts = rng.normal(loc=center, scale=sigma, size=(size, 2))
        points.extend((float(px), float(py)) for px, py in pts)
    rural = rng.random((n_base - len(points), 2)) * extent
    points.extend((float(px), float(py)) for px, py in rural)
    arr = np.asarray(points)
    # Deduplicate near-coincident points, which break Delaunay.
    arr += rng.normal(scale=1e-6, size=arr.shape)

    tri = Delaunay(arr)
    edges = set()
    for simplex in tri.simplices:
        for a in range(3):
            u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
            edges.add((min(u, v), max(u, v)))

    parent = list(range(len(arr)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def length_of(e: Tuple[int, int]) -> float:
        return math.hypot(arr[e[0], 0] - arr[e[1], 0], arr[e[0], 1] - arr[e[1], 1])

    edge_list = sorted(edges, key=length_of)
    tree = set()
    for u, v in edge_list:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.add((u, v))

    builder = GraphBuilder()
    for x, y in arr:
        builder.add_vertex(float(x), float(y))
    final_edges: List[Tuple[int, int, float]] = []
    for u, v in edge_list:
        # Long non-tree edges are dropped more aggressively: countryside is
        # sparse, cities are dense.
        if (u, v) not in tree:
            p_keep = 0.8 * math.exp(-length_of((u, v)) / (extent * 0.05))
            if rng.random() > p_keep:
                continue
        length = length_of((u, v))
        w = length * (1.0 + float(rng.random()) * 0.25)
        final_edges.append((u, v, w))

    # Subdivide random edges with chain vertices until the target size.
    # Midpoints sit on the segment with a small perpendicular offset
    # (bounded by the edge length) and half-weights stay >= their
    # Euclidean lengths, so the Euclidean distance remains a *tight*
    # lower bound — the property IER relies on for distance weights.
    rng_edges = list(final_edges)
    while builder.num_vertices < num_vertices and rng_edges:
        idx = int(rng.integers(len(rng_edges)))
        u, v, w = rng_edges.pop(idx)
        ux, uy = builder._xs[u], builder._ys[u]
        vx, vy = builder._xs[v], builder._ys[v]
        seg_len = math.hypot(vx - ux, vy - uy)
        offset = float(rng.normal(scale=0.08)) * seg_len
        # Perpendicular direction to the segment.
        if seg_len > 0:
            px, py = -(vy - uy) / seg_len, (vx - ux) / seg_len
        else:
            px = py = 0.0
        mx = (ux + vx) / 2 + px * offset
        my = (uy + vy) / 2 + py * offset
        mid = builder.add_vertex(mx, my)
        len1 = math.hypot(mx - ux, my - uy)
        len2 = math.hypot(vx - mx, vy - my)
        total = len1 + len2 or 1.0
        half1 = max(w * len1 / total, len1)
        half2 = max(w * len2 / total, len2)
        final_edges.remove((u, v, w))
        final_edges.append((u, mid, half1))
        final_edges.append((mid, v, half2))
        rng_edges.append((u, mid, half1))
        rng_edges.append((mid, v, half2))

    for u, v, w in final_edges:
        builder.add_edge(u, v, w)
    graph = builder.build(
        name=name or f"road-{num_vertices}", require_connected=False
    )
    return largest_connected_component(graph)


def travel_time_weights(graph: Graph, seed: int = 0) -> Graph:
    """Travel-time variant of ``graph`` using road-class speeds.

    Each undirected edge is assigned a road class; its time weight is
    ``distance / speed``.  Long edges are biased towards faster classes
    (inter-city edges behave like highways), reproducing the "highway
    hierarchy" property that makes CH/TNR/labelling techniques faster on
    travel-time graphs (Section 7.5, Appendix B).
    """
    rng = np.random.default_rng(seed + 7919)
    probs = np.array([p for p, _ in ROAD_CLASSES])
    speeds = np.array([s for _, s in ROAD_CLASSES])
    n = graph.num_vertices
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.vertex_start))
    median_w = float(np.median(graph.edge_weight)) or 1.0

    # Choose one class per undirected edge, keyed on the (u, v) pair so
    # both directions agree.
    new_weights = np.empty_like(graph.edge_weight)
    chosen: Dict[Tuple[int, int], float] = {}
    for i in range(len(graph.edge_target)):
        u, v = int(sources[i]), int(graph.edge_target[i])
        key = (u, v) if u < v else (v, u)
        speed = chosen.get(key)
        if speed is None:
            w = graph.edge_weight[i]
            # Bias: edges longer than the median get a boost towards
            # faster classes.
            boost = min(3, int(w / median_w))
            weights = probs.copy()
            weights[: len(weights) - 1] /= 1.0 + boost
            weights /= weights.sum()
            cls = rng.choice(len(speeds), p=weights)
            speed = float(speeds[cls])
            chosen[key] = speed
        new_weights[i] = graph.edge_weight[i] / speed
    return graph.with_weights(new_weights, "time")


#: Scaled stand-ins for the paper's Table 1 datasets.  Sizes chosen so the
#: full suite remains tractable in pure Python while spanning >1.5 orders
#: of magnitude like the paper's 48k..24M range.
SCALED_SUITE: Tuple[Tuple[str, int], ...] = (
    ("S-DE", 1000),
    ("S-VT", 2000),
    ("S-ME", 3000),
    ("S-CO", 5000),
    ("S-NW", 8000),
    ("S-CA", 12000),
    ("S-E", 16000),
    ("S-W", 20000),
    ("S-C", 26000),
    ("S-US", 32000),
)


def scaled_network_suite(
    max_vertices: Optional[int] = None, seed: int = 42
) -> Dict[str, Graph]:
    """Build the scaled dataset suite (Table 1 analogue).

    ``max_vertices`` limits the suite for cheap test/benchmark runs.
    """
    suite = {}
    for name, size in SCALED_SUITE:
        if max_vertices is not None and size > max_vertices:
            continue
        suite[name] = road_network(size, seed=seed + size, name=name)
    return suite


def chain_heavy_network(
    num_vertices: int, seed: int = 0, chain_fraction: float = 0.95
) -> Graph:
    """Highway-style network where most vertices are degree-2 chains.

    Stand-in for the North-America highway dataset used in Appendix A.1.2
    (95% degree-2 vertices) to demonstrate the chain optimisation.
    """
    return road_network(
        num_vertices,
        seed=seed,
        chain_fraction=chain_fraction,
        name=f"chain-heavy-{num_vertices}",
    )
