"""Reusable per-graph SSSP scratch buffers with generation-stamp reset.

``dijkstra_distance``-style loops used to allocate a fresh
``np.full(V, inf)`` distance array plus a settled container on *every*
query.  :class:`SSSPScratch` preallocates both once per (graph, thread)
and replaces the O(V) clear with an O(1) generation bump: an entry is
valid only when its stamp equals the current generation, so stale values
from earlier queries are invisible without ever being rewritten.

Thread safety: buffers are pooled per thread (server workers sharing one
engine never race on a scratch), and :func:`borrow` hands out a fresh
unpooled buffer on re-entrant use within a thread rather than corrupting
the one in flight.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager

import numpy as np


class SSSPScratch:
    """Distance + settled arrays valid only at the current generation.

    Usage inside a Dijkstra loop::

        gen = scratch.begin()
        dist, stamp, settled = scratch.dist, scratch.stamp, scratch.settled
        dist[s] = 0.0; stamp[s] = gen
        ...
        if settled[u] == gen: continue      # already settled this query
        settled[u] = gen
        ...
        if stamp[v] != gen or nd < dist[v]: # inf without initialising
            dist[v] = nd; stamp[v] = gen
    """

    __slots__ = ("n", "dist", "stamp", "settled", "gen", "in_use")

    def __init__(self, n: int) -> None:
        self.n = n
        self.dist = np.empty(n, dtype=np.float64)
        self.stamp = np.zeros(n, dtype=np.int64)
        self.settled = np.zeros(n, dtype=np.int64)
        self.gen = 0
        self.in_use = False

    def begin(self) -> int:
        """Start a new query: bump and return the generation stamp."""
        self.gen += 1
        return self.gen


_tls = threading.local()


def _pool() -> "weakref.WeakKeyDictionary":
    pool = getattr(_tls, "pool", None)
    if pool is None:
        pool = _tls.pool = weakref.WeakKeyDictionary()
    return pool


@contextmanager
def borrow(graph):
    """This thread's scratch for ``graph`` (fresh if re-entered).

    The pooled buffer is keyed weakly on the graph object, so dropping
    the graph drops its scratch.  Repeated queries on the same graph from
    the same thread reuse one allocation — the property the kernel
    benchmark's allocation counters assert.
    """
    pool = _pool()
    scratch = pool.get(graph)
    n = graph.num_vertices
    if scratch is None or scratch.n != n:
        scratch = SSSPScratch(n)
        pool[graph] = scratch
    if scratch.in_use:  # re-entrant caller: do not corrupt the outer query
        yield SSSPScratch(n)
        return
    scratch.in_use = True
    try:
        yield scratch
    finally:
        scratch.in_use = False
