"""Vectorised edge relaxation over CSR adjacency slices.

The inner loop of every Dijkstra-style expansion is "for each edge out of
u: maybe improve dist and push".  The python kernel iterates edges one at
a time; the array kernel gathers u's whole CSR slice and performs the
candidate distances, the improvement mask and the distance writeback as
numpy operations, feeding the survivors to :meth:`ArrayHeap.push_many`
in one call.  On degree-bounded road networks the batch is small, so this
is about latency parity per vertex — the decisive wins come from the
whole-frontier kernels in :mod:`repro.kernels.sssp` — but it is the form
the frontier loops that *cannot* hand control to scipy (G-tree's leaf
search, restricted subgraph searches) use to stay array-native.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.heap import ArrayHeap


def relax_edges(
    indptr: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    u: int,
    d: float,
    dist: np.ndarray,
    heap: ArrayHeap,
) -> int:
    """Relax every edge out of ``u`` in one vectorised step.

    ``dist`` is the tentative-distance array (``inf`` for untouched
    vertices); improved entries are written back and pushed.  Returns the
    number of improvements (for instrumentation).
    """
    lo, hi = indptr[u], indptr[u + 1]
    if lo == hi:
        return 0
    t = targets[lo:hi]
    nd = d + weights[lo:hi]
    better = nd < dist[t]
    if not better.any():
        return 0
    sel = t[better]
    nds = nd[better]
    dist[sel] = nds
    heap.push_many(nds, sel)
    return int(len(sel))


def sssp_arrayheap(
    indptr: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    source: int,
    n: int,
    cutoff: float = float("inf"),
) -> np.ndarray:
    """Reference array-native SSSP: ArrayHeap + vectorised relaxation.

    Used by the kernel tests as a third implementation triangulating the
    python loop and the scipy kernel, and by small-subgraph searches
    where per-call scipy overhead dominates.  Returns exact distances for
    every vertex settled at ``<= cutoff`` (``inf`` elsewhere).
    """
    dist = np.full(n, np.inf)
    done = np.zeros(n, dtype=bool)
    out = np.full(n, np.inf)
    heap = ArrayHeap()
    dist[source] = 0.0
    heap.push(0.0, source)
    while heap:
        d, u = heap.pop()
        if done[u]:
            continue
        if d > cutoff:
            break
        done[u] = True
        out[u] = d
        relax_edges(indptr, targets, weights, u, d, dist, heap)
    return out
