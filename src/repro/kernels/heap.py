"""``ArrayHeap`` — an allocation-free priority queue for array kernels.

The paper's Section 6.2 heap study ends at "binary heap without
decrease-key over boxed entries".  ``ArrayHeap`` goes one rung further:
no tuples and no per-push sequence counter.  Each entry is a single
machine word packing a ``float64`` key and an ``int32``-range payload:

    word = (key_bits << 32) | payload

For non-negative IEEE-754 doubles the raw bit pattern is monotone, so
integer comparison on the packed word orders entries by key, with the
payload as a deterministic tie-break (smaller payload first) — no
sequence counter, no comparable-item requirement, and stale duplicates
are tolerated exactly like :class:`~repro.utils.pqueue.BinaryHeap`.

Storage is a flat word array driven by CPython's C ``heapq`` sift
routines, with the amortised-doubling growth the paper's preallocated
queues rely on.  (We profiled the obvious alternative — parallel numpy
key/payload arrays with Python-level sift loops — at ~10x slower per
operation, because every comparison crosses the scalar-boxing boundary;
picking the representation by measurement over dogma is the paper's own
methodology.)  Bulk insertion (:meth:`push_many`) packs the whole batch
with vectorised numpy ops, which is what the vectorised edge-relaxation
kernel feeds.

Keys must be non-negative and not NaN (network distances always are);
payloads must fit an unsigned 32-bit integer.
"""

from __future__ import annotations

import struct
from heapq import heapify, heappop, heappush
from typing import List, Tuple

import numpy as np

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")
_MASK32 = 0xFFFFFFFF
_MAX_ITEM = 1 << 32


def _pack(key: float, item: int) -> int:
    if key < 0.0 or key != key:
        raise ValueError(f"ArrayHeap keys must be non-negative, got {key!r}")
    if not 0 <= item < _MAX_ITEM:
        raise ValueError(f"ArrayHeap payloads must fit uint32, got {item!r}")
    (bits,) = _U64.unpack(_F64.pack(key))
    return (bits << 32) | item


class ArrayHeap:
    """Min-heap of ``(float64 key, int32-range payload)`` packed words."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[int] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: float, item: int) -> None:
        heappush(self._heap, _pack(key, item))

    def push_many(self, keys: np.ndarray, items: np.ndarray) -> None:
        """Bulk-push vectorised: pack the batch in numpy, sift in C.

        ``keys`` is any float array, ``items`` any int array of the same
        length — typically the masked outputs of one vectorised edge
        relaxation.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if len(keys) == 0:
            return
        if keys.min() < 0.0 or np.isnan(keys).any():
            raise ValueError("ArrayHeap keys must be non-negative")
        items = np.asarray(items)
        if len(items) != len(keys):
            raise ValueError("keys and items must have the same length")
        if items.min() < 0 or items.max() >= _MAX_ITEM:
            raise ValueError("ArrayHeap payloads must fit uint32")
        bits = keys.view(np.uint64).tolist()
        heap = self._heap
        if len(keys) > max(4, len(heap)):
            # Batch dominates: append everything, one C heapify pass.
            heap.extend(
                (b << 32) | it for b, it in zip(bits, items.tolist())
            )
            heapify(heap)
        else:
            for b, it in zip(bits, items.tolist()):
                heappush(heap, (b << 32) | it)

    def pop(self) -> Tuple[float, int]:
        """Remove and return the ``(key, item)`` pair with smallest key."""
        word = heappop(self._heap)
        return _F64.unpack(_U64.pack(word >> 32))[0], word & _MASK32

    def pop_item(self) -> int:
        """Pop, returning only the payload (skips key decoding)."""
        return heappop(self._heap) & _MASK32

    def peek(self) -> Tuple[float, int]:
        word = self._heap[0]
        return _F64.unpack(_U64.pack(word >> 32))[0], word & _MASK32

    def peek_key(self) -> float:
        """Smallest key, or infinity when empty (``Front(Q)``)."""
        if not self._heap:
            return float("inf")
        return _F64.unpack(_U64.pack(self._heap[0] >> 32))[0]

    def clear(self) -> None:
        self._heap.clear()
