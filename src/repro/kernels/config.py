"""The kernel knob: ``"python"`` vs ``"array"`` hot-path implementations.

Every query algorithm and index builder in this library exists in two
implementations that compute *identical results*:

``python``
    The reference per-edge Python loops — the top rung ("Graph") of the
    paper's Figure 7 implementation ladder, kept byte-for-byte so the
    ablation stays reproducible and every array-kernel result can be
    cross-checked against it.
``array``
    Allocation-free, array-native kernels one rung *above* the paper's
    ladder: preallocated heaps and scratch buffers, vectorised edge
    relaxation over CSR slices, and C-level whole-frontier expansion
    (:mod:`scipy.sparse.csgraph`) where the control flow allows it.

The engine resolves ``kernel=None`` to :data:`DEFAULT_KERNEL` (``array``),
overridable per process with the ``REPRO_KERNEL`` environment variable —
e.g. ``REPRO_KERNEL=python pytest`` runs the whole suite on the reference
kernels.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

#: The two kernel implementations every knob accepts.
KERNELS: Tuple[str, ...] = ("python", "array")

#: Kernel used when a knob is left at ``None`` (no environment override).
DEFAULT_KERNEL = "array"


def default_kernel() -> str:
    """The process-wide default kernel (``REPRO_KERNEL`` wins)."""
    env = os.environ.get("REPRO_KERNEL", "").strip()
    if env:
        if env not in KERNELS:
            raise ValueError(
                f"REPRO_KERNEL={env!r} is not a kernel; choose from "
                f"{', '.join(KERNELS)}"
            )
        return env
    return DEFAULT_KERNEL


def resolve_kernel(kernel: Optional[str]) -> str:
    """Validate ``kernel``, resolving ``None`` to the default."""
    if kernel is None:
        return default_kernel()
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {', '.join(KERNELS)}"
        )
    return kernel
