"""Array-native hot-path kernels.

This package is the rung *above* the paper's Section 6.2 implementation
ladder: where the paper stops at "flat CSR arrays + binary heap without
decrease-key", these kernels remove the remaining per-edge interpreter
and allocation overhead:

* :class:`ArrayHeap` — packed-word priority queue; float64 keys, int32
  payloads, no tuple allocation, no per-push sequence counter
  (:mod:`repro.kernels.heap`).
* :class:`SSSPScratch` / :func:`borrow` — preallocated distance/settled
  buffers with generation-stamp reset, so repeated queries on one graph
  allocate nothing (:mod:`repro.kernels.scratch`).
* :func:`relax_edges` — vectorised edge relaxation over a CSR neighbor
  slice with bulk heap insertion (:mod:`repro.kernels.relax`).
* Whole-frontier kernels — :func:`p2p_distance`, :func:`sssp_bounded`,
  :func:`distances_to_targets`, :func:`nearest_objects` — run the entire
  expansion at C speed with an expanding radius limit and
  settle-equivalent counters (:mod:`repro.kernels.sssp`).
* :func:`bulk_sssp` — the multi-source distance-matrix kernel index
  builders fan preprocessing out over (re-exported from
  :mod:`repro.pathfinding.bulk`).

Every algorithm exposes the implementations behind a
``kernel="python" | "array"`` knob (:func:`resolve_kernel`; engine
default ``array``) and both kernels compute identical answers with
identical settled-vertex counters — asserted by the property tests and
the ``perf-smoke`` CI job, so the fast path can never silently drift
from the reference path.
"""

from repro.kernels.config import (
    DEFAULT_KERNEL,
    KERNELS,
    default_kernel,
    resolve_kernel,
)
from repro.kernels.heap import ArrayHeap
from repro.kernels.relax import relax_edges, sssp_arrayheap
from repro.kernels.scratch import SSSPScratch, borrow
from repro.kernels.sssp import (
    distances_to_targets,
    nearest_objects,
    p2p_distance,
    prepared_objects,
    sssp_bounded,
    sssp_distances,
)
from repro.pathfinding.bulk import bulk_sssp

__all__ = [
    "ArrayHeap",
    "SSSPScratch",
    "borrow",
    "relax_edges",
    "sssp_arrayheap",
    "p2p_distance",
    "sssp_bounded",
    "sssp_distances",
    "distances_to_targets",
    "nearest_objects",
    "prepared_objects",
    "bulk_sssp",
    "resolve_kernel",
    "default_kernel",
    "DEFAULT_KERNEL",
    "KERNELS",
]
