"""Whole-frontier SSSP kernels (C-level Dijkstra over the CSR arrays).

The python kernels run the Dijkstra loop one vertex at a time in the
interpreter.  When the control flow does not need to observe individual
settles — point-to-point distance, bounded SSSP, k-nearest-object search
— the entire expansion can instead run inside
``scipy.sparse.csgraph.dijkstra`` over :meth:`Graph.to_csr_matrix`, with
a geometrically expanding radius limit so the kernel settles roughly the
same region the python loop would, not the whole network.

Settled-vertex accounting
-------------------------
The python kernels count every vertex they settle.  These kernels report
the *settle-equivalent* count: the number of vertices whose distance does
not exceed the query's stopping distance, which is exactly the python
kernel's count whenever no two vertices sit at the same distance (the
stopping vertex is then the unique last settle).  On real-valued road
networks exact distance ties have measure zero; the cross-kernel
regression guard in ``tests/test_kernels.py`` and ``bench_kernels.py``
asserts equality on every graph it touches, so a divergence cannot slip
through silently.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.graph.graph import Graph
from repro.resilience.faults import fault_check
from repro.utils.counters import Counters, NULL_COUNTERS

INF = float("inf")

#: Radius growth factor between expansion rounds.  Doubling bounds the
#: total work at ~2.3x the final round on planar networks (settled area
#: grows ~quadratically with radius, so earlier rounds are geometric).
_GROWTH = 2.0


def _fallback_radius(graph: Graph) -> float:
    """A positive seed radius when the Euclidean bound degenerates to 0."""
    mean_w = float(np.mean(graph.edge_weight)) if len(graph.edge_weight) else 1.0
    return max(mean_w * 4.0, 1e-12)


def sssp_distances(
    graph: Graph, source: int, limit: float = INF
) -> np.ndarray:
    """Exact distances from ``source`` to every vertex within ``limit``.

    Vertices further than ``limit`` report ``inf`` (the python kernel's
    bounded SSSP leaves tentative frontier values there instead — callers
    must only rely on entries at or below the cutoff).
    """
    # Every array-kernel SSSP flow (p2p, bounded, targets, nearest
    # objects) funnels through here, so one fault point covers them all.
    fault_check("kernel.sssp")
    matrix = graph.to_csr_matrix()
    if np.isfinite(limit):
        return _csgraph_dijkstra(matrix, directed=True, indices=source, limit=limit)
    return _csgraph_dijkstra(matrix, directed=True, indices=source)


def _expand(graph: Graph, source: int, radius: float, done) -> np.ndarray:
    """Run expansion rounds until ``done(dist)`` or the sweep was full.

    ``done`` receives the distance array of the current round and returns
    True to stop.  The final round always runs unbounded, so ``done``
    never succeeding (an unreachable target) still terminates with the
    full SSSP.
    """
    radius = radius if radius > 0 and np.isfinite(radius) else _fallback_radius(graph)
    for _ in range(48):
        dist = sssp_distances(graph, source, limit=radius)
        if done(dist):
            return dist
        radius *= _GROWTH
    return sssp_distances(graph, source)


def p2p_distance(
    graph: Graph,
    source: int,
    target: int,
    counters: Counters = NULL_COUNTERS,
) -> float:
    """Point-to-point distance; counts settle-equivalents as
    ``dijkstra_settled`` exactly like the python kernel."""
    if source == target:
        return 0.0
    seed = graph.euclidean_lower_bound(source, target) * 4.0
    dist = _expand(graph, source, seed, lambda d: np.isfinite(d[target]))
    d = float(dist[target])
    if np.isfinite(d):
        counters.add("sssp_settled", int(np.count_nonzero(dist <= d)))
        return d
    counters.add("sssp_settled", int(np.count_nonzero(np.isfinite(dist))))
    return INF


def sssp_bounded(
    graph: Graph,
    source: int,
    cutoff: float = INF,
    counters: Counters = NULL_COUNTERS,
) -> np.ndarray:
    """Full/bounded SSSP distance array plus settle accounting."""
    dist = sssp_distances(graph, source, limit=cutoff)
    counters.add("sssp_settled", int(np.count_nonzero(np.isfinite(dist))))
    return dist


def distances_to_targets(
    graph: Graph,
    source: int,
    targets: Iterable[int],
    counters: Counters = NULL_COUNTERS,
) -> Dict[int, float]:
    """Distances from ``source`` to each target; expansion stops early."""
    remaining = sorted(set(int(t) for t in targets))
    out: Dict[int, float] = {}
    if source in remaining:
        out[source] = 0.0
        remaining.remove(source)
    if not remaining:
        return out
    idx = np.asarray(remaining, dtype=np.int64)
    de = np.hypot(graph.x[idx] - graph.x[source], graph.y[idx] - graph.y[source])
    seed = float(de.max()) / graph.max_speed() * 2.0
    dist = _expand(
        graph, source, seed, lambda d: bool(np.isfinite(d[idx]).all())
    )
    td = dist[idx]
    finite = np.isfinite(td)
    if finite.all():
        dmax = float(td.max())
        counters.add("sssp_settled", int(np.count_nonzero(dist <= dmax)))
    else:
        counters.add(
            "sssp_settled", int(np.count_nonzero(np.isfinite(dist)))
        )
    for t, d in zip(remaining, td):
        out[t] = float(d) if np.isfinite(d) else INF
    return out


def nearest_objects(
    graph: Graph,
    objects: np.ndarray,
    query: int,
    k: int,
    counters: Counters = NULL_COUNTERS,
    counter_name: str = "expand_settled",
) -> list:
    """The k network-nearest of ``objects`` from ``query`` (INE kernel).

    ``objects`` is a sorted, deduplicated int64 array.  Returns
    ``[(distance, vertex), ...]`` sorted by ``(distance, vertex)`` —
    byte-identical to the python INE kernel's finalised answer — and
    records the settle-equivalent count under ``counter_name``.
    """
    m = len(objects)
    if m == 0 or k <= 0 or k > m:
        # The python loop can never reach len(results) == k in these
        # cases, so it settles everything reachable before finishing.
        dist = sssp_distances(graph, query)
        counters.add(counter_name, int(np.count_nonzero(np.isfinite(dist))))
        if m == 0 or k <= 0:
            return []
        od = dist[objects]
        hits = np.flatnonzero(np.isfinite(od))
        order = np.lexsort((objects[hits], od[hits]))
        return [
            (float(od[hits[i]]), int(objects[hits[i]])) for i in order
        ]
    take = k
    de = np.hypot(
        graph.x[objects] - graph.x[query], graph.y[objects] - graph.y[query]
    )
    kth_euclid = float(np.partition(de, take - 1)[take - 1])
    seed = kth_euclid / graph.max_speed() * 2.0

    def enough(dist: np.ndarray) -> bool:
        # Every vertex within the round's radius limit has its exact
        # distance (shortest-path prefixes stay within the radius), so k
        # finite object distances mean the true k nearest are all known.
        return int(np.count_nonzero(np.isfinite(dist[objects]))) >= take

    dist = _expand(graph, query, seed, enough)
    od = dist[objects]
    finite_mask = np.isfinite(od)
    if int(np.count_nonzero(finite_mask)) >= take:
        idx = np.argpartition(od, take - 1)[:take]
        dk = float(od[idx].max())
        settled = int(np.count_nonzero(dist <= dk))
        order = np.lexsort((objects[idx], od[idx]))
        results = [
            (float(od[idx[i]]), int(objects[idx[i]])) for i in order
        ]
    else:
        # Fewer than k reachable objects: the python loop drains the
        # whole heap, settling every reachable vertex.
        settled = int(np.count_nonzero(np.isfinite(dist)))
        hits = np.flatnonzero(finite_mask)
        order = np.lexsort((objects[hits], od[hits]))
        results = [
            (float(od[hits[i]]), int(objects[hits[i]])) for i in order
        ]
    counters.add(counter_name, settled)
    return results


def prepared_objects(objects: Iterable[int]) -> np.ndarray:
    """Sorted unique object ids as the int64 array the kernels expect."""
    return np.unique(np.fromiter((int(o) for o in objects), dtype=np.int64))
