"""Experiment harness regenerating the paper's tables and figures.

Each ``figXX_*`` / ``tableX_*`` function reproduces one evaluation
artefact at laptop scale and returns an :class:`ExperimentResult` whose
series can be printed (``format_text``) or asserted on (the benchmark
suite checks the *shape* of each result against the paper: who wins, by
roughly what factor, where crossovers fall).
"""

from repro.experiments.runner import (
    ExperimentResult,
    Workbench,
    measure_query_time,
    random_queries,
)
from repro.experiments import cache_study, figures, tables

__all__ = [
    "ExperimentResult",
    "Workbench",
    "measure_query_time",
    "random_queries",
    "cache_study",
    "figures",
    "tables",
]
