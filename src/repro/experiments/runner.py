"""Workbench, workload generation and measurement plumbing.

``Workbench`` is the experiment harness's handle on one road network: a
thin subclass of the engine's :class:`~repro.engine.workbench.IndexCache`
(the lazily built, shared index collection), with method construction
delegated to the pluggable registry in :mod:`repro.engine.registry` —
mirroring the paper's "same subroutines for common tasks" methodology.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.registry import known_methods
from repro.engine.workbench import IndexCache
from repro.engine.workbench import SILC_MAX_VERTICES as _ENGINE_SILC_CAP
from repro.graph.graph import Graph
from repro.knn.base import KNNAlgorithm

#: Methods the harness knows how to construct (registry registration order).
METHOD_NAMES = tuple(known_methods())

#: Re-exported cap; kept as a module global so existing code (and tests)
#: can patch ``runner.SILC_MAX_VERTICES`` and see the Workbench react.
SILC_MAX_VERTICES = _ENGINE_SILC_CAP


class Workbench(IndexCache):
    """Lazily built index collection for one road network.

    All behaviour lives in :class:`IndexCache` and the method registry;
    this subclass only exists so harness code (and pickles/imports) keep
    a stable name, and so the SILC cap honours this module's
    ``SILC_MAX_VERTICES`` global.
    """

    def _silc_limit(self) -> int:
        return SILC_MAX_VERTICES


def random_queries(graph: Graph, count: int, seed: int = 0) -> np.ndarray:
    """Uniformly random query vertices (the paper's query workload)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, graph.num_vertices, size=count)


def measure_query_time(
    algorithm: KNNAlgorithm,
    queries: Sequence[int],
    k: int,
    repeats: int = 2,
) -> float:
    """Mean query time in microseconds over the workload.

    The minimum over ``repeats`` passes is reported, which suppresses
    cold-cache and GC noise (the paper averages 10,000 queries; we use
    fewer queries but repeated passes).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for q in queries:
            algorithm.knn(int(q), k)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / max(len(queries), 1) * 1e6


class ExperimentResult:
    """One figure/table worth of series.

    ``series`` maps a method/series name to a list of (x, y) points.
    """

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        series: Optional[Dict[str, List[Tuple[object, float]]]] = None,
    ) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: Dict[str, List[Tuple[object, float]]] = series or {}

    def add(self, name: str, x: object, y: float) -> None:
        self.series.setdefault(name, []).append((x, y))

    def ys(self, name: str) -> List[float]:
        return [y for _, y in self.series[name]]

    def at(self, name: str, x: object) -> float:
        for px, py in self.series[name]:
            if px == x:
                return py
        raise KeyError(f"{name} has no point at {x!r}")

    def mean(self, name: str) -> float:
        ys = self.ys(name)
        return sum(ys) / len(ys)

    def format_text(self) -> str:
        """Render as an aligned text table (x down, series across)."""
        xs: List[object] = []
        for points in self.series.values():
            for x, _ in points:
                if x not in xs:
                    xs.append(x)
        names = list(self.series)
        header = [self.x_label] + names
        rows = [header]
        lookup = {
            name: {x: y for x, y in points}
            for name, points in self.series.items()
        }
        for x in xs:
            row = [str(x)]
            for name in names:
                y = lookup[name].get(x)
                row.append("-" if y is None else f"{y:,.2f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [f"== {self.title} ({self.y_label}) =="]
        for r in rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExperimentResult({self.title!r}, series={list(self.series)})"
