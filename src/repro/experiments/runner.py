"""Workbench, workload generation and measurement plumbing.

``Workbench`` lazily builds and caches every road-network index for one
graph, and constructs any of the paper's kNN method instances by name —
the single entry point the figure functions and the benchmark suite use,
mirroring the paper's "same subroutines for common tasks" methodology.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.index.gtree import GTree, GTreeOracle
from repro.index.road import RoadIndex
from repro.index.silc import SILCIndex
from repro.knn.base import KNNAlgorithm
from repro.knn.distance_browsing import DistanceBrowsing
from repro.knn.gtree_knn import GTreeKNN
from repro.knn.ier import IER
from repro.knn.ine import INE
from repro.knn.road_knn import RoadKNN
from repro.pathfinding.astar import AStarOracle
from repro.pathfinding.ch import ContractionHierarchy
from repro.pathfinding.dijkstra import DijkstraOracle
from repro.pathfinding.hub_labels import HubLabels
from repro.pathfinding.tnr import TransitNodeRouting

#: Methods the harness knows how to construct.
METHOD_NAMES = (
    "ine",
    "gtree",
    "road",
    "disbrw",
    "disbrw-oh",
    "ier-dijk",
    "ier-astar",
    "ier-gt",
    "ier-phl",
    "ier-ch",
    "ier-tnr",
)

#: SILC requires all-pairs work; like the paper (which could build DisBrw
#: only on the five smallest datasets) we cap the network size it is
#: built for.
SILC_MAX_VERTICES = 9000


class Workbench:
    """Lazily built index collection for one road network."""

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        tau: Optional[int] = None,
        road_levels: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.seed = seed
        self._tau = tau
        self._road_levels = road_levels
        self._gtree: Optional[GTree] = None
        self._road: Optional[RoadIndex] = None
        self._silc: Optional[SILCIndex] = None
        self._ch: Optional[ContractionHierarchy] = None
        self._hub_labels: Optional[HubLabels] = None
        self._tnr: Optional[TransitNodeRouting] = None

    # ------------------------------------------------------------------
    @property
    def gtree(self) -> GTree:
        if self._gtree is None:
            self._gtree = GTree(self.graph, tau=self._tau, seed=self.seed)
        return self._gtree

    @property
    def road(self) -> RoadIndex:
        if self._road is None:
            self._road = RoadIndex(
                self.graph, levels=self._road_levels, seed=self.seed
            )
        return self._road

    @property
    def silc(self) -> SILCIndex:
        if self._silc is None:
            if self.graph.num_vertices > SILC_MAX_VERTICES:
                raise MemoryError(
                    f"SILC capped at {SILC_MAX_VERTICES} vertices "
                    f"(network has {self.graph.num_vertices}); the paper "
                    "hits the same wall on its five largest datasets"
                )
            self._silc = SILCIndex(self.graph)
        return self._silc

    @property
    def silc_available(self) -> bool:
        return self.graph.num_vertices <= SILC_MAX_VERTICES

    @property
    def ch(self) -> ContractionHierarchy:
        if self._ch is None:
            self._ch = ContractionHierarchy(self.graph)
        return self._ch

    @property
    def hub_labels(self) -> HubLabels:
        if self._hub_labels is None:
            order = list(np.argsort(-self.ch.rank))
            self._hub_labels = HubLabels(self.graph, order=order)
        return self._hub_labels

    @property
    def tnr(self) -> TransitNodeRouting:
        if self._tnr is None:
            self._tnr = TransitNodeRouting(self.graph, ch=self.ch)
        return self._tnr

    # ------------------------------------------------------------------
    def make(self, method: str, objects: Sequence[int], **kwargs) -> KNNAlgorithm:
        """Construct a kNN method instance by harness name."""
        if method == "ine":
            return INE(self.graph, objects, **kwargs)
        if method == "gtree":
            return GTreeKNN(self.gtree, objects, **kwargs)
        if method == "road":
            return RoadKNN(self.road, objects, **kwargs)
        if method == "disbrw":
            return DistanceBrowsing(self.silc, objects, **kwargs)
        if method == "disbrw-oh":
            return DistanceBrowsing(
                self.silc, objects, candidate_source="hierarchy", **kwargs
            )
        if method == "ier-dijk":
            return IER(self.graph, objects, DijkstraOracle(self.graph), **kwargs)
        if method == "ier-astar":
            return IER(self.graph, objects, AStarOracle(self.graph), **kwargs)
        if method == "ier-gt":
            return IER(self.graph, objects, GTreeOracle(self.gtree), **kwargs)
        if method == "ier-phl":
            return IER(self.graph, objects, self.hub_labels, **kwargs)
        if method == "ier-ch":
            return IER(self.graph, objects, self.ch, **kwargs)
        if method == "ier-tnr":
            return IER(self.graph, objects, self.tnr, **kwargs)
        raise ValueError(f"unknown method {method!r}")

    def available_methods(self, include_disbrw: bool = True) -> List[str]:
        """The paper's main-comparison methods buildable on this network."""
        methods = ["ine", "road", "gtree", "ier-gt", "ier-phl"]
        if include_disbrw and self.silc_available:
            methods.append("disbrw")
        return methods


def random_queries(graph: Graph, count: int, seed: int = 0) -> np.ndarray:
    """Uniformly random query vertices (the paper's query workload)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, graph.num_vertices, size=count)


def measure_query_time(
    algorithm: KNNAlgorithm,
    queries: Sequence[int],
    k: int,
    repeats: int = 2,
) -> float:
    """Mean query time in microseconds over the workload.

    The minimum over ``repeats`` passes is reported, which suppresses
    cold-cache and GC noise (the paper averages 10,000 queries; we use
    fewer queries but repeated passes).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for q in queries:
            algorithm.knn(int(q), k)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / max(len(queries), 1) * 1e6


class ExperimentResult:
    """One figure/table worth of series.

    ``series`` maps a method/series name to a list of (x, y) points.
    """

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        series: Optional[Dict[str, List[Tuple[object, float]]]] = None,
    ) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: Dict[str, List[Tuple[object, float]]] = series or {}

    def add(self, name: str, x: object, y: float) -> None:
        self.series.setdefault(name, []).append((x, y))

    def ys(self, name: str) -> List[float]:
        return [y for _, y in self.series[name]]

    def at(self, name: str, x: object) -> float:
        for px, py in self.series[name]:
            if px == x:
                return py
        raise KeyError(f"{name} has no point at {x!r}")

    def mean(self, name: str) -> float:
        ys = self.ys(name)
        return sum(ys) / len(ys)

    def format_text(self) -> str:
        """Render as an aligned text table (x down, series across)."""
        xs: List[object] = []
        for points in self.series.values():
            for x, _ in points:
                if x not in xs:
                    xs.append(x)
        names = list(self.series)
        header = [self.x_label] + names
        rows = [header]
        lookup = {
            name: {x: y for x, y in points}
            for name, points in self.series.items()
        }
        for x in xs:
            row = [str(x)]
            for name in names:
                y = lookup[name].get(x)
                row.append("-" if y is None else f"{y:,.2f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [f"== {self.title} ({self.y_label}) =="]
        for r in rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExperimentResult({self.title!r}, series={list(self.series)})"
