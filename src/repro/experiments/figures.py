"""One function per figure of the paper's evaluation.

Every function returns one or more :class:`ExperimentResult` objects whose
series mirror the corresponding plot.  Absolute numbers differ from the
paper (pure Python on scaled networks vs C++ on DIMACS data); the
benchmark suite asserts the *shapes* — orderings, trends and crossovers.

Figures on travel-time graphs (17, 23-27) reuse the same functions on a
``Workbench`` built over travel-time weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.engine.workbench import as_index_cache
from repro.graph.graph import Graph
from repro.experiments.runner import (
    ExperimentResult,
    Workbench,
    measure_query_time,
    random_queries,
)
from repro.index.gtree import GTree, GTreeOracle
from repro.knn.distance_browsing import DistanceBrowsing
from repro.knn.gtree_knn import GTreeKNN
from repro.knn.ier import IER
from repro.knn.ine import INE
from repro.objects import (
    clustered_objects,
    min_distance_object_sets,
    poi_object_sets,
    uniform_objects,
)
from repro.objects.indexes import object_index_costs
from repro.utils.counters import Counters

DEFAULT_K = 10
DEFAULT_DENSITY = 0.01  # scaled-up analogue of the paper's 0.001 (see DESIGN.md)

IER_ORACLES = ("ier-dijk", "ier-gt", "ier-phl", "ier-tnr", "ier-ch")
IER_LABELS = {
    "ier-dijk": "Dijk",
    "ier-gt": "MGtree",
    "ier-phl": "PHL",
    "ier-tnr": "TNR",
    "ier-ch": "CH",
}


def _bench(workbench) -> Workbench:
    """Accept a Workbench/IndexCache or a QueryEngine at every entry point."""
    return as_index_cache(workbench)


# ----------------------------------------------------------------------
# Figure 4 / 23: IER with different shortest-path oracles
# ----------------------------------------------------------------------
def fig04_ier_variants(
    workbench: Workbench,
    ks: Sequence[int] = (1, 5, 10, 25),
    densities: Sequence[float] = (0.001, 0.01, 0.1),
    default_k: int = DEFAULT_K,
    default_density: float = DEFAULT_DENSITY,
    num_queries: int = 30,
    seed: int = 0,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """IER query time per oracle, varying k and object density."""
    workbench = _bench(workbench)
    graph = workbench.graph
    queries = random_queries(graph, num_queries, seed)
    by_k = ExperimentResult("Fig 4(a) IER variants vs k", "k", "query time (us)")
    objects = uniform_objects(graph, default_density, seed=seed)
    algorithms = {
        name: workbench.make(name, objects) for name in IER_ORACLES
    }
    for k in ks:
        for name, alg in algorithms.items():
            by_k.add(IER_LABELS[name], k, measure_query_time(alg, queries, k))
    by_d = ExperimentResult(
        "Fig 4(b) IER variants vs density", "density", "query time (us)"
    )
    for density in densities:
        objs = uniform_objects(graph, density, seed=seed, minimum=default_k)
        for name in IER_ORACLES:
            alg = workbench.make(name, objs)
            by_d.add(
                IER_LABELS[name],
                density,
                measure_query_time(alg, queries, default_k),
            )
    return by_k, by_d


# ----------------------------------------------------------------------
# Figure 6: distance-matrix layout ablation
# ----------------------------------------------------------------------
def fig06_matrix_layouts(
    graph: Graph,
    ks: Sequence[int] = (1, 5, 10, 25),
    densities: Sequence[float] = (0.001, 0.01, 0.1),
    default_k: int = DEFAULT_K,
    default_density: float = DEFAULT_DENSITY,
    num_queries: int = 30,
    seed: int = 0,
    tau: Optional[int] = None,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """G-tree kNN time with array vs hash-table distance matrices."""
    labels = {
        "hash_tuple": "Chained Hashing",
        "hash_packed": "Quad. Probing",
        "array": "Array",
    }
    gtrees = {
        backend: GTree(graph, tau=tau, matrix_backend=backend, seed=seed)
        for backend in labels
    }
    queries = random_queries(graph, num_queries, seed)
    objects = uniform_objects(graph, default_density, seed=seed)
    by_k = ExperimentResult(
        "Fig 6(a) matrix layout vs k", "k", "query time (us)"
    )
    for k in ks:
        for backend, label in labels.items():
            alg = GTreeKNN(gtrees[backend], objects)
            by_k.add(label, k, measure_query_time(alg, queries, k))
    by_d = ExperimentResult(
        "Fig 6(b) matrix layout vs density", "density", "query time (us)"
    )
    for density in densities:
        objs = uniform_objects(graph, density, seed=seed, minimum=default_k)
        for backend, label in labels.items():
            alg = GTreeKNN(gtrees[backend], objs)
            by_d.add(label, density, measure_query_time(alg, queries, default_k))
    return by_k, by_d


# ----------------------------------------------------------------------
# Figure 7: INE implementation ladder
# ----------------------------------------------------------------------
def fig07_ine_ablation(
    graph: Graph,
    ks: Sequence[int] = (1, 5, 10, 25),
    densities: Sequence[float] = (0.001, 0.01, 0.1),
    default_k: int = DEFAULT_K,
    default_density: float = DEFAULT_DENSITY,
    num_queries: int = 30,
    seed: int = 0,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """INE query time across the four implementation rungs."""
    labels = {
        "first_cut": "1st Cut",
        "pqueue": "PQueue",
        "settled": "Settled",
        "graph": "Graph",
    }
    queries = random_queries(graph, num_queries, seed)
    objects = uniform_objects(graph, default_density, seed=seed)
    variants = {v: INE(graph, objects, variant=v) for v in labels}
    by_k = ExperimentResult("Fig 7(a) INE ablation vs k", "k", "query time (us)")
    for k in ks:
        for variant, label in labels.items():
            by_k.add(label, k, measure_query_time(variants[variant], queries, k))
    by_d = ExperimentResult(
        "Fig 7(b) INE ablation vs density", "density", "query time (us)"
    )
    for density in densities:
        objs = uniform_objects(graph, density, seed=seed, minimum=default_k)
        for variant, label in labels.items():
            alg = INE(graph, objs, variant=variant)
            by_d.add(label, density, measure_query_time(alg, queries, default_k))
    return by_k, by_d


# ----------------------------------------------------------------------
# Figure 8 / 26: road-network index preprocessing cost
# ----------------------------------------------------------------------
def fig08_preprocessing(
    suite: Dict[str, Workbench],
    include_silc: bool = True,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Index size (KB) and construction time (s) vs network size."""
    suite = {name: _bench(wb) for name, wb in suite.items()}
    size = ExperimentResult(
        "Fig 8(a) index size vs |V|", "|V|", "index size (KB)"
    )
    build = ExperimentResult(
        "Fig 8(b) construction time vs |V|", "|V|", "construction time (s)"
    )
    for name, wb in suite.items():
        n = wb.graph.num_vertices
        size.add("INE", n, wb.graph.size_bytes() / 1024)
        size.add("Gtree", n, wb.gtree.size_bytes() / 1024)
        build.add("Gtree", n, wb.gtree.build_time())
        size.add("ROAD", n, wb.road.size_bytes() / 1024)
        build.add("ROAD", n, wb.road.build_time())
        size.add("PHL", n, wb.hub_labels.size_bytes() / 1024)
        build.add("PHL", n, wb.hub_labels.build_time())
        if include_silc and wb.silc_available:
            size.add("DisBrw", n, wb.silc.size_bytes() / 1024)
            build.add("DisBrw", n, wb.silc.build_time())
    return size, build


# ----------------------------------------------------------------------
# Figure 9: query time vs network size + method-internal statistics
# ----------------------------------------------------------------------
def fig09_network_size(
    suite: Dict[str, Workbench],
    k: int = DEFAULT_K,
    density: float = DEFAULT_DENSITY,
    num_queries: int = 25,
    seed: int = 0,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """All methods vs |V|, plus G-tree path cost & ROAD bypassed vertices."""
    suite = {name: _bench(wb) for name, wb in suite.items()}
    times = ExperimentResult(
        "Fig 9(a) query time vs |V|", "|V|", "query time (us)"
    )
    stats = ExperimentResult(
        "Fig 9(b) G-tree path cost / ROAD bypassed vs |V|", "|V|", "count"
    )
    for name, wb in suite.items():
        graph = wb.graph
        n = graph.num_vertices
        objects = uniform_objects(graph, density, seed=seed, minimum=k)
        queries = random_queries(graph, num_queries, seed)
        for method in wb.available_methods():
            alg = wb.make(method, objects)
            times.add(method, n, measure_query_time(alg, queries, k))
        # Internal statistics (Figure 9(b)).
        counters = Counters()
        gtree_alg = wb.make("gtree", objects)
        for q in queries:
            gtree_alg.knn(int(q), k, counters=counters)
        stats.add("Gtree path cost", n, counters["gtree_matrix_ops"] / num_queries)
        # IER-Gt's oracle work happens inside GTree.distance; the oracle
        # accepts counters so its matrix operations are measured in the
        # same units (paper Figure 9(b): IER-Gt needs fewer computations
        # than the G-tree kNN heuristic and the gap grows with |V|).
        counters_ier = Counters()
        oracle = GTreeOracle(wb.gtree, counters=counters_ier)
        ier_alg = IER(graph, objects, oracle)
        for q in queries:
            ier_alg.knn(int(q), k)
        stats.add(
            "IER-Gt path cost", n, counters_ier["gtree_matrix_ops"] / num_queries
        )
        counters2 = Counters()
        road_alg = wb.make("road", objects)
        for q in queries:
            road_alg.knn(int(q), k, counters=counters2)
        stats.add("ROAD bypassed", n, counters2["road_bypassed"] / num_queries)
    return times, stats


# ----------------------------------------------------------------------
# Figures 10 / 16(a) / 24(a): varying k
# ----------------------------------------------------------------------
def fig10_vary_k(
    workbench: Workbench,
    ks: Sequence[int] = (1, 5, 10, 25, 50),
    density: float = DEFAULT_DENSITY,
    num_queries: int = 30,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    workbench = _bench(workbench)
    graph = workbench.graph
    objects = uniform_objects(graph, density, seed=seed, minimum=max(ks))
    queries = random_queries(graph, num_queries, seed)
    if methods is None:
        methods = workbench.available_methods()
    result = ExperimentResult(
        f"Fig 10 query time vs k ({graph.name})", "k", "query time (us)"
    )
    algorithms = {m: workbench.make(m, objects) for m in methods}
    for k in ks:
        for method, alg in algorithms.items():
            result.add(method, k, measure_query_time(alg, queries, k))
    return result


# ----------------------------------------------------------------------
# Figures 11 / 16(b) / 24(b): varying density
# ----------------------------------------------------------------------
def fig11_vary_density(
    workbench: Workbench,
    densities: Sequence[float] = (0.001, 0.01, 0.1, 0.5),
    k: int = DEFAULT_K,
    num_queries: int = 30,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    workbench = _bench(workbench)
    graph = workbench.graph
    queries = random_queries(graph, num_queries, seed)
    if methods is None:
        methods = workbench.available_methods()
    result = ExperimentResult(
        f"Fig 11 query time vs density ({graph.name})",
        "density",
        "query time (us)",
    )
    for density in densities:
        objects = uniform_objects(graph, density, seed=seed, minimum=k)
        for method in methods:
            alg = workbench.make(method, objects)
            result.add(method, density, measure_query_time(alg, queries, k))
    return result


# ----------------------------------------------------------------------
# Figure 12 / 24(d): clustered objects
# ----------------------------------------------------------------------
def fig12_clusters(
    workbench: Workbench,
    cluster_counts: Sequence[int] = (4, 16, 64, 256),
    ks: Sequence[int] = (1, 5, 10, 25),
    default_k: int = DEFAULT_K,
    default_clusters: Optional[int] = None,
    num_queries: int = 30,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
) -> Tuple[ExperimentResult, ExperimentResult]:
    workbench = _bench(workbench)
    graph = workbench.graph
    queries = random_queries(graph, num_queries, seed)
    if methods is None:
        methods = workbench.available_methods()
    by_c = ExperimentResult(
        "Fig 12(a) query time vs #clusters", "#clusters", "query time (us)"
    )
    for count in cluster_counts:
        objects = clustered_objects(graph, count, seed=seed)
        for method in methods:
            alg = workbench.make(method, objects)
            by_c.add(method, count, measure_query_time(alg, queries, default_k))
    if default_clusters is None:
        default_clusters = max(
            4, int(DEFAULT_DENSITY * graph.num_vertices / 3)
        )
    objects = clustered_objects(graph, default_clusters, seed=seed)
    by_k = ExperimentResult(
        "Fig 12(b) clustered objects vs k", "k", "query time (us)"
    )
    algorithms = {m: workbench.make(m, objects) for m in methods}
    for k in ks:
        for method, alg in algorithms.items():
            by_k.add(method, k, measure_query_time(alg, queries, k))
    return by_c, by_k


# ----------------------------------------------------------------------
# Figure 13 / 25: real-world-like POI sets
# ----------------------------------------------------------------------
def fig13_real_pois(
    workbench: Workbench,
    k: int = DEFAULT_K,
    num_queries: int = 30,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    workbench = _bench(workbench)
    graph = workbench.graph
    queries = random_queries(graph, num_queries, seed)
    if methods is None:
        methods = workbench.available_methods()
    poi_sets = poi_object_sets(graph, seed=seed, minimum=k, density_scale=10.0)
    result = ExperimentResult(
        f"Fig 13 real-world object sets ({graph.name})",
        "poi set",
        "query time (us)",
    )
    # Ordered by decreasing size, like the paper's bar groups.
    for name in sorted(poi_sets, key=lambda s: -len(poi_sets[s])):
        objects = poi_sets[name]
        for method in methods:
            alg = workbench.make(method, objects)
            result.add(method, name, measure_query_time(alg, queries, k))
    return result


# ----------------------------------------------------------------------
# Figure 14 / 17(d) / 24(c): minimum object distance
# ----------------------------------------------------------------------
def fig14_min_distance(
    workbench: Workbench,
    num_sets: int = 4,
    k: int = DEFAULT_K,
    density: float = DEFAULT_DENSITY,
    num_queries: int = 25,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    workbench = _bench(workbench)
    graph = workbench.graph
    size = max(k, int(density * graph.num_vertices))
    sets, query_pool, _ = min_distance_object_sets(
        graph, num_sets=num_sets, size=size, seed=seed
    )
    rng = np.random.default_rng(seed)
    queries = rng.choice(query_pool, size=min(num_queries, len(query_pool)))
    if methods is None:
        methods = workbench.available_methods()
    result = ExperimentResult(
        "Fig 14 query time vs min object distance", "set", "query time (us)"
    )
    for i, objects in enumerate(sets, start=1):
        for method in methods:
            alg = workbench.make(method, objects)
            result.add(method, f"R{i}", measure_query_time(alg, queries, k))
    return result


# ----------------------------------------------------------------------
# Figure 15 / 27: varying k on named POI sets
# ----------------------------------------------------------------------
def fig15_real_k(
    workbench: Workbench,
    poi_names: Sequence[str] = ("hospitals", "fast_food"),
    ks: Sequence[int] = (1, 5, 10, 25),
    num_queries: int = 30,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
) -> Dict[str, ExperimentResult]:
    workbench = _bench(workbench)
    graph = workbench.graph
    queries = random_queries(graph, num_queries, seed)
    poi_sets = poi_object_sets(graph, seed=seed, minimum=max(ks), density_scale=10.0)
    if methods is None:
        methods = workbench.available_methods()
    out: Dict[str, ExperimentResult] = {}
    for poi in poi_names:
        objects = poi_sets[poi]
        result = ExperimentResult(
            f"Fig 15 vary k on {poi}", "k", "query time (us)"
        )
        algorithms = {m: workbench.make(m, objects) for m in methods}
        for k in ks:
            for method, alg in algorithms.items():
                result.add(method, k, measure_query_time(alg, queries, k))
        out[poi] = result
    return out


# ----------------------------------------------------------------------
# Figure 18: object-index cost
# ----------------------------------------------------------------------
def fig18_object_indexes(
    workbench: Workbench,
    densities: Sequence[float] = (0.001, 0.01, 0.1, 0.5),
    seed: int = 0,
) -> Tuple[ExperimentResult, ExperimentResult]:
    workbench = _bench(workbench)
    graph = workbench.graph
    size = ExperimentResult(
        "Fig 18(a) object index size vs density", "density", "size (KB)"
    )
    build = ExperimentResult(
        "Fig 18(b) object index build time vs density", "density", "time (us)"
    )
    labels = {
        "ine": "INE",
        "rtree": "IER/DB",
        "occurrence_list": "G-tree",
        "association_directory": "ROAD",
    }
    for density in densities:
        objects = uniform_objects(graph, density, seed=seed)
        costs = object_index_costs(graph, workbench.gtree, workbench.road, objects)
        for key, label in labels.items():
            size.add(label, density, costs[key]["size_bytes"] / 1024)
            if key != "ine":
                build.add(label, density, costs[key]["build_time_s"] * 1e6)
    return size, build


# ----------------------------------------------------------------------
# Figure 19: DisBrw Object Hierarchy vs DB-ENN
# ----------------------------------------------------------------------
def fig19_db_enn(
    workbench: Workbench,
    ks: Sequence[int] = (1, 5, 10, 25),
    densities: Sequence[float] = (0.001, 0.01, 0.1),
    default_k: int = DEFAULT_K,
    default_density: float = DEFAULT_DENSITY,
    num_queries: int = 25,
    seed: int = 0,
) -> Tuple[ExperimentResult, ExperimentResult]:
    workbench = _bench(workbench)
    graph = workbench.graph
    silc = workbench.silc
    queries = random_queries(graph, num_queries, seed)
    objects = uniform_objects(graph, default_density, seed=seed, minimum=max(ks))
    by_k = ExperimentResult("Fig 19(a) DisBrw vs DB-ENN vs k", "k", "query time (us)")
    oh = DistanceBrowsing(silc, objects, candidate_source="hierarchy")
    enn = DistanceBrowsing(silc, objects, candidate_source="enn")
    for k in ks:
        by_k.add("DisBrw", k, measure_query_time(oh, queries, k))
        by_k.add("DB-ENN", k, measure_query_time(enn, queries, k))
    by_d = ExperimentResult(
        "Fig 19(b) DisBrw vs DB-ENN vs density", "density", "query time (us)"
    )
    for density in densities:
        objs = uniform_objects(graph, density, seed=seed, minimum=default_k)
        oh = DistanceBrowsing(silc, objs, candidate_source="hierarchy")
        enn = DistanceBrowsing(silc, objs, candidate_source="enn")
        by_d.add("DisBrw", density, measure_query_time(oh, queries, default_k))
        by_d.add("DB-ENN", density, measure_query_time(enn, queries, default_k))
    return by_k, by_d


# ----------------------------------------------------------------------
# Figures 20/21: degree-2 chain optimisation
# ----------------------------------------------------------------------
def fig20_21_deg2(
    workbench: Workbench,
    ks: Sequence[int] = (1, 5, 10, 25),
    densities: Sequence[float] = (0.001, 0.01, 0.1),
    default_k: int = DEFAULT_K,
    default_density: float = DEFAULT_DENSITY,
    num_queries: int = 25,
    seed: int = 0,
) -> Tuple[ExperimentResult, ExperimentResult]:
    workbench = _bench(workbench)
    graph = workbench.graph
    silc = workbench.silc
    queries = random_queries(graph, num_queries, seed)
    objects = uniform_objects(graph, default_density, seed=seed, minimum=max(ks))
    plain = DistanceBrowsing(silc, objects, use_chains=False)
    opt = DistanceBrowsing(silc, objects, use_chains=True)
    by_k = ExperimentResult(
        f"Fig 20/21(a) chain optimisation vs k ({graph.name})",
        "k",
        "query time (us)",
    )
    for k in ks:
        by_k.add("DisBrw", k, measure_query_time(plain, queries, k))
        by_k.add("OptDisBrw", k, measure_query_time(opt, queries, k))
    by_d = ExperimentResult(
        f"Fig 20/21(b) chain optimisation vs density ({graph.name})",
        "density",
        "query time (us)",
    )
    for density in densities:
        objs = uniform_objects(graph, density, seed=seed, minimum=default_k)
        plain = DistanceBrowsing(silc, objs, use_chains=False)
        opt = DistanceBrowsing(silc, objs, use_chains=True)
        by_d.add("DisBrw", density, measure_query_time(plain, queries, default_k))
        by_d.add("OptDisBrw", density, measure_query_time(opt, queries, default_k))
    return by_k, by_d


# ----------------------------------------------------------------------
# Figure 22: improved G-tree leaf search
# ----------------------------------------------------------------------
def fig22_leaf_search(
    workbench: Workbench,
    densities: Sequence[float] = (0.001, 0.01, 0.1, 0.5),
    ks: Sequence[int] = (1, 10),
    num_queries: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    workbench = _bench(workbench)
    graph = workbench.graph
    queries = random_queries(graph, num_queries, seed)
    result = ExperimentResult(
        "Fig 22 G-tree leaf search before/after", "density", "query time (us)"
    )
    for density in densities:
        objects = uniform_objects(graph, density, seed=seed, minimum=max(ks))
        for k in ks:
            before = GTreeKNN(workbench.gtree, objects, improved_leaf_search=False)
            after = GTreeKNN(workbench.gtree, objects, improved_leaf_search=True)
            result.add(f"k={k} (Bef)", density, measure_query_time(before, queries, k))
            result.add(f"k={k} (Aft)", density, measure_query_time(after, queries, k))
    return result
