"""Table analogues: datasets (1, 2) and the algorithm ranking (5).

Table 3 (cache profiling) lives in :mod:`repro.experiments.cache_study`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.engine.workbench import as_index_cache
from repro.experiments.runner import (
    Workbench,
    measure_query_time,
    random_queries,
)
from repro.graph.graph import Graph
from repro.objects import poi_object_sets, uniform_objects


def table1_networks(suite: Dict[str, Graph]) -> List[Dict[str, object]]:
    """Dataset statistics in the shape of Table 1."""
    rows = []
    for name, graph in suite.items():
        degrees = np.diff(graph.vertex_start)
        rows.append(
            {
                "name": name,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "avg_degree": float(degrees.mean()),
                "degree2_fraction": float((degrees == 2).mean()),
            }
        )
    return rows


def format_table1(rows: List[Dict[str, object]]) -> str:
    lines = ["== Table 1: road-network datasets (scaled analogues) =="]
    lines.append(
        f"{'Name':8} {'#Vertices':>10} {'#Edges':>10} {'AvgDeg':>7} {'%Deg2':>6}"
    )
    for r in rows:
        lines.append(
            f"{r['name']:8} {r['vertices']:>10,} {r['edges']:>10,} "
            f"{r['avg_degree']:>7.2f} {100 * r['degree2_fraction']:>5.1f}%"
        )
    return "\n".join(lines)


def table2_objects(graph: Graph, seed: int = 0) -> List[Dict[str, object]]:
    """POI object-set statistics in the shape of Table 2."""
    rows = []
    for name, objects in poi_object_sets(graph, seed=seed).items():
        rows.append(
            {
                "name": name,
                "size": len(objects),
                "density": len(objects) / graph.num_vertices,
            }
        )
    rows.sort(key=lambda r: -r["size"])
    return rows


def format_table2(rows: List[Dict[str, object]]) -> str:
    lines = ["== Table 2: object sets (Table 2 analogues) =="]
    lines.append(f"{'Object Set':14} {'Size':>8} {'Density':>10}")
    for r in rows:
        lines.append(f"{r['name']:14} {r['size']:>8,} {r['density']:>10.5f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 5: ranking of algorithms under different criteria
# ----------------------------------------------------------------------
def _rank(scores: Dict[str, float]) -> Dict[str, int]:
    """1 = best (smallest).  Ties share a rank."""
    ordered = sorted(scores.items(), key=lambda kv: kv[1])
    ranks: Dict[str, int] = {}
    for position, (name, value) in enumerate(ordered):
        if position > 0 and np.isclose(value, ordered[position - 1][1], rtol=0.05):
            ranks[name] = ranks[ordered[position - 1][0]]
        else:
            ranks[name] = position + 1
    return ranks


def table5_ranking(
    workbench: Workbench,
    large_workbench: Optional[Workbench] = None,
    k_small: int = 1,
    k_default: int = 10,
    k_large: int = 25,
    density_low: float = 0.001,
    density_default: float = 0.01,
    density_high: float = 0.3,
    num_queries: int = 25,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Rank the five methods under the paper's Table 5 criteria.

    Returns ``{criterion: {method: rank}}``.  IER is represented by its
    best available oracle (PHL), as in the paper's summary table.
    Accepts a ``Workbench``/``IndexCache`` or a ``QueryEngine``.
    """
    workbench = as_index_cache(workbench)
    if large_workbench is not None:
        large_workbench = as_index_cache(large_workbench)
    graph = workbench.graph
    criteria: Dict[str, Dict[str, int]] = {}

    def timing(k: int, density: float, wb: Workbench) -> Dict[str, float]:
        objs = uniform_objects(wb.graph, density, seed=seed, minimum=k)
        qs = random_queries(wb.graph, num_queries, seed)
        out = {}
        for m in wb.available_methods():
            out[m] = measure_query_time(wb.make(m, objs), qs, k)
        return out

    criteria["default"] = _rank(timing(k_default, density_default, workbench))
    criteria["small_k"] = _rank(timing(k_small, density_default, workbench))
    criteria["large_k"] = _rank(timing(k_large, density_default, workbench))
    criteria["low_density"] = _rank(timing(k_default, density_low, workbench))
    criteria["high_density"] = _rank(timing(k_default, density_high, workbench))
    if large_workbench is not None:
        criteria["large_network"] = _rank(
            timing(k_default, density_default, large_workbench)
        )

    # Preprocessing criteria (network index).
    build: Dict[str, float] = {"ine": 0.0}
    space: Dict[str, float] = {"ine": float(graph.size_bytes())}
    build["gtree"] = workbench.gtree.build_time()
    space["gtree"] = float(workbench.gtree.size_bytes())
    build["road"] = workbench.road.build_time()
    space["road"] = float(workbench.road.size_bytes())
    build["ier-phl"] = workbench.hub_labels.build_time()
    space["ier-phl"] = float(workbench.hub_labels.size_bytes())
    build["ier-gt"] = build["gtree"]
    space["ier-gt"] = space["gtree"]
    if workbench.silc_available:
        build["disbrw"] = workbench.silc.build_time()
        space["disbrw"] = float(workbench.silc.size_bytes())
    criteria["network_build_time"] = _rank(build)
    criteria["network_space"] = _rank(space)
    return criteria


def format_table5(criteria: Dict[str, Dict[str, int]]) -> str:
    methods: List[str] = []
    for ranks in criteria.values():
        for m in ranks:
            if m not in methods:
                methods.append(m)
    lines = ["== Table 5: algorithm ranking by criterion (1 = best) =="]
    header = f"{'criterion':20}" + "".join(f"{m:>10}" for m in methods)
    lines.append(header)
    for criterion, ranks in criteria.items():
        row = f"{criterion:20}"
        for m in methods:
            row += f"{ranks.get(m, '-'):>10}"
        lines.append(row)
    return "\n".join(lines)
