"""Generate EXPERIMENTS.md: the paper-vs-measured faithfulness ledger.

Runs every figure/table function at benchmark scale and writes a markdown
report pairing each artefact with the paper's expected shape and the
measured series.  This is the reproducibility record required by the
study; the benchmark suite asserts the same shapes mechanically.

Run:  python -m repro.experiments.report [output-path]
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

from repro.experiments import cache_study, figures, tables
from repro.experiments.runner import ExperimentResult, Workbench
from repro.graph.generators import (
    chain_heavy_network,
    road_network,
    travel_time_weights,
)

NW_SIZE = 2500
US_SIZE = 5000
SUITE_SIZES = ((600, "S-DE"), (1200, "S-CO"), (2500, "S-NW"), (4000, "S-W"))


def _fence(*results: ExperimentResult) -> str:
    body = "\n\n".join(r.format_text() for r in results)
    return f"```\n{body}\n```"


def build_report() -> str:
    started = time.time()
    sections: List[str] = []

    def emit(title: str, expected: str, *results: ExperimentResult) -> None:
        sections.append(f"### {title}\n\n**Paper shape.** {expected}\n\n"
                        f"**Measured.**\n\n{_fence(*results)}\n")
        print(f"[{time.time() - started:6.1f}s] {title}")

    nw = Workbench(road_network(NW_SIZE, seed=42, name="S-NW"))
    us = Workbench(road_network(US_SIZE, seed=1042, name="S-US"))
    nw_tt = Workbench(travel_time_weights(nw.graph, seed=42))
    us_tt = Workbench(travel_time_weights(us.graph, seed=1042))
    suite: Dict[str, Workbench] = {
        name: Workbench(road_network(size, seed=100 + size, name=name))
        for size, name in SUITE_SIZES
    }

    # Tables 1 and 2 --------------------------------------------------
    t1 = tables.table1_networks({n: w.graph for n, w in suite.items()})
    sections.append(
        "### Table 1 — road networks\n\n**Paper.** Ten DIMACS networks, "
        "48k-24M vertices, |E|/|V| about 2.4, about 30% degree-2 vertices."
        "\n\n**Measured (scaled analogues).**\n\n```\n"
        + tables.format_table1(t1) + "\n```\n"
    )
    t2 = tables.table2_objects(us.graph)
    sections.append(
        "### Table 2 — object sets\n\n**Paper.** Eight OSM POI categories, "
        "densities 0.00005-0.007, schools largest.\n\n**Measured.**\n\n```\n"
        + tables.format_table2(t2) + "\n```\n"
    )

    # Figure 4 ---------------------------------------------------------
    a, b = figures.fig04_ier_variants(
        nw, ks=(1, 5, 10, 25), densities=(0.003, 0.01, 0.1), num_queries=15
    )
    emit(
        "Figure 4 — IER variants (travel distance)",
        "PHL is the consistent winner (4 orders of magnitude over Dijkstra "
        "in C++; >10x here), MGtree next; TNR/CH similar and converging at "
        "high density.  Reproduced: same ordering, Dijkstra catastrophically "
        "behind, gap narrowing with density.",
        a, b,
    )

    # Figure 6 ----------------------------------------------------------
    a, b = figures.fig06_matrix_layouts(
        nw.graph, ks=(1, 10, 25), densities=(0.003, 0.1), num_queries=10
    )
    emit(
        "Figure 6 — G-tree distance-matrix layouts",
        "Array layout ~30x faster than chained hashing, ~10x faster than "
        "quadratic probing in C++.  Reproduced directionally in CPython: "
        "array fastest at every point (smaller margins, since Python "
        "dict overhead is partly interpreter- rather than cache-bound).",
        a, b,
    )

    # Table 3 -----------------------------------------------------------
    profile = cache_study.table3_cache_profile(
        nw.graph, num_queries=40, gtree=nw.gtree
    )
    sections.append(
        "### Table 3 — cache profile of matrix layouts\n\n**Paper.** perf "
        "counters over 250k queries: array executes ~6x fewer instructions "
        "and ~20-50x fewer cache misses than chained hashing; quadratic "
        "probing executes the most instructions but misses less than "
        "chaining.\n\n**Measured (trace-driven cache model).**\n\n```\n"
        + cache_study.format_table3(profile) + "\n```\n"
    )
    print(f"[{time.time() - started:6.1f}s] Table 3")

    # Figure 7 ----------------------------------------------------------
    a, b = figures.fig07_ine_ablation(
        nw.graph, ks=(1, 10, 25), densities=(0.003, 0.05), num_queries=12
    )
    emit(
        "Figure 7 — INE implementation ladder",
        "Each choice roughly halves query time; final implementation 6-7x "
        "faster than the first cut.  Reproduced directionally: the "
        "decrease-key heap is the big cost in CPython (~1.5-2x), the final "
        "configuration is fastest; total improvement ~1.7x (interpreter "
        "overhead compresses constant-factor effects).",
        a, b,
    )

    # Figure 8 ----------------------------------------------------------
    a, b = figures.fig08_preprocessing(suite)
    emit(
        "Figure 8 — road-network index preprocessing",
        "INE (raw graph) is the space lower bound; DisBrw/SILC has by far "
        "the largest index and slowest build and cannot be built beyond the "
        "five smallest networks; PHL next largest; G-tree and ROAD "
        "comparable.  Reproduced: same ordering and the same SILC wall "
        "(capped at 9k vertices here).",
        a, b,
    )

    # Figure 9 ----------------------------------------------------------
    a, b = figures.fig09_network_size(suite, num_queries=12)
    emit(
        "Figure 9 — query time and internals vs |V|",
        "IER methods win at every size; G-tree's border-to-border path "
        "cost grows with |V| while ROAD's bypassed-vertex count stays "
        "stable (why G-tree's lead shrinks on big networks).  Reproduced: "
        "same winner and the same counter trends.",
        a, b,
    )

    # Figure 10 ---------------------------------------------------------
    a = figures.fig10_vary_k(nw, ks=(1, 5, 10, 25), density=0.003, num_queries=12)
    b = figures.fig10_vary_k(us, ks=(1, 5, 10, 25), density=0.003, num_queries=10)
    emit(
        "Figure 10 — varying k (NW, US analogues)",
        "IER-PHL ~5x faster than the field on NW; G-tree scales best in k "
        "among the index methods; INE worst at large k.  Reproduced: "
        "IER-PHL fastest at k>=5, G-tree's k-growth far below INE's.",
        a, b,
    )

    # Figure 11 ---------------------------------------------------------
    a = figures.fig11_vary_density(nw, densities=(0.003, 0.03, 0.3), num_queries=12)
    emit(
        "Figure 11 — varying density",
        "All methods improve with density; expansion methods improve "
        "fastest and overtake the heuristics at high density; ROAD falls "
        "behind INE beyond ~0.01.  Reproduced including the INE crossover.",
        a,
    )

    # Figure 12 ---------------------------------------------------------
    a, b = figures.fig12_clusters(nw, cluster_counts=(4, 16, 64), ks=(1, 10, 25), num_queries=12)
    emit(
        "Figure 12 — clustered objects",
        "More clusters behave like higher density; IER keeps a lead but a "
        "smaller one (Euclidean distance separates cluster members "
        "poorly); G-tree nearly flat in k due to materialization.  "
        "Reproduced.",
        a, b,
    )

    # Figure 13 ---------------------------------------------------------
    a = figures.fig13_real_pois(nw, num_queries=12)
    b = figures.fig13_real_pois(us, num_queries=8, methods=("ine", "road", "gtree", "ier-gt"))
    emit(
        "Figure 13 — real-world object sets",
        "Ordered by decreasing size = decreasing density; INE degrades "
        "most on sparse sets; IER variants win on most sets.  Reproduced.",
        a, b,
    )

    # Figure 14 ---------------------------------------------------------
    a = figures.fig14_min_distance(nw, num_sets=4, num_queries=10)
    emit(
        "Figure 14 — minimum object distance",
        "INE explodes with remoteness; Euclidean bounds loosen so IER "
        "degrades too; G-tree scales best.  Reproduced: G-tree's R4/R1 "
        "ratio is far below INE's and G-tree wins outright at R4.",
        a,
    )

    # Figure 15 ---------------------------------------------------------
    r = figures.fig15_real_k(nw, ks=(1, 10, 25), num_queries=12)
    emit(
        "Figure 15 — varying k on real POIs",
        "Sparse hospitals behave like uniform objects (IER-PHL well "
        "ahead); clustered fast food narrows IER's lead.  Reproduced.",
        r["hospitals"], r["fast_food"],
    )

    # Figure 16 ---------------------------------------------------------
    co = suite["S-CO"]
    high = figures.fig10_vary_k(co, ks=(1, 10, 25), density=0.1, num_queries=12)
    emit(
        "Figure 16 — original settings (high density)",
        "At the earlier studies' 10x-higher density all methods answer "
        "fast and bunch together — queries are easy for everyone, "
        "explaining older contradictory comparisons.  Reproduced: the "
        "best/worst spread collapses relative to the default density.",
        high,
    )

    # Figure 18 ---------------------------------------------------------
    a, b = figures.fig18_object_indexes(us, densities=(0.003, 0.03, 0.3))
    emit(
        "Figure 18 — object-index cost",
        "Object indexes are far smaller and faster to build than road "
        "indexes; the raw object list is the floor; object storage "
        "dominates as density grows; R-trees build fastest at scale.  "
        "Reproduced (sizes in KB vs the G-tree's MBs).",
        a, b,
    )

    # Figure 19 ---------------------------------------------------------
    a, b = figures.fig19_db_enn(nw, ks=(1, 5, 10), densities=(0.003, 0.05), num_queries=12)
    emit(
        "Figure 19 — Object Hierarchy vs DB-ENN",
        "DB-ENN wins, peaking at ~1 order of magnitude at high density / "
        "low k.  Reproduced directionally: clear win at k=1, parity "
        "elsewhere (Python's R-tree cursor costs more than C++'s).",
        a, b,
    )

    # Figures 20/21 -----------------------------------------------------
    highway = Workbench(chain_heavy_network(1500, seed=3, chain_fraction=0.9))
    a, b = figures.fig20_21_deg2(highway, ks=(1, 10), densities=(0.01, 0.05), num_queries=10)
    c, d = figures.fig20_21_deg2(nw, ks=(1, 10), densities=(0.003, 0.05), num_queries=10)
    emit(
        "Figures 20/21 — degree-2 chain optimisation",
        "~30% improvement on ordinary networks; up to 10x on the "
        "95%-degree-2 highway network.  Reproduced: clear win on the "
        "chain-heavy network (first two tables), no harm on the normal "
        "one (last two).",
        a, b, c, d,
    )

    # Figure 22 ---------------------------------------------------------
    a = figures.fig22_leaf_search(nw, densities=(0.003, 0.05, 0.3), ks=(1, 10), num_queries=15)
    emit(
        "Figure 22 — improved G-tree leaf search",
        "Largest gains at high density and small k (the original scans "
        "the whole leaf regardless of k); >10x at k=1 on the densest "
        "sets in C++.  Reproduced: consistent wins, biggest at k=1 / "
        "density 0.3.",
        a,
    )

    # Figure 17 (travel time, US) ---------------------------------------
    a = figures.fig10_vary_k(us_tt, ks=(1, 10, 25), density=0.003, num_queries=10)
    b = figures.fig11_vary_density(us_tt, densities=(0.003, 0.1), num_queries=8)
    emit(
        "Figure 17 — travel-time graphs (US analogue)",
        "The Euclidean bound is looser (scaled by max speed), so IER "
        "takes more false hits and IER-Gt loses to plain G-tree; IER-PHL "
        "usually stays fastest.  Reproduced: IER-PHL still leads INE; "
        "false-hit counters confirm the loosened bound.",
        a, b,
    )

    # Figure 23 (travel time IER variants) -------------------------------
    a, b = figures.fig04_ier_variants(nw_tt, ks=(1, 10, 25), densities=(0.003, 0.05), num_queries=10)
    emit(
        "Figure 23 — IER variants on travel time",
        "PHL remains well ahead; TNR/CH keep their relative positions; "
        "all oracles suffer more false hits at high density.  Reproduced.",
        a, b,
    )

    # Figures 24/27 (travel time NW) -------------------------------------
    a = figures.fig10_vary_k(nw_tt, ks=(1, 10, 25), density=0.003, num_queries=10,
                             methods=("ine", "road", "gtree", "ier-gt", "ier-phl"))
    b = figures.fig11_vary_density(nw_tt, densities=(0.003, 0.3), num_queries=10,
                                   methods=("ine", "gtree", "ier-phl"))
    emit(
        "Figures 24/27 — travel-time parameters (NW analogue)",
        "IER-PHL generally best except at the highest densities, where "
        "false hits hand the win to the expansion methods.  Reproduced "
        "including the high-density crossover.",
        a, b,
    )

    # Figure 25 (travel time POIs) ---------------------------------------
    a = figures.fig13_real_pois(nw_tt, num_queries=10,
                                methods=("ine", "road", "gtree", "ier-gt", "ier-phl"))
    emit(
        "Figure 25 — travel-time real POI sets",
        "IER-PHL dominates nearly every set (smaller labels offset false "
        "hits); INE worst on sparse sets.  Reproduced.",
        a,
    )

    # Figure 26 (travel time preprocessing) ------------------------------
    suite_tt = {
        name: Workbench(travel_time_weights(w.graph, seed=7))
        for name, w in suite.items()
    }
    a, b = figures.fig08_preprocessing(suite_tt, include_silc=False)
    emit(
        "Figure 26 — travel-time preprocessing",
        "Labels shrink on travel time (stronger hierarchies) letting PHL "
        "build on every dataset.  Reproduced: hub-label size per vertex "
        "no larger than on travel distance.",
        a, b,
    )

    # Table 5 -------------------------------------------------------------
    criteria = tables.table5_ranking(nw, large_workbench=us, num_queries=12)
    sections.append(
        "### Table 5 — ranking under different criteria\n\n**Paper.** IER "
        "1st for queries in every regime except high density (INE 1st); "
        "INE 1st on all preprocessing criteria; DisBrw last on space.\n\n"
        "**Measured.**\n\n```\n" + tables.format_table5(criteria) + "\n```\n"
    )
    print(f"[{time.time() - started:6.1f}s] Table 5")

    header = f"""# EXPERIMENTS — paper vs measured

Generated by ``python -m repro.experiments.report`` on scaled synthetic
networks (NW analogue: {NW_SIZE} vertices, US analogue: {US_SIZE};
paper: 1.1M and 24M).  Absolute numbers are pure-Python and 100-1000x
the paper's C++ microseconds; what is reproduced — and what the
benchmark suite asserts — is each experiment's *shape*: orderings,
trends and crossovers.  See DESIGN.md for the substitution table.

Scaling conventions:

* default density 0.01 (10x the paper's 0.001) compensates for networks
  ~100x smaller, keeping the expected number of objects per search
  region comparable;
* named POI sets use the paper's relative densities scaled the same way;
* ks sweep 1..25 instead of 1..50 (k=50 exceeds sensible object-set
  sizes at this scale);
* DisBrw/SILC is built only for networks <= 9000 vertices, mirroring the
  paper's inability to build it beyond its five smallest datasets.

Known fidelity deviations (all documented inline below):

1. **Figure 7** reproduces the ladder's direction but compresses its
   magnitude (~1.7x end-to-end vs 6-7x): CPython interpreter overhead
   dwarfs cache effects that dominate in C++.
2. **Figure 6 / Table 3**: the array-vs-hash ordering reproduces, with
   smaller query-time margins for the same reason; the cache *model*
   (Table 3) shows the full-size miss gaps.
3. **DisBrw** is relatively slower here than in the paper (per-step
   Morton binary searches are pure Python), so it trails INE at large k
   instead of matching ROAD.

---
"""
    return header + "\n".join(sections)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    report = build_report()
    with open(path, "w") as handle:
        handle.write(report)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
