"""Table 3 analogue: cache behaviour of distance-matrix layouts.

The paper profiles 250k queries with ``perf`` and shows the array layout
incurs ~50x fewer cache misses than chained hashing, with quadratic
probing in between (but executing the most instructions).  We reproduce
the experiment with a trace-driven model:

1. run real G-tree kNN queries with a tracing wrapper that records every
   distance-matrix access the assembly performs;
2. for each layout, turn the logical accesses into the byte addresses
   that layout would touch (sequential array cells; bucket + chain node
   for chained hashing; probe sequences for open addressing);
3. replay each address stream through the LRU cache hierarchy in
   :mod:`repro.utils.cachesim`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.experiments.runner import random_queries
from repro.index.gtree import GTree
from repro.knn.gtree_knn import GTreeKNN
from repro.objects import uniform_objects
from repro.utils.cachesim import CacheHierarchy

#: (matrix_id, rows, cols) triples recorded per minplus call.
Trace = List[Tuple[int, np.ndarray, np.ndarray]]


class _TracingMatrix:
    """Wraps an ArrayMatrix, recording logical accesses."""

    def __init__(self, inner, matrix_id: int, trace: Trace) -> None:
        self._inner = inner
        self._id = matrix_id
        self._trace = trace
        self.m = inner.m

    def get(self, i: int, j: int) -> float:
        self._trace.append(
            (self._id, np.asarray([i]), np.asarray([j]))
        )
        return self._inner.get(i, j)

    def minplus(self, prev, rows, cols):
        self._trace.append((self._id, np.asarray(rows), np.asarray(cols)))
        return self._inner.minplus(prev, rows, cols)

    def size_bytes(self) -> int:
        return self._inner.size_bytes()


def record_matrix_trace(
    graph: Graph,
    num_queries: int = 50,
    k: int = 10,
    density: float = 0.01,
    seed: int = 0,
    gtree: Optional[GTree] = None,
) -> Tuple[Trace, Dict[int, Tuple[int, int]]]:
    """Record the matrix accesses of real kNN queries.

    Returns the trace and each matrix's (rows, cols) shape.
    """
    if gtree is None:
        gtree = GTree(graph, seed=seed)
    trace: Trace = []
    shapes: Dict[int, Tuple[int, int]] = {}
    originals = {}
    for node in gtree.nodes:
        if node.matrix is None:
            continue
        originals[node.id] = node.matrix
        shapes[node.id] = node.matrix.m.shape
        node.matrix = _TracingMatrix(node.matrix, node.id, trace)
    try:
        objects = uniform_objects(graph, density, seed=seed, minimum=k)
        alg = GTreeKNN(gtree, objects)
        for q in random_queries(graph, num_queries, seed):
            alg.knn(int(q), k)
    finally:
        for node in gtree.nodes:
            if node.id in originals:
                node.matrix = originals[node.id]
    return trace, shapes


def _layout_addresses(
    layout: str,
    trace: Trace,
    shapes: Dict[int, Tuple[int, int]],
) -> Tuple[List[int], int]:
    """Byte addresses (and instruction count) a layout touches for a trace."""
    # Allocate matrices back to back per layout.
    base: Dict[int, int] = {}
    offset = 0
    for mid, (rows, cols) in shapes.items():
        base[mid] = offset
        cells = max(rows * cols, 1)
        if layout == "array":
            offset += cells * 8
        elif layout == "chained":
            offset += cells * 16  # bucket array
        else:  # open addressing
            offset += int(cells * 1.5) * 16  # slots at ~0.67 load factor
    heap_base = offset  # chained hashing's out-of-line chain nodes
    heap_span = max(offset * 2, 1 << 16)

    addresses: List[int] = []
    instructions = 0
    for mid, rows, cols in trace:
        nrows, ncols = shapes[mid]
        b = base[mid]
        if layout == "array":
            for r in rows:
                row_off = b + int(r) * ncols * 8
                for c in cols:
                    addresses.append(row_off + int(c) * 8)
                    instructions += 1
        elif layout == "chained":
            cells = max(nrows * ncols, 1)
            for r in rows:
                for c in cols:
                    h = (int(r) * 2654435761 + int(c) * 40503) & 0xFFFFFFFF
                    addresses.append(b + (h % cells) * 16)
                    # chain node allocated elsewhere on the heap
                    h2 = (h * 2246822519 + mid * 3266489917) & 0xFFFFFFFF
                    addresses.append(heap_base + (h2 % heap_span) // 8 * 8)
                    instructions += 4
        else:  # open addressing with quadratic probing
            slots = max(int(nrows * ncols * 1.5), 1)
            for r in rows:
                for c in cols:
                    h = (int(r) * 2654435761 + int(c) * 40503) & 0xFFFFFFFF
                    addresses.append(b + (h % slots) * 16)
                    instructions += 6
                    # ~30% of probes collide and probe again
                    if h % 10 < 3:
                        addresses.append(b + ((h + 1) % slots) * 16)
                        instructions += 4
    return addresses, instructions


def table3_cache_profile(
    graph: Graph,
    num_queries: int = 50,
    k: int = 10,
    density: float = 0.01,
    seed: int = 0,
    gtree: Optional[GTree] = None,
) -> Dict[str, Dict[str, int]]:
    """Instructions and per-level cache misses for the three layouts.

    Returns ``{layout_label: {"INS": ..., "L1": ..., "L2": ..., "L3": ...}}``
    in the paper's Table 3 shape.
    """
    trace, shapes = record_matrix_trace(
        graph, num_queries=num_queries, k=k, density=density, seed=seed,
        gtree=gtree,
    )
    out: Dict[str, Dict[str, int]] = {}
    for layout, label in (
        ("chained", "Chained Hashing"),
        ("open", "Quadratic Probing"),
        ("array", "Array"),
    ):
        addresses, instructions = _layout_addresses(layout, trace, shapes)
        cache = CacheHierarchy()
        stats = cache.replay(addresses)
        out[label] = {
            "INS": instructions,
            "L1": stats["L1_misses"],
            "L2": stats["L2_misses"],
            "L3": stats["L3_misses"],
        }
    return out


def format_table3(profile: Dict[str, Dict[str, int]]) -> str:
    lines = ["== Table 3: cache profile of distance-matrix layouts =="]
    header = f"{'Distance Matrix':22} {'INS':>12} {'L1':>12} {'L2':>12} {'L3':>12}"
    lines.append(header)
    for label, row in profile.items():
        lines.append(
            f"{label:22} {row['INS']:>12,} {row['L1']:>12,} "
            f"{row['L2']:>12,} {row['L3']:>12,}"
        )
    return "\n".join(lines)
