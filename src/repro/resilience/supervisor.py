"""Worker heartbeats and the periodic supervisor thread.

:class:`Heartbeats` is a tiny thread-safe ledger: each worker calls
``beat(name)`` every loop iteration (including while idle-waiting for
work), and the supervisor reads ``age_s`` to spot wedged threads.

:class:`Supervisor` runs a caller-supplied check callback on a fixed
interval from a daemon thread.  The server's callback restarts workers
that died (thread no longer alive) and abandons-then-replaces workers
whose heartbeat went stale (wedged in a stall).  A crashing check is
counted and survived — the supervisor must outlive the things it
supervises.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional


class Heartbeats:
    """Last-beat timestamps by worker name (``time.monotonic``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._beats: Dict[str, float] = {}

    def beat(self, name: str) -> None:
        with self._lock:
            self._beats[name] = time.monotonic()

    def age_s(self, name: str, now: Optional[float] = None) -> Optional[float]:
        """Seconds since ``name`` last beat, or None if it never did."""
        now = time.monotonic() if now is None else now
        with self._lock:
            at = self._beats.get(name)
        return None if at is None else now - at

    def drop(self, name: str) -> None:
        with self._lock:
            self._beats.pop(name, None)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        """``{name: age_s}`` for every tracked worker."""
        now = time.monotonic() if now is None else now
        with self._lock:
            return {name: now - at for name, at in self._beats.items()}

    def clear(self) -> None:
        with self._lock:
            self._beats.clear()


class Supervisor:
    """Run ``check()`` every ``interval_s`` from a daemon thread."""

    def __init__(
        self,
        check: Callable[[], None],
        interval_s: float = 0.25,
        name: str = "knn-supervisor",
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._check = check
        self.interval_s = float(interval_s)
        self.name = name
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.error_count = 0

    def start(self) -> "Supervisor":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._check()
            except Exception:
                self.error_count += 1
                from repro import obs

                reg = obs.REGISTRY
                if reg.enabled:
                    reg.counter(
                        "supervisor_errors_total",
                        "exceptions raised by the supervisor check",
                    ).inc()
