"""Store-corruption quarantine: move the bad artifact aside and count it.

When an index load raises :class:`~repro.store.StoreCorruption`, crashing
the query path is the worst available option — the artifact is a pure
cache of a rebuildable preprocessing product.  The quarantine policy
instead:

1. moves the offending artifact file into ``<store>/quarantine/`` (it is
   preserved for post-mortem, not deleted) and drops its manifest entry
   (:meth:`repro.store.IndexStore.quarantine`);
2. counts the event — per store root and kind here, plus the
   ``store_quarantined_total{kind=...}`` obs counter;
3. lets the caller rebuild: the next store lookup is a clean
   :class:`~repro.store.ArtifactMissing` miss, so the ordinary
   build-and-save path repopulates the slot.

``IndexCache._obtain`` applies this automatically; the server's
``health`` report surfaces the counts for its engine's store.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional

_LOCK = threading.Lock()
#: ``(resolved store root, kind) -> quarantined artifact count``.
_COUNTS: Dict[tuple, int] = {}


def quarantine_artifact(
    store, kind: str, key: str, reason: str = ""
) -> Optional[Path]:
    """Quarantine one corrupt artifact; returns its new path (or None).

    Never raises on a store whose manifest is itself unreadable — the
    event is still counted so operators see the store needs ``gc``.
    """
    from repro import obs

    try:
        moved = store.quarantine(kind, key)
    except Exception:
        moved = None
    root = str(Path(store.root).resolve())
    with _LOCK:
        _COUNTS[(root, kind)] = _COUNTS.get((root, kind), 0) + 1
    reg = obs.REGISTRY
    if reg.enabled:
        reg.counter(
            "store_quarantined_total",
            "corrupt artifacts moved to quarantine, by kind",
            kind=kind,
        ).inc()
    return moved


def quarantine_counts(root=None) -> Dict[str, int]:
    """Quarantine counts by kind — for one store root, or all stores."""
    wanted = None if root is None else str(Path(root).resolve())
    out: Dict[str, int] = {}
    with _LOCK:
        for (r, kind), n in _COUNTS.items():
            if wanted is None or r == wanted:
                out[kind] = out.get(kind, 0) + n
    return out


def reset_quarantine_counts() -> None:
    """Test hook: forget all recorded quarantine events."""
    with _LOCK:
        _COUNTS.clear()
