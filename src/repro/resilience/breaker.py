"""Per-method circuit breaker: closed -> open -> half-open -> closed.

The server keeps one :class:`CircuitBreaker` per resolved method.  While
*closed*, every request may use the method; ``failure_threshold``
consecutive primary-method failures trip it *open*.  While open,
:meth:`allow` answers False — the server serves those requests through
the engine's fallback chain without even attempting the broken method,
so a persistently failing kernel stops costing a failed attempt per
request.  After ``cooldown_s`` the breaker turns *half-open* and lets
exactly one probe request try the method again: success re-closes it,
failure re-opens it for another cooldown.

Callers must pair every ``allow() == True`` with exactly one
``record_success()`` or ``record_failure()`` — a half-open probe ticket
is held until its verdict arrives.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe three-state breaker with single-probe half-open."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._opened_at = 0.0
        self._probe_inflight = False
        self._opened_total = 0
        self._closed_after_open = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller attempt the protected method right now?"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._state = HALF_OPEN
                self._probe_inflight = True
                return True
            # HALF_OPEN: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probe_inflight = False
                self._closed_after_open += 1

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()

    def _trip(self) -> None:
        """Transition to OPEN (caller holds the lock)."""
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probe_inflight = False
        self._opened_total += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opened_total": self._opened_total,
                "closed_after_open": self._closed_after_open,
            }
            if self._state == OPEN:
                snap["open_for_s"] = round(
                    self._clock() - self._opened_at, 6
                )
            return snap
