"""Capped, jittered exponential backoff for retries.

One :class:`RetryPolicy` instance answers two questions: how many
attempts a piece of work gets (``max_attempts``) and how long to sleep
before attempt ``n+1`` (:meth:`backoff_s`).  The delay doubles per
attempt up to ``cap_s`` and is then shrunk by a random jitter fraction —
the standard herd-avoidance shape — drawn from a seeded RNG so test and
bench schedules replay exactly.
"""

from __future__ import annotations

import random
import threading


class RetryPolicy:
    """Backoff schedule: ``min(cap, base * multiplier**(n-1)) * jittered``.

    ``jitter`` is the fraction of the raw delay randomly shaved off
    (0.5 means the actual sleep lands uniformly in [50%, 100%] of the
    raw delay).  Thread-safe; server workers share one instance.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_s: float = 0.002,
        cap_s: float = 0.05,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_s < 0 or cap_s < 0:
            raise ValueError("base_s and cap_s must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retrying after the ``attempt``-th try (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.cap_s, self.base_s * self.multiplier ** (attempt - 1))
        with self._lock:
            u = self._rng.random()
        return raw * (1.0 - self.jitter * u)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_s={self.base_s}, cap_s={self.cap_s})"
        )
