"""Deterministic, seeded fault injection behind named fault points.

A fault point is a string name at a place where the real world fails:
a store read (``store.load``), a kernel call (``kernel.sssp``), a worker
thread (``worker.die``).  Production code calls :func:`fault_check` at
each point; with no :class:`FaultPlan` installed (the default) that is a
single module-global read — cheap enough to live on the query hot path
under the ``bench_obs.py`` <= 3% overhead budget.

A chaos run installs a plan::

    plan = FaultPlan(seed=7, specs=[
        FaultSpec("store.load", nth_calls=(1,)),          # first load fails
        FaultSpec("kernel.sssp", probability=0.05),       # 5% of calls
        FaultSpec("kernel.sssp", between=(200, 260), probability=1.0),
        FaultSpec("worker.die", nth_calls=(20,)),         # one worker kill
        FaultSpec("worker.stall", nth_calls=(5,), stall_s=0.4),
    ])
    with plan_installed(plan):
        ...

Determinism: each spec draws from its own ``random.Random`` seeded by
``(plan seed, spec index)``, and triggers depend only on the per-point
call ordinal — so given the same sequence of calls at each point the
same calls fault, every run.  Thread interleaving may change *which
thread* observes a given ordinal, never the fault sequence itself.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: The named fault points threaded through the stack.
FAULT_POINTS = (
    "store.load",     # IndexStore.get — artifact read / integrity check
    "store.save",     # IndexStore.put — artifact write
    "kernel.sssp",    # array-kernel SSSP entry (INE / Dijkstra hot path)
    "index.build",    # IndexCache build of a road-network index
    "index.repair",   # in-place index repair under a weight delta
    "worker.stall",   # server worker wedges (sleeps) instead of serving
    "worker.die",     # server worker thread dies abruptly
)


class FaultError(RuntimeError):
    """Base class for injected faults (so handlers can opt in/out)."""


class InjectedFault(FaultError):
    """A generic injected failure at a fault point."""


class KernelFault(FaultError):
    """An injected failure inside a query kernel."""


class WorkerKilled(FaultError):
    """An injected abrupt worker-thread death (escapes the worker loop)."""


def _default_error(point: str) -> BaseException:
    """A realistic exception for ``point`` when the spec names none."""
    if point == "worker.die":
        return WorkerKilled(f"injected fault at {point}")
    if point.startswith("kernel."):
        return KernelFault(f"injected fault at {point}")
    if point.startswith("store."):
        # Lazy import: repro.store calls into this module for its own
        # fault checks, so the dependency must not be circular at load.
        from repro.store import StoreCorruption

        return StoreCorruption(f"injected fault at {point}")
    return InjectedFault(f"injected fault at {point}")


@dataclass(frozen=True)
class FaultSpec:
    """When one fault point fires.

    ``nth_calls`` fire deterministically at those 1-based call ordinals.
    ``probability`` fires each call with that chance (from the spec's
    seeded RNG), restricted to the inclusive ``between`` ordinal window
    when given.  ``max_fires`` caps total fires.  A spec with
    ``stall_s > 0`` sleeps instead of raising (a wedged component);
    otherwise it raises ``error()`` — or a realistic default for the
    point (:class:`~repro.store.StoreCorruption` for ``store.*``,
    :class:`KernelFault` for ``kernel.*``, :class:`WorkerKilled` for
    ``worker.die``).
    """

    point: str
    probability: float = 0.0
    nth_calls: Tuple[int, ...] = ()
    between: Optional[Tuple[int, int]] = None
    max_fires: Optional[int] = None
    stall_s: float = 0.0
    error: Optional[Callable[[], BaseException]] = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known points: "
                f"{', '.join(FAULT_POINTS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.stall_s < 0:
            raise ValueError("stall_s must be >= 0")


@dataclass
class _SpecState:
    spec: FaultSpec
    rng: random.Random
    fires: int = 0


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules, replayable exactly.

    Install with :func:`install_plan` (or the :func:`plan_installed`
    context manager); production fault checks are no-ops until then.
    ``snapshot()`` reports per-point call and fire counts — the chaos
    bench embeds it in ``BENCH_chaos.json``.
    """

    def __init__(self, seed: int = 0, specs: Sequence[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._by_point: Dict[str, List[_SpecState]] = {}
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        for i, spec in enumerate(self.specs):
            state = _SpecState(
                spec=spec, rng=random.Random(self.seed * 1_000_003 + i)
            )
            self._by_point.setdefault(spec.point, []).append(state)

    def check(self, point: str) -> None:
        """Advance ``point``'s call counter; fire any triggered spec.

        Exactly one action per call: the first triggered spec wins (in
        declaration order).  Stall specs sleep outside the plan lock so
        a wedged component never blocks other fault points.
        """
        states = self._by_point.get(point)
        if states is None:
            return
        action: Optional[_SpecState] = None
        with self._lock:
            n = self._calls.get(point, 0) + 1
            self._calls[point] = n
            for state in states:
                spec = state.spec
                if spec.max_fires is not None and state.fires >= spec.max_fires:
                    continue
                fire = n in spec.nth_calls
                if not fire and spec.probability > 0.0:
                    lo, hi = spec.between or (1, n)
                    if lo <= n <= hi and state.rng.random() < spec.probability:
                        fire = True
                if fire:
                    state.fires += 1
                    self._fired[point] = self._fired.get(point, 0) + 1
                    action = state
                    break
        if action is None:
            return
        from repro import obs

        reg = obs.REGISTRY
        if reg.enabled:
            reg.counter(
                "faults_injected_total",
                "injected faults fired, by fault point",
                point=point,
            ).inc()
        spec = action.spec
        if spec.stall_s > 0:
            time.sleep(spec.stall_s)
            return
        raise spec.error() if spec.error is not None else _default_error(point)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "specs": len(self.specs),
                "calls": dict(self._calls),
                "fired": dict(self._fired),
            }


#: The installed plan; ``None`` (the default) makes every check a no-op.
_PLAN: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide; returns it for chaining."""
    global _PLAN
    _PLAN = plan
    return plan


def clear_plan() -> None:
    """Remove any installed plan (fault checks become no-ops again)."""
    global _PLAN
    _PLAN = None


def current_plan() -> Optional[FaultPlan]:
    return _PLAN


@contextlib.contextmanager
def plan_installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block, restoring the previous one."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fault_check(point: str) -> None:
    """The production hook: near-free no-op unless a plan is installed."""
    plan = _PLAN
    if plan is not None:
        plan.check(point)
