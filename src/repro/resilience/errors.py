"""Transient-vs-permanent error taxonomy for the serving stack.

:func:`classify` maps any exception raised while answering a request to
an :class:`ErrorClass` with two orthogonal verdicts:

* ``transient`` — retrying the *same* work may succeed (an injected
  kernel fault, a store hiccup, a quarantined-then-rebuilt artifact).
  The server's per-request retry loop only spends backoff budget on
  these.
* ``degradable`` — a *different method* may still answer exactly (every
  registered method is exact, so a kernel fault in INE's scipy path does
  not poison the answer — G-tree or the pure-python INE loop returns the
  identical neighbor list).  The engine's fallback chain only catches
  these; client programming errors (unknown method/category, bad
  arguments) propagate unchanged.

The class ``name`` labels the ``server_errors_total{class=...}`` obs
counter so operators can tell a client-error storm from store damage.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ErrorClass:
    """One taxonomy verdict for an exception."""

    name: str
    transient: bool
    degradable: bool


#: Verdicts, keyed by taxonomy name (single source for docs and tests).
CLIENT = ErrorClass("client", transient=False, degradable=False)
#: Not degradable: "this method cannot run on this network" is a static
#: property (SILC vertex cap, missing backend), not a fault — a caller
#: who explicitly named the method wants the refusal, not a silent
#: substitute.  The planner never resolves "auto" to an unavailable
#: method, so the auto path cannot hit this.
UNAVAILABLE = ErrorClass("unavailable", transient=False, degradable=False)
CORRUPTION = ErrorClass("corruption", transient=True, degradable=True)
STORE = ErrorClass("store", transient=True, degradable=True)
KERNEL = ErrorClass("kernel", transient=True, degradable=True)
INJECTED = ErrorClass("injected", transient=True, degradable=True)
REPAIR = ErrorClass("repair", transient=True, degradable=False)
TIMEOUT = ErrorClass("timeout", transient=True, degradable=False)
RESOURCE = ErrorClass("resource", transient=False, degradable=True)
IO = ErrorClass("io", transient=True, degradable=True)
WORKER = ErrorClass("worker", transient=False, degradable=False)
INTERNAL = ErrorClass("internal", transient=False, degradable=True)


def classify(exc: BaseException) -> ErrorClass:
    """The :class:`ErrorClass` verdict for ``exc``.

    Imports are deliberately local: this module sits below the engine,
    store and update layers in the import graph, and classification only
    runs on the (cold) error path.
    """
    from repro.engine.registry import MethodUnavailable, UnknownMethod
    from repro.resilience.faults import (
        FaultError,
        KernelFault,
        WorkerKilled,
    )
    from repro.store import ArtifactMissing, StoreCorruption, StoreError
    from repro.updates import RepairUnavailable

    if isinstance(exc, WorkerKilled):
        return WORKER
    if isinstance(exc, KernelFault):
        return KERNEL
    if isinstance(exc, FaultError):
        return INJECTED
    if isinstance(exc, (UnknownMethod, KeyError)):
        # UnknownMethod is a ValueError subclass but a *client* mistake;
        # KeyError covers the server's UnknownCategory.
        return CLIENT
    if isinstance(exc, MethodUnavailable):
        return UNAVAILABLE
    if isinstance(exc, StoreCorruption):
        return CORRUPTION
    if isinstance(exc, (ArtifactMissing, StoreError)):
        return STORE
    if isinstance(exc, RepairUnavailable):
        return REPAIR
    if isinstance(exc, TimeoutError):
        return TIMEOUT
    if isinstance(exc, MemoryError):
        return RESOURCE
    if isinstance(exc, (ValueError, TypeError)):
        return CLIENT
    if isinstance(exc, OSError):
        return IO
    return INTERNAL


def is_transient(exc: BaseException) -> bool:
    """True when retrying the same work may succeed."""
    return classify(exc).transient


def is_degradable(exc: BaseException) -> bool:
    """True when a fallback method may still answer this query exactly."""
    return classify(exc).degradable
