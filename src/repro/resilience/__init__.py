"""Resilience layer: fault injection, degradation, retries, supervision.

The serving stack must stay available — and keep returning *exact*
answers — while individual components fail.  This package supplies the
machinery, each piece usable on its own:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  **fault-injection framework**.  Named fault points (``store.load``,
  ``kernel.sssp``, ``worker.die``, ...) are threaded through the store,
  the engine, the kernels and the server behind a default-off
  :class:`FaultPlan`; with no plan installed a fault check is one global
  read.  Seeded nth-call and probability triggers make every chaos run
  replay exactly.
* :mod:`repro.resilience.errors` — the transient-vs-permanent **error
  taxonomy** (:func:`classify`) that drives server retries and engine
  fallback decisions.
* :mod:`repro.resilience.retry` — capped, jittered exponential backoff
  (:class:`RetryPolicy`), seeded for reproducible schedules.
* :mod:`repro.resilience.breaker` — a per-method **circuit breaker**
  (closed → open → half-open with probe requests).
* :mod:`repro.resilience.supervisor` — worker **heartbeats** and a
  periodic :class:`Supervisor` thread that restarts dead or wedged
  workers.
* :mod:`repro.resilience.quarantine` — store-corruption **quarantine**:
  move the bad artifact aside, count it, rebuild.

End-to-end behaviour is gated by ``benchmarks/bench_chaos.py``: under a
seeded plan injecting store + kernel faults and a worker kill, the
server must sustain >= 99% non-error completion with zero wrong answers
(degraded responses flagged via ``KNNResult.degraded`` provenance).  See
``docs/resilience.md``.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.errors import (
    ErrorClass,
    classify,
    is_degradable,
    is_transient,
)
from repro.resilience.faults import (
    FAULT_POINTS,
    FaultError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    KernelFault,
    WorkerKilled,
    clear_plan,
    current_plan,
    fault_check,
    install_plan,
    plan_installed,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import Heartbeats, Supervisor
from repro.resilience.quarantine import (
    quarantine_artifact,
    quarantine_counts,
    reset_quarantine_counts,
)

__all__ = [
    "FAULT_POINTS",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KernelFault",
    "WorkerKilled",
    "install_plan",
    "clear_plan",
    "current_plan",
    "plan_installed",
    "fault_check",
    "ErrorClass",
    "classify",
    "is_transient",
    "is_degradable",
    "RetryPolicy",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Heartbeats",
    "Supervisor",
    "quarantine_artifact",
    "quarantine_counts",
    "reset_quarantine_counts",
]
