"""repro — k-Nearest Neighbors on Road Networks (VLDB 2016 reproduction).

A from-scratch, in-memory Python implementation of the systems studied in
Abeywickrama, Cheema & Taniar, *k-Nearest Neighbors on Road Networks: A
Journey in Experimentation and In-Memory Implementation* (PVLDB 9(6)):

* the five kNN methods — INE, IER, Distance Browsing, ROAD and G-tree;
* the shortest-path oracles IER is revived with — Dijkstra, A*,
  Contraction Hierarchies, pruned hub labelling (the PHL stand-in) and
  Transit Node Routing;
* their substrates — CSR graphs, multilevel partitioning, R-trees,
  Morton/region quadtrees, SILC;
* workload generators and the experiment harness regenerating every
  table and figure of the paper's evaluation at laptop scale.

Quickstart — the :class:`QueryEngine` service layer is the primary API::

    from repro import QueryEngine, road_network, uniform_objects

    graph = road_network(2000, seed=7)
    objects = uniform_objects(graph, density=0.01, seed=1)
    engine = QueryEngine(graph, objects)

    result = engine.query(0, k=5)        # method="auto": planner picks one
    print(result.method, result.time_us) # provenance + timing
    for distance, vertex in result:      # iterates as (distance, vertex)
        print(vertex, distance)

    engine.batch(range(100), k=5)        # a workload, indexes built once
    engine.explain(0, k=5)               # every method + its counters

Every method lives in a pluggable registry — ``@register_method("name")``
adds a sixth method that immediately works in the engine, the CLI and the
experiment harness (see :mod:`repro.engine.registry`).  The underlying
algorithm classes (``INE(graph, objects).knn(0, 5)``, ...) remain public
for direct use.

Preprocessing is persistent: pass ``store=IndexStore(path)`` to the
engine (or use ``python -m repro build``) and every index is serialized
to a versioned on-disk artifact once, then warm-started by later
processes — see :mod:`repro.store` and README.md.
"""

from repro.engine import (
    IndexCache,
    KNNQuery,
    KNNResult,
    MethodUnavailable,
    Neighbor,
    QueryEngine,
    UnknownMethod,
    known_methods,
    register_method,
)
from repro.graph import (
    Graph,
    GraphBuilder,
    delaunay_network,
    grid_network,
    load_dimacs,
    road_network,
    save_dimacs,
    scaled_network_suite,
)
from repro.graph.generators import chain_heavy_network, travel_time_weights
from repro.index import (
    GTree,
    GTreeOracle,
    OccurrenceList,
    RoadIndex,
    AssociationDirectory,
    SILCIndex,
)
from repro.knn import (
    INE,
    IER,
    DistanceBrowsing,
    GTreeKNN,
    RoadKNN,
    knn_with_paths,
    silc_paths_for_results,
    verify_knn_result,
)
from repro.objects import (
    clustered_objects,
    min_distance_object_sets,
    poi_object_sets,
    uniform_objects,
)
from repro.pathfinding import (
    AStarOracle,
    ContractionHierarchy,
    DijkstraOracle,
    HubLabels,
    TransitNodeRouting,
)
from repro.store import (
    ArtifactMissing,
    IndexStore,
    StoreCorruption,
    StoreError,
)

__version__ = "1.2.0"

__all__ = [
    "QueryEngine",
    "KNNQuery",
    "KNNResult",
    "Neighbor",
    "IndexCache",
    "register_method",
    "known_methods",
    "MethodUnavailable",
    "UnknownMethod",
    "Graph",
    "GraphBuilder",
    "grid_network",
    "delaunay_network",
    "road_network",
    "chain_heavy_network",
    "travel_time_weights",
    "scaled_network_suite",
    "load_dimacs",
    "save_dimacs",
    "GTree",
    "GTreeOracle",
    "OccurrenceList",
    "RoadIndex",
    "AssociationDirectory",
    "SILCIndex",
    "INE",
    "IER",
    "DistanceBrowsing",
    "GTreeKNN",
    "RoadKNN",
    "verify_knn_result",
    "knn_with_paths",
    "silc_paths_for_results",
    "uniform_objects",
    "clustered_objects",
    "min_distance_object_sets",
    "poi_object_sets",
    "DijkstraOracle",
    "AStarOracle",
    "ContractionHierarchy",
    "HubLabels",
    "TransitNodeRouting",
    "IndexStore",
    "ArtifactMissing",
    "StoreCorruption",
    "StoreError",
]
