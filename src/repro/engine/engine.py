"""The :class:`QueryEngine` facade — the library's primary query API.

One engine binds a road network (via a shared :class:`IndexCache`) to an
object set and serves kNN queries through any registered method:

    engine = QueryEngine(graph, objects)
    result = engine.query(q, k=5)                  # planner picks a method
    results = engine.batch(queries, k=5)           # amortised workload
    reports = engine.explain(q, k=5)               # every method + counters

Road-network indexes and per-method algorithm instances are built once
and cached, so a batch pays construction cost once — the unit the paper
times.  Swapping POI categories over the same network (the paper's
decoupled-indexing argument) is ``engine.with_objects(new_objects)``,
which shares the index cache and only rebuilds the tiny object indexes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from repro.engine.planner import plan_method
from repro.engine.query import (
    KNNQuery,
    KNNResult,
    Neighbor,
    as_queries,
    normalise_query,
)
from repro.engine.registry import get_method
from repro.engine.workbench import IndexCache
from repro.graph.graph import Graph
from repro.knn.base import KNNAlgorithm
from repro.knn.paths import shortest_paths_to
from repro.utils.counters import Counters


class QueryEngine:
    """Serve kNN queries over one road network and one object set.

    Parameters
    ----------
    graph_or_workbench:
        A :class:`Graph` (a fresh index cache is created for it) or an
        existing :class:`IndexCache`/``Workbench`` to share indexes with.
    objects:
        Object vertex ids this engine answers queries against.
    density_threshold:
        Override for the auto planner's INE/IER crossover density.
    """

    def __init__(
        self,
        graph_or_workbench: Union[Graph, IndexCache, None] = None,
        objects: Sequence[int] = (),
        *,
        workbench: Optional[IndexCache] = None,
        seed: int = 0,
        tau: Optional[int] = None,
        road_levels: Optional[int] = None,
        density_threshold: Optional[float] = None,
    ) -> None:
        if workbench is None:
            if isinstance(graph_or_workbench, IndexCache):
                workbench = graph_or_workbench
            elif graph_or_workbench is not None:
                workbench = IndexCache(
                    graph_or_workbench, seed=seed, tau=tau, road_levels=road_levels
                )
            else:
                raise ValueError("provide a graph or a workbench")
        self.workbench = workbench
        self.graph = workbench.graph
        self.objects = [int(o) for o in objects]
        self.density_threshold = density_threshold
        self._algorithms: Dict[tuple, KNNAlgorithm] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Object density |O| / |V| — the planner's main signal."""
        return len(self.objects) / max(1, self.graph.num_vertices)

    def available_methods(self, include_disbrw: bool = True) -> List[str]:
        return self.workbench.available_methods(include_disbrw=include_disbrw)

    def plan(self, k: int = 1) -> str:
        """The method ``method="auto"`` would run for this workload."""
        return plan_method(
            self.graph,
            self.objects,
            k=k,
            bench=self.workbench,
            density_threshold=self.density_threshold,
        )

    def resolve_method(self, method: str = "auto", k: int = 1) -> str:
        if method in (None, "auto"):
            return self.plan(k)
        get_method(method)  # raises UnknownMethod with the known list
        return method

    def algorithm(self, method: str, **kwargs) -> KNNAlgorithm:
        """The cached algorithm instance for ``method`` (built on first use)."""
        key = (method, tuple(sorted(kwargs.items())))
        alg = self._algorithms.get(key)
        if alg is None:
            alg = self.workbench.make(method, self.objects, **kwargs)
            self._algorithms[key] = alg
        return alg

    def with_objects(self, objects: Sequence[int]) -> "QueryEngine":
        """A new engine over the same (shared) indexes, new object set."""
        return QueryEngine(
            workbench=self.workbench,
            objects=objects,
            density_threshold=self.density_threshold,
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def query(
        self,
        query: Union[int, KNNQuery],
        k: Optional[int] = None,
        method: Optional[str] = None,
        *,
        with_paths: Optional[bool] = None,
        counters: Optional[Counters] = None,
    ) -> KNNResult:
        """Answer one kNN query, returning a structured :class:`KNNResult`.

        ``query`` may be a vertex id (``k`` required, ``method`` defaults
        to ``"auto"``) or a :class:`KNNQuery`, whose fields are used
        unless explicitly overridden by these arguments.
        """
        q = normalise_query(query, k, method, with_paths)
        resolved = self.resolve_method(q.method, q.k)
        alg = self.algorithm(resolved)
        c = counters if counters is not None else Counters()
        start = time.perf_counter()
        raw = alg.knn(q.vertex, q.k, counters=c)
        elapsed = time.perf_counter() - start
        paths: Dict[int, tuple] = {}
        if q.with_paths:
            paths = shortest_paths_to(
                self.graph, q.vertex, [v for _, v in raw]
            )
        neighbors = tuple(
            Neighbor(
                float(d),
                int(v),
                path=tuple(paths[int(v)][1]) if int(v) in paths else None,
            )
            for d, v in raw
        )
        return KNNResult(
            query=q, method=resolved, neighbors=neighbors, counters=c,
            time_s=elapsed,
        )

    def batch(
        self,
        queries: Sequence[Union[int, KNNQuery]],
        k: Optional[int] = None,
        method: Optional[str] = None,
        *,
        with_paths: Optional[bool] = None,
    ) -> List[KNNResult]:
        """Answer a workload of queries, amortising index construction.

        Queries sharing a method reuse one algorithm instance (and the
        road-network indexes behind it), so the per-query cost converges
        to pure search time — the quantity the paper's figures report.
        Explicit ``k`` / ``method`` / ``with_paths`` override the fields
        of any :class:`KNNQuery` entries.
        """
        normalized = as_queries(queries, k=k, method=method, with_paths=with_paths)
        return [self.query(q) for q in normalized]

    def explain(
        self,
        query: int,
        k: int,
        methods: Optional[Sequence[str]] = None,
    ) -> Dict[str, KNNResult]:
        """Run every (or the given) method on one query.

        Each returned :class:`KNNResult` carries that method's counters
        and wall-clock time — per-method cost profiles on identical
        input, the paper's Section 7 methodology in one call.
        """
        if methods is None:
            methods = self.available_methods()
        return {
            m: self.query(query, k, method=m, counters=Counters())
            for m in methods
        }
