"""The :class:`QueryEngine` facade — the library's primary query API.

One engine binds a road network (via a shared :class:`IndexCache`) to an
object set and serves kNN queries through any registered method:

    engine = QueryEngine(graph, objects)
    result = engine.query(q, k=5)                  # planner picks a method
    results = engine.batch(queries, k=5)           # amortised workload
    reports = engine.explain(q, k=5)               # every method + counters

Road-network indexes and per-method algorithm instances are built once
and cached, so a batch pays construction cost once — the unit the paper
times.  Swapping POI categories over the same network (the paper's
decoupled-indexing argument) is ``engine.with_objects(new_objects)``,
which shares the index cache and only rebuilds the tiny object indexes.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.engine.planner import LOW_DENSITY_METHODS, plan_method
from repro.engine.query import (
    KNNQuery,
    KNNResult,
    Neighbor,
    as_queries,
    normalise_query,
)
from repro.engine.registry import MethodUnavailable, get_method
from repro.engine.workbench import IndexCache
from repro.graph.graph import Graph
from repro.knn.base import KNNAlgorithm
from repro.knn.paths import shortest_paths_to
from repro.obs.tracing import span as _span
from repro.resilience.errors import classify
from repro.utils.counters import Counters


class QueryEngine:
    """Serve kNN queries over one road network and one object set.

    Parameters
    ----------
    graph_or_workbench:
        A :class:`Graph` (a fresh index cache is created for it) or an
        existing :class:`IndexCache`/``Workbench`` to share indexes with.
    objects:
        Object vertex ids this engine answers queries against.
    density_threshold:
        Override for the auto planner's INE/IER crossover density
        (default :data:`repro.engine.planner.AUTO_DENSITY_THRESHOLD`).
    kernel:
        Hot-path kernel for query algorithms and index builds:
        ``"array"`` (the resolved default — allocation-free, vectorised,
        whole-frontier kernels) or ``"python"`` (the reference per-edge
        loops).  Both kernels return identical answers; ``explain``
        reports the kernel each method ran on.  When the engine creates
        its own :class:`IndexCache` the knob also selects the index
        build kernel; an existing workbench keeps its own.
    store:
        Optional :class:`repro.store.IndexStore`.  Indexes are then
        loaded from disk when a matching artifact exists and saved after
        a fresh build, so a restarted service warm-starts instead of
        re-running preprocessing.  Only valid when the engine creates
        its own index cache from a graph; combining it with an existing
        workbench raises ``ValueError`` (attach the store when
        constructing that workbench instead).
    """

    def __init__(
        self,
        graph_or_workbench: Union[Graph, IndexCache, None] = None,
        objects: Sequence[int] = (),
        *,
        workbench: Optional[IndexCache] = None,
        seed: int = 0,
        tau: Optional[int] = None,
        road_levels: Optional[int] = None,
        density_threshold: Optional[float] = None,
        store=None,
        kernel: Optional[str] = None,
    ) -> None:
        from repro.kernels.config import resolve_kernel

        self.kernel = resolve_kernel(kernel)
        if workbench is None:
            if isinstance(graph_or_workbench, IndexCache):
                workbench = graph_or_workbench
            elif graph_or_workbench is not None:
                workbench = IndexCache(
                    graph_or_workbench,
                    seed=seed,
                    tau=tau,
                    road_levels=road_levels,
                    store=store,
                    kernel=self.kernel,
                )
            else:
                raise ValueError("provide a graph or a workbench")
        if store is not None and (
            workbench.store is None
            or workbench.store.root.resolve() != store.root.resolve()
        ):
            # An existing workbench keeps its own (possibly absent) store
            # backing; silently dropping the argument would let a caller
            # believe warm-start is active while every restart rebuilds.
            # An equivalent store (same directory) is accepted.
            raise ValueError(
                "store= has no effect on an existing workbench; construct "
                "the IndexCache/Workbench with store= instead"
            )
        self.workbench = workbench
        self.graph = workbench.graph
        self.objects = [int(o) for o in objects]
        self.density_threshold = density_threshold
        self._algorithms: Dict[tuple, KNNAlgorithm] = {}
        self._algorithms_lock = threading.Lock()
        #: Engine-level event counters (service statistics rather than
        #: per-query algorithm internals): ``batch_dedup_hits`` records
        #: how many batch entries were answered by reusing an identical
        #: earlier query's result.
        self.counters = Counters()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Object density |O| / |V| — the planner's main signal."""
        return len(self.objects) / max(1, self.graph.num_vertices)

    def available_methods(self, include_disbrw: bool = True) -> List[str]:
        return self.workbench.available_methods(include_disbrw=include_disbrw)

    def plan(self, k: int = 1) -> str:
        """The method ``method="auto"`` would run for this workload."""
        return plan_method(
            self.graph,
            self.objects,
            k=k,
            bench=self.workbench,
            density_threshold=self.density_threshold,
        )

    def resolve_method(self, method: str = "auto", k: int = 1) -> str:
        if method in (None, "auto"):
            return self.plan(k)
        get_method(method)  # raises UnknownMethod with the known list
        return method

    def method_kernel(self, method: str) -> Optional[str]:
        """The kernel ``method`` runs on here, or None if it has no knob."""
        spec = get_method(method)
        return self.kernel if spec.supports_kernel else None

    def algorithm(self, method: str, **kwargs) -> KNNAlgorithm:
        """The cached algorithm instance for ``method`` (built on first use).

        Kernel-aware methods receive the engine's resolved ``kernel``
        unless the caller overrides it explicitly in ``kwargs``.

        Thread-safe: server workers sharing one engine double-check
        under a lock, so concurrent first uses construct each instance
        exactly once (the underlying road-network indexes are likewise
        built once — ``IndexCache`` holds per-kind build locks).
        """
        if "kernel" not in kwargs and get_method(method).supports_kernel:
            kwargs["kernel"] = self.kernel
        key = (method, tuple(sorted(kwargs.items())))
        alg = self._algorithms.get(key)
        if alg is None:
            with self._algorithms_lock:
                alg = self._algorithms.get(key)
                if alg is None:
                    alg = self.workbench.make(method, self.objects, **kwargs)
                    self._algorithms[key] = alg
        return alg

    def with_objects(self, objects: Sequence[int]) -> "QueryEngine":
        """A new engine over the same (shared) indexes, new object set."""
        return QueryEngine(
            workbench=self.workbench,
            objects=objects,
            density_threshold=self.density_threshold,
            kernel=self.kernel,
        )

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def invalidate_algorithms(self) -> None:
        """Drop every cached algorithm instance (rebuilt lazily on use).

        Needed after the shared graph's weights change out from under
        this engine — e.g. a sibling engine over the same workbench ran
        :meth:`apply_updates` — because instances snapshot weight-derived
        state at construction (INE's flat weight lists, oracle caches).
        """
        with self._algorithms_lock:
            self._algorithms.clear()

    def apply_updates(self, deltas: Sequence) -> "UpdateReport":
        """Apply a mixed stream of live deltas; return what was touched.

        ``deltas`` mixes :class:`~repro.updates.ObjectDelta` (add /
        remove / move POIs in *this* engine's object set) and
        :class:`~repro.updates.WeightDelta` (absolute travel-weight
        changes on the shared road network).

        Weight deltas flow through
        :meth:`IndexCache.apply_weight_deltas`: the graph mutates once
        and every built index is repaired in place (or dropped when it
        cannot be).  All cached algorithm instances are then discarded —
        they snapshot weights at construction.  Sibling engines sharing
        the workbench must call :meth:`invalidate_algorithms` themselves
        (the server does this for every registered category).

        Object deltas are resolved into net adds/removes against the
        current object set (validated in stream order — adding a present
        object or removing a missing one raises ``ValueError``), then
        pushed into every live algorithm instance via ``update_objects``;
        instances whose object index cannot be patched in place are
        dropped and noted in ``report.dropped``.
        """
        from repro.updates import (
            UpdateReport,
            net_object_changes,
            split_deltas,
        )

        start = time.perf_counter()
        with _span("apply_updates", deltas=len(deltas)):
            obj_deltas, weight_deltas = split_deltas(deltas)
            report = UpdateReport()
            if weight_deltas:
                with _span("weight_deltas", n=len(weight_deltas)):
                    changed, repaired, dropped = (
                        self.workbench.apply_weight_deltas(weight_deltas)
                    )
                report.weight_changes.extend(changed)
                for name, counters in repaired.items():
                    report.merge_repair(name, counters)
                report.dropped.extend(dropped)
                if changed:
                    self.invalidate_algorithms()
            if obj_deltas:
                with _span("object_deltas", n=len(obj_deltas)):
                    added, removed = net_object_changes(
                        obj_deltas, self.objects
                    )
                    report.objects_added = len(added)
                    report.objects_removed = len(removed)
                    if added or removed:
                        removed_set = set(removed)
                        self.objects = [
                            o for o in self.objects if o not in removed_set
                        ] + added
                        with self._algorithms_lock:
                            for key, alg in list(self._algorithms.items()):
                                try:
                                    alg.update_objects(added, removed)
                                except NotImplementedError:
                                    del self._algorithms[key]
                                    report.dropped.append(
                                        f"{key[0]}-instance"
                                    )
        report.elapsed_s = time.perf_counter() - start
        reg = obs.REGISTRY
        if reg.enabled:
            reg.histogram(
                "update_apply_seconds", "engine apply_updates latency"
            ).observe(report.elapsed_s)
            reg.counter(
                "update_weight_changes_total", "effective edge-weight changes"
            ).inc(len(report.weight_changes))
            reg.counter(
                "update_objects_changed_total", "net POI adds + removes"
            ).inc(report.objects_added + report.objects_removed)
            for name in report.dropped:
                reg.counter(
                    "update_dropped_total",
                    "indexes/instances dropped by an update",
                    what=name,
                ).inc()
        return report

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def query(
        self,
        query: Union[int, KNNQuery],
        k: Optional[int] = None,
        method: Optional[str] = None,
        *,
        with_paths: Optional[bool] = None,
        counters: Optional[Counters] = None,
        avoid_methods: frozenset = frozenset(),
    ) -> KNNResult:
        """Answer one kNN query, returning a structured :class:`KNNResult`.

        ``query`` may be a vertex id (``k`` required, ``method`` defaults
        to ``"auto"``) or a :class:`KNNQuery`, whose fields are used
        unless explicitly overridden by these arguments.

        ``method="auto"`` applies the density heuristic from the paper's
        headline result (Figures 11/16/24): when object density
        ``|O| / |V|`` is at or above the planner threshold (default
        ``0.01``, one object per 100 vertices) INE is chosen, because its
        expansion settles almost no vertices before finding k objects; at
        lower densities the first runnable entry of ``ier-gt``,
        ``gtree``, ``ier-phl``, ``ine`` wins.  The resolved method name
        is recorded in ``KNNResult.method``.

        Other parameters: ``with_paths=True`` attaches reconstructed
        shortest paths to each :class:`~repro.engine.query.Neighbor`;
        ``counters`` supplies a
        :class:`~repro.utils.counters.Counters` to record
        algorithm-internal events into (a fresh one is created
        otherwise and returned on the result).

        Graceful degradation: when the resolved method fails with a
        *degradable* error (an index could not be built or loaded, a
        kernel raised, an injected fault fired — see
        :func:`repro.resilience.errors.is_degradable`) the engine walks
        :meth:`fallback_chain` and answers with the first method that
        succeeds.  Every method is exact, so the ``(distance, vertex)``
        answer is identical — only the provenance changes:
        ``KNNResult.degraded`` is True and ``fallback_from`` names the
        method that failed.  ``avoid_methods`` pre-emptively skips
        methods (the server passes the circuit-broken ones), producing
        the same degraded provenance without waiting for the failure.
        Non-degradable errors (bad arguments, repair failures, worker
        control-flow) propagate unchanged.

        Raises :class:`~repro.engine.registry.UnknownMethod` for names
        the registry has never seen and
        :class:`~repro.engine.registry.MethodUnavailable` when the named
        method cannot run on this network (e.g. SILC over its vertex
        cap) and every fallback is exhausted.
        """
        q = normalise_query(query, k, method, with_paths)
        c = counters if counters is not None else Counters()
        with _span("query", vertex=q.vertex, k=q.k) as qspan:
            with _span("plan"):
                resolved = self.resolve_method(q.method, q.k)
            qspan.annotate(method=resolved)
            if not self.objects:
                # An empty object set has an exact answer — no neighbors
                # — and several algorithms cannot even be constructed
                # over it (IER's R-tree needs at least one object), so
                # short-circuit before any algorithm instance is built.
                kernel = self.method_kernel(resolved)
                obs.record_query(
                    resolved, 0.0, c, kernel=kernel,
                    vertex=q.vertex, k=q.k, trace=qspan,
                )
                return KNNResult(
                    query=q, method=resolved, neighbors=(), counters=c,
                    time_s=0.0, kernel=kernel,
                )
            last_error: Optional[BaseException] = None
            if resolved not in avoid_methods:
                try:
                    return self._execute(q, resolved, None, c, qspan)
                except Exception as exc:
                    if not classify(exc).degradable:
                        raise
                    last_error = exc
                    self._note_method_error(resolved, exc)
            # Degraded path: the planner's choice failed (or an open
            # circuit breaker told us not to try it).  Built lazily so
            # the healthy hot path never pays for it.
            for name, kernel_override in self.fallback_chain(
                resolved, avoid_methods
            ):
                try:
                    result = self._execute(
                        q, name, kernel_override, c, qspan,
                        fallback_from=resolved,
                    )
                except Exception as exc:
                    if not classify(exc).degradable:
                        raise
                    last_error = exc
                    self._note_method_error(name, exc)
                    continue
                reg = obs.REGISTRY
                if reg.enabled:
                    reg.counter(
                        "engine_fallback_total",
                        "queries answered by a fallback method",
                        from_method=resolved,
                        to_method=name,
                    ).inc()
                return result
            if last_error is not None:
                raise last_error
            raise MethodUnavailable(resolved, "no fallback method available")

    def fallback_chain(
        self, resolved: str, avoid_methods: frozenset = frozenset()
    ) -> List[tuple]:
        """Ordered ``(method, kernel_override)`` rungs to try after
        ``resolved`` failed.

        Planner preference order first (skipping ``resolved``, avoided
        and unavailable methods), then the terminal rung: plain INE on
        the pure-python kernel, which needs no prebuilt index and no
        array backend — it can always answer, just slowly.
        """
        chain: List[tuple] = []
        for name in LOW_DENSITY_METHODS:
            if name == resolved or name in avoid_methods:
                continue
            if self.workbench.method_availability(name) is not None:
                continue
            chain.append((name, None))
        terminal = ("ine", "python")
        tried_terminal = (
            resolved == "ine" or ("ine", None) in chain
        ) and self.kernel == "python"
        if not tried_terminal:
            chain.append(terminal)
        return chain

    def _note_method_error(self, name: str, exc: BaseException) -> None:
        reg = obs.REGISTRY
        if reg.enabled:
            reg.counter(
                "engine_method_errors_total",
                "query attempts that raised, by method and error class",
                method=name,
                **{"class": classify(exc).name},
            ).inc()

    def _execute(
        self,
        q: KNNQuery,
        method: str,
        kernel_override: Optional[str],
        c: Counters,
        qspan,
        fallback_from: Optional[str] = None,
    ) -> KNNResult:
        """Run one method end to end (ensure index, search, paths)."""
        with _span("ensure", method=method):
            if (
                kernel_override is not None
                and get_method(method).supports_kernel
            ):
                kernel: Optional[str] = kernel_override
                alg = self.algorithm(method, kernel=kernel_override)
            else:
                kernel = self.method_kernel(method)
                alg = self.algorithm(method)
        with _span("knn", method=method) as kspan:
            start = time.perf_counter()
            raw = alg.knn(q.vertex, q.k, counters=c)
            elapsed = time.perf_counter() - start
            kspan.annotate(**c.as_dict())
        paths: Dict[int, tuple] = {}
        if q.with_paths:
            with _span("paths", n=len(raw)):
                paths = shortest_paths_to(
                    self.graph, q.vertex, [v for _, v in raw]
                )
        neighbors = tuple(
            Neighbor(
                float(d),
                int(v),
                path=tuple(paths[int(v)][1]) if int(v) in paths else None,
            )
            for d, v in raw
        )
        degraded = fallback_from is not None
        if degraded:
            qspan.annotate(degraded=True, fallback_from=fallback_from)
        obs.record_query(
            method, elapsed, c, kernel=kernel,
            vertex=q.vertex, k=q.k, trace=qspan,
        )
        return KNNResult(
            query=q, method=method, neighbors=neighbors, counters=c,
            time_s=elapsed, kernel=kernel,
            degraded=degraded, fallback_from=fallback_from,
        )

    def batch(
        self,
        queries: Sequence[Union[int, KNNQuery]],
        k: Optional[int] = None,
        method: Optional[str] = None,
        *,
        with_paths: Optional[bool] = None,
    ) -> List[KNNResult]:
        """Answer a workload of queries, amortising index construction.

        ``queries`` mixes bare vertex ids (``k`` then required) and
        :class:`KNNQuery` objects; explicit ``k`` / ``method`` /
        ``with_paths`` override the fields of any :class:`KNNQuery`
        entries.  Returns one :class:`KNNResult` per input, in order.

        Queries sharing a method reuse one algorithm instance (and the
        road-network indexes behind it), so the per-query cost converges
        to pure search time — the quantity the paper's figures report.
        ``method="auto"`` resolves per query via the density heuristic
        (see :meth:`query`).

        Identical entries — same ``(vertex, k, method, with_paths)`` —
        are computed once and the *same* :class:`KNNResult` object is
        returned at every duplicate position; each reuse records a
        ``batch_dedup_hits`` event on :attr:`counters`.  Real workloads
        are heavily skewed, so a hot POI junction queried a hundred
        times in one batch costs one search.
        """
        normalized = as_queries(queries, k=k, method=method, with_paths=with_paths)
        computed: Dict[KNNQuery, KNNResult] = {}
        out: List[KNNResult] = []
        with _span("batch", size=len(normalized)) as bspan:
            for q in normalized:
                result = computed.get(q)
                if result is not None:
                    self.counters.add("batch_dedup_hits")
                else:
                    result = self.query(q)
                    computed[q] = result
                out.append(result)
            bspan.annotate(unique=len(computed))
        reg = obs.REGISTRY
        if reg.enabled and normalized:
            reg.histogram(
                "engine_batch_size", "queries per engine batch"
            ).observe(len(normalized))
            reg.counter(
                "engine_batch_dedup_hits_total",
                "batch entries answered by reusing an identical query",
            ).inc(len(normalized) - len(computed))
        return out

    def explain(
        self,
        query: int,
        k: int,
        methods: Optional[Sequence[str]] = None,
    ) -> Dict[str, KNNResult]:
        """Run every (or the given) method on one query.

        ``methods`` defaults to :meth:`available_methods` — the paper's
        main-comparison lineup runnable on this network (DisBrw drops
        out above the SILC vertex cap).  Returns ``{method_name:
        KNNResult}``; each result carries that method's counters and
        wall-clock time — per-method cost profiles on identical input,
        the paper's Section 7 methodology in one call.
        """
        if methods is None:
            methods = self.available_methods()
        return {
            m: self.query(query, k, method=m, counters=Counters())
            for m in methods
        }
