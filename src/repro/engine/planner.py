"""Density-based auto method planner (``method="auto"``).

Encodes the paper's headline finding (Figures 11/16/24): INE's expansion
cost is proportional to the number of vertices closer than the k-th
object, so it wins when objects are dense (the expansion stops almost
immediately) and loses badly when they are sparse — where the
Euclidean-restriction family with a fast oracle (IER over a materialized
G-tree, "MGtree") dominates.  The crossover in the paper's experiments
sits around one object per ~100 vertices; :data:`AUTO_DENSITY_THRESHOLD`
is that boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.graph import Graph

#: Object density (|O| / |V|) at and above which INE is planned.
AUTO_DENSITY_THRESHOLD = 0.01

#: Low-density preference order; first one runnable on the workbench wins.
LOW_DENSITY_METHODS = ("ier-gt", "gtree", "ier-phl", "ine")


def plan_method(
    graph: Graph,
    objects: Sequence[int],
    k: int = 1,
    bench=None,
    density_threshold: Optional[float] = None,
) -> str:
    """Pick a method name for this workload.

    High density plans INE; low density plans the first runnable entry
    of :data:`LOW_DENSITY_METHODS`.  ``bench`` (an index cache) is only
    consulted for applicability; no index is built here.
    """
    threshold = (
        AUTO_DENSITY_THRESHOLD if density_threshold is None else density_threshold
    )
    density = len(objects) / max(1, graph.num_vertices)
    if density >= threshold:
        return "ine"
    if bench is not None:
        for name in LOW_DENSITY_METHODS:
            if bench.method_availability(name) is None:
                return name
    return LOW_DENSITY_METHODS[0]
