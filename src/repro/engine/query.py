"""Structured query/response objects for the :class:`QueryEngine` API.

The kNN algorithm classes keep returning bare ``[(distance, vertex), ...]``
lists — that is the hot-path representation the paper's measurements time.
At the service boundary the engine wraps them in :class:`KNNResult`, which
adds provenance (which method actually ran), per-query :class:`Counters`,
wall-clock time and optionally the reconstructed shortest paths, while
still *iterating* as ``(distance, vertex)`` pairs so every existing
consumer (``verify_knn_result``, the CLI printers, the examples) keeps
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.utils.counters import Counters


@dataclass(frozen=True)
class KNNQuery:
    """One kNN request: a query vertex, ``k`` and a method choice.

    ``method`` may be any registry name or ``"auto"`` (the default), in
    which case the engine's planner picks one from the workload's object
    density — INE at or above the crossover threshold, an IER/G-tree
    method below it (see :mod:`repro.engine.planner`).  With
    ``with_paths=True`` the engine attaches the reconstructed shortest
    path to every returned :class:`Neighbor`.
    """

    vertex: int
    k: int
    method: str = "auto"
    with_paths: bool = False


@dataclass(frozen=True, order=True)
class Neighbor:
    """One result entry; unpacks as ``(distance, vertex)``."""

    distance: float
    vertex: int
    path: Optional[Tuple[int, ...]] = field(
        default=None, compare=False, repr=False
    )

    def __iter__(self) -> Iterator[Union[float, int]]:
        return iter((self.distance, self.vertex))

    def as_tuple(self) -> Tuple[float, int]:
        return (self.distance, self.vertex)


@dataclass(eq=False)
class KNNResult:
    """A kNN answer with provenance, counters and timing.

    Back-compat: iterating, indexing and length behave like the raw
    ``[(distance, vertex), ...]`` list the algorithm classes return —
    ``for d, v in result`` and ``result[0]`` both work — and ``==``
    against such a list compares the ``(distance, vertex)`` pairs.
    """

    query: KNNQuery
    method: str
    neighbors: Tuple[Neighbor, ...]
    counters: Counters
    time_s: float
    #: Hot-path kernel the method ran on (``"python"`` / ``"array"``), or
    #: ``None`` for methods without a kernel knob.
    kernel: Optional[str] = None
    #: True when the answer came from a fallback method because the
    #: planner's choice failed (or was avoided by an open circuit
    #: breaker).  The answer is still exact — every method is — but the
    #: provenance differs from a healthy run.
    degraded: bool = False
    #: The method the planner resolved that this result degraded *from*
    #: (``None`` on a healthy, non-degraded result).
    fallback_from: Optional[str] = None

    # ------------------------------------------------------------------
    # Tuple-list back-compat surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    def __getitem__(self, index):
        return self.neighbors[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, KNNResult):
            return self.as_tuples() == other.as_tuples()
        if isinstance(other, (list, tuple)):
            try:
                return self.as_tuples() == [
                    (float(d), int(v)) for d, v in other
                ]
            except (TypeError, ValueError):
                return NotImplemented
        return NotImplemented

    __hash__ = None  # mutable counters inside; unhashable like a list

    def as_tuples(self) -> List[Tuple[float, int]]:
        """The raw ``[(distance, vertex), ...]`` list."""
        return [n.as_tuple() for n in self.neighbors]

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def distances(self) -> List[float]:
        return [n.distance for n in self.neighbors]

    @property
    def vertices(self) -> List[int]:
        return [n.vertex for n in self.neighbors]

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6

    def __repr__(self) -> str:
        shown = ", ".join(f"v{n.vertex}@{n.distance:.2f}" for n in self.neighbors)
        return (
            f"KNNResult(method={self.method!r}, k={self.query.k}, "
            f"[{shown}], {self.time_us:.0f}us)"
        )


def normalise_query(
    query: Union[int, KNNQuery],
    k: Optional[int] = None,
    method: Optional[str] = None,
    with_paths: Optional[bool] = None,
) -> KNNQuery:
    """Build a :class:`KNNQuery` from a vertex id or an existing query.

    Explicitly passed ``k`` / ``method`` / ``with_paths`` override the
    corresponding fields of an existing :class:`KNNQuery` (``None`` means
    "not specified", so the query's own fields win).
    """
    if isinstance(query, KNNQuery):
        return replace(
            query,
            **{
                name: value
                for name, value in (
                    ("k", k), ("method", method), ("with_paths", with_paths)
                )
                if value is not None
            },
        )
    if k is None:
        raise ValueError("k is required when the query is a bare vertex id")
    return KNNQuery(
        int(query),
        int(k),
        method="auto" if method is None else method,
        with_paths=bool(with_paths),
    )


def as_queries(
    queries: Sequence[Union[int, KNNQuery]],
    k: Optional[int] = None,
    method: Optional[str] = None,
    with_paths: Optional[bool] = None,
) -> List[KNNQuery]:
    """Normalise a workload via :func:`normalise_query` per entry."""
    return [normalise_query(q, k, method, with_paths) for q in queries]
