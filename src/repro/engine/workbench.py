"""Lazily built, shared index cache for one road network.

``IndexCache`` owns every road-network index (G-tree, ROAD, SILC, CH, hub
labels, TNR), building each at most once on first access — the paper's
"same subroutines for common tasks" methodology.  Method construction
itself delegates to the :mod:`repro.engine.registry`, so the cache knows
nothing about individual kNN methods.

``repro.experiments.runner.Workbench`` is a thin subclass kept for the
experiment harness and back-compat imports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engine import registry
from repro.graph.graph import Graph
from repro.index.gtree import GTree
from repro.index.road import RoadIndex
from repro.index.silc import SILCIndex
from repro.knn.base import KNNAlgorithm
from repro.pathfinding.ch import ContractionHierarchy
from repro.pathfinding.hub_labels import HubLabels
from repro.pathfinding.tnr import TransitNodeRouting

#: SILC requires all-pairs work; like the paper (which could build DisBrw
#: only on the five smallest datasets) we cap the network size it is
#: built for.
SILC_MAX_VERTICES = 9000


def as_index_cache(bench_or_engine):
    """Coerce a ``QueryEngine`` (anything holding ``.workbench``) or an
    :class:`IndexCache`/``Workbench`` to the underlying index cache."""
    return getattr(bench_or_engine, "workbench", bench_or_engine)


class IndexCache:
    """Lazily built index collection for one road network."""

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        tau: Optional[int] = None,
        road_levels: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.seed = seed
        self._tau = tau
        self._road_levels = road_levels
        self._gtree: Optional[GTree] = None
        self._road: Optional[RoadIndex] = None
        self._silc: Optional[SILCIndex] = None
        self._ch: Optional[ContractionHierarchy] = None
        self._hub_labels: Optional[HubLabels] = None
        self._tnr: Optional[TransitNodeRouting] = None

    # ------------------------------------------------------------------
    @property
    def gtree(self) -> GTree:
        if self._gtree is None:
            self._gtree = GTree(self.graph, tau=self._tau, seed=self.seed)
        return self._gtree

    @property
    def road(self) -> RoadIndex:
        if self._road is None:
            self._road = RoadIndex(
                self.graph, levels=self._road_levels, seed=self.seed
            )
        return self._road

    def _silc_limit(self) -> int:
        """Overridable hook so subclasses can point at their own cap."""
        return SILC_MAX_VERTICES

    @property
    def silc_limit(self) -> int:
        return self._silc_limit()

    @property
    def silc(self) -> SILCIndex:
        if self._silc is None:
            if self.graph.num_vertices > self.silc_limit:
                raise MemoryError(
                    f"SILC capped at {self.silc_limit} vertices "
                    f"(network has {self.graph.num_vertices}); the paper "
                    "hits the same wall on its five largest datasets"
                )
            self._silc = SILCIndex(self.graph)
        return self._silc

    @property
    def silc_available(self) -> bool:
        return self.graph.num_vertices <= self.silc_limit

    @property
    def ch(self) -> ContractionHierarchy:
        if self._ch is None:
            self._ch = ContractionHierarchy(self.graph)
        return self._ch

    @property
    def hub_labels(self) -> HubLabels:
        if self._hub_labels is None:
            order = list(np.argsort(-self.ch.rank))
            self._hub_labels = HubLabels(self.graph, order=order)
        return self._hub_labels

    @property
    def tnr(self) -> TransitNodeRouting:
        if self._tnr is None:
            self._tnr = TransitNodeRouting(self.graph, ch=self.ch)
        return self._tnr

    # ------------------------------------------------------------------
    def make(self, method: str, objects: Sequence[int], **kwargs) -> KNNAlgorithm:
        """Construct a kNN method instance via the method registry.

        Raises :class:`~repro.engine.registry.UnknownMethod` for names the
        registry has never seen and
        :class:`~repro.engine.registry.MethodUnavailable` (with the
        reason) for methods that cannot run on this network.
        """
        return registry.create_method(self, method, objects, **kwargs)

    def available_methods(self, include_disbrw: bool = True) -> List[str]:
        """The paper's main-comparison methods buildable on this network."""
        return registry.available_methods(self, include_disbrw=include_disbrw)

    def method_availability(self, method: str) -> Optional[str]:
        """``None`` if ``method`` can run here, else the reason it cannot."""
        return registry.get_method(method).availability(self)

    def engine(self, objects: Sequence[int], **kwargs):
        """A :class:`~repro.engine.engine.QueryEngine` sharing these indexes."""
        from repro.engine.engine import QueryEngine

        return QueryEngine(workbench=self, objects=objects, **kwargs)
