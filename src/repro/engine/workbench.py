"""Lazily built, shared index cache for one road network.

``IndexCache`` owns every road-network index (G-tree, ROAD, SILC, CH, hub
labels, TNR), building each at most once on first access — the paper's
"same subroutines for common tasks" methodology.  Method construction
itself delegates to the :mod:`repro.engine.registry`, so the cache knows
nothing about individual kNN methods.

With a ``store=`` backing (:class:`repro.store.IndexStore`), a cache miss
first tries disk before building: an index previously built for the same
graph and build parameters is rehydrated from its ``.npz`` artifact in
milliseconds, and a fresh build is saved for the next process.  That is
the paper's preprocessing/query split made operational — construction
cost is paid once per (graph, parameters), not once per run.

``repro.experiments.runner.Workbench`` is a thin subclass kept for the
experiment harness and back-compat imports.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.engine import registry
from repro.obs.tracing import span as _span
from repro.resilience.faults import FaultError, fault_check
from repro.graph.graph import Graph
from repro.index.gtree import GTree
from repro.index.road import RoadIndex
from repro.index.silc import SILCIndex
from repro.knn.base import KNNAlgorithm
from repro.pathfinding.ch import ContractionHierarchy
from repro.pathfinding.hub_labels import HubLabels
from repro.pathfinding.tnr import TransitNodeRouting

#: SILC requires all-pairs work; like the paper (which could build DisBrw
#: only on the five smallest datasets) we cap the network size it is
#: built for.
SILC_MAX_VERTICES = 9000


def as_index_cache(bench_or_engine):
    """Coerce a ``QueryEngine`` (anything holding ``.workbench``) or an
    :class:`IndexCache`/``Workbench`` to the underlying index cache."""
    return getattr(bench_or_engine, "workbench", bench_or_engine)


class IndexCache:
    """Lazily built index collection for one road network.

    Parameters
    ----------
    graph:
        Road network the indexes are built over.
    seed:
        Partitioning seed shared by the G-tree and ROAD builds.
    tau, road_levels:
        Optional build-parameter overrides (G-tree leaf capacity, ROAD
        hierarchy depth).
    store:
        Optional :class:`repro.store.IndexStore`.  When set, every index
        property first tries to load a matching artifact from disk and
        saves freshly built indexes back — see :meth:`_obtain`.
    kernel:
        Build-kernel knob forwarded to the kernel-aware index
        constructors (G-tree's bulk build, TNR's bulk transit table).
        ``None`` resolves to the process default (``array``); pass
        ``"python"`` to force the reference builders.
    """

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        tau: Optional[int] = None,
        road_levels: Optional[int] = None,
        store=None,
        kernel: Optional[str] = None,
    ) -> None:
        from repro.kernels.config import resolve_kernel

        self.graph = graph
        self.seed = seed
        self.store = store
        self.kernel = resolve_kernel(kernel)
        self._tau = tau
        self._road_levels = road_levels
        self._gtree: Optional[GTree] = None
        self._road: Optional[RoadIndex] = None
        self._silc: Optional[SILCIndex] = None
        self._ch: Optional[ContractionHierarchy] = None
        self._hub_labels: Optional[HubLabels] = None
        self._tnr: Optional[TransitNodeRouting] = None
        # Per-kind build locks (created on demand under the guard): two
        # server workers racing to the same cold index serialise on its
        # kind's lock and the loser reuses the winner's build, while
        # different kinds still build in parallel.
        self._build_locks: Dict[str, threading.Lock] = {}
        self._build_locks_guard = threading.Lock()

    # ------------------------------------------------------------------
    def _build_lock(self, kind: str) -> threading.Lock:
        with self._build_locks_guard:
            lock = self._build_locks.get(kind)
            if lock is None:
                lock = self._build_locks[kind] = threading.Lock()
            return lock

    def _ensure(self, kind: str, obtain: Callable[[], object]):
        """Double-checked, per-kind-locked memoisation of one index slot.

        The unlocked fast path costs one attribute read once the index
        exists; a cold slot takes the kind's lock, re-checks (another
        thread may have built while we waited) and only then builds —
        so an index is never constructed twice, which the concurrency
        regression test asserts via ``BUILD_COUNTERS``.
        """
        slot = "_" + kind
        current = getattr(self, slot)
        if current is not None:
            return current
        with self._build_lock(kind):
            current = getattr(self, slot)
            if current is None:
                current = obtain()
                setattr(self, slot, current)
            return current

    def _obtain(
        self,
        kind: str,
        params: Dict[str, object],
        build: Callable[[], object],
        deps: Optional[Dict[str, object]] = None,
    ):
        """Load ``kind`` from the store if possible, else build and save.

        A clean store miss (:class:`~repro.store.ArtifactMissing`) falls
        through to ``build()``.  Store damage
        (:class:`~repro.store.StoreCorruption`) is **quarantined**: the
        bad artifact is moved into ``<store>/quarantine/`` (preserved
        for post-mortem), counted, and the index rebuilt — a corrupt
        cache entry must never take the query path down.  A failed save
        after a fresh build is likewise tolerated (counted; the built
        index still serves) — persistence is an optimisation, not a
        correctness requirement.
        """
        if self.store is None:
            return self._timed_build(kind, build)
        from repro.store import (
            ArtifactMissing,
            StoreCorruption,
            StoreError,
            artifact_key,
            load_index,
            save_index,
        )

        try:
            with _span("index_load", kind=kind):
                index = load_index(
                    self.store, kind, self.graph, params=params, deps=deps
                )
            # A flat artifact arrives as read-only mmap views shared
            # through the page cache; label the counter so operators can
            # see which loads were zero-copy.  Such an index repairs
            # like any store-loaded one: RepairUnavailable -> drop and
            # rebuild (its arrays are not writable anyway).
            source = "loaded"
            with contextlib.suppress(StoreError):
                info = self.store.info(kind, artifact_key(self.graph, params))
                if getattr(info, "format", "npz") == "flat":
                    source = "loaded_mmap"
            self._note_obtained(kind, source)
            return index
        except ArtifactMissing:
            pass
        except StoreCorruption as exc:
            from repro.resilience.quarantine import quarantine_artifact

            quarantine_artifact(
                self.store, kind, artifact_key(self.graph, params),
                reason=str(exc),
            )
        index = self._timed_build(kind, build)
        try:
            with _span("index_save", kind=kind):
                save_index(
                    self.store, kind, self.graph, index, params=params
                )
        except StoreError:
            reg = obs.REGISTRY
            if reg.enabled:
                reg.counter(
                    "store_save_failures_total",
                    "index artifact saves that failed (index still serves)",
                    kind=kind,
                ).inc()
        return index

    def _timed_build(self, kind: str, build: Callable[[], object]):
        """Run ``build()`` under a span, recording its wall time."""
        with _span("index_build", kind=kind):
            fault_check("index.build")
            start = time.perf_counter()
            index = build()
            elapsed = time.perf_counter() - start
        reg = obs.REGISTRY
        if reg.enabled:
            reg.histogram(
                "index_build_seconds", "index construction time", kind=kind
            ).observe(elapsed)
        self._note_obtained(kind, "built")
        return index

    @staticmethod
    def _note_obtained(kind: str, source: str) -> None:
        reg = obs.REGISTRY
        if reg.enabled:
            reg.counter(
                "index_obtained_total",
                "indexes obtained, by kind and source (built/loaded)",
                kind=kind,
                source=source,
            ).inc()

    # ------------------------------------------------------------------
    @property
    def gtree(self) -> GTree:
        # The build kernel keys the artifact: the two kernels partition
        # differently (multilevel vs geometric), so their trees are
        # distinct — both exact — and must not be served interchangeably.
        return self._ensure("gtree", lambda: self._obtain(
            "gtree",
            {"tau": self._tau, "seed": self.seed, "kernel": self.kernel},
            lambda: GTree(
                self.graph, tau=self._tau, seed=self.seed, kernel=self.kernel
            ),
        ))

    @property
    def road(self) -> RoadIndex:
        return self._ensure("road", lambda: self._obtain(
            "road",
            {"levels": self._road_levels, "seed": self.seed},
            lambda: RoadIndex(
                self.graph, levels=self._road_levels, seed=self.seed
            ),
        ))

    def _silc_limit(self) -> int:
        """Overridable hook so subclasses can point at their own cap."""
        return SILC_MAX_VERTICES

    @property
    def silc_limit(self) -> int:
        return self._silc_limit()

    def silc_unavailable_reason(self) -> Optional[str]:
        """Why SILC cannot be built here, or ``None`` when it can.

        The single source for the cap message: the registry's DisBrw
        availability check and the :attr:`silc` property both quote it.
        """
        if self.graph.num_vertices <= self.silc_limit:
            return None
        return (
            f"SILC capped at {self.silc_limit} vertices (network has "
            f"{self.graph.num_vertices}); the paper hits the same wall "
            "on its five largest datasets"
        )

    @property
    def silc(self) -> SILCIndex:
        if self._silc is None:
            reason = self.silc_unavailable_reason()
            if reason is not None:
                raise MemoryError(reason)
        # The build parameters are pinned here and passed explicitly
        # so the artifact key and the constructed index can never
        # disagree (and a manually saved non-default SILC is never
        # served to this cache).
        return self._ensure("silc", lambda: self._obtain(
            "silc",
            {"grid_bits": 11},
            lambda: SILCIndex(self.graph, grid_bits=11),
        ))

    @property
    def silc_available(self) -> bool:
        return self.silc_unavailable_reason() is None

    @property
    def ch(self) -> ContractionHierarchy:
        return self._ensure("ch", lambda: self._obtain(
            "ch",
            {"witness_settle_limit": 40},
            lambda: ContractionHierarchy(self.graph, witness_settle_limit=40),
        ))

    @property
    def hub_labels(self) -> HubLabels:
        def build() -> HubLabels:
            order = list(np.argsort(-self.ch.rank))
            return HubLabels(self.graph, order=order)

        return self._ensure("hub_labels", lambda: self._obtain(
            "hub_labels", {"order": "ch-rank"}, build
        ))

    @property
    def tnr(self) -> TransitNodeRouting:
        # Resolving ``self.ch`` inside the tnr lock takes the ch lock
        # while holding tnr's — safe because dependency edges only point
        # one way (ch never locks a dependant), so the lock order is
        # acyclic.  The same holds for hub_labels -> ch.
        # The transit table's values are kernel-independent (both builds
        # are exact), so the artifact key deliberately omits the kernel.
        return self._ensure("tnr", lambda: self._obtain(
            "tnr",
            {"num_transit": None, "grid_size": 32, "locality_cells": 4},
            lambda: TransitNodeRouting(
                self.graph,
                ch=self.ch,
                num_transit=None,
                grid_size=32,
                locality_cells=4,
                kernel=self.kernel,
            ),
            deps={"ch": self.ch} if self.store is not None else None,
        ))

    # ------------------------------------------------------------------
    # Live weight updates
    # ------------------------------------------------------------------
    def apply_weight_deltas(self, deltas: Sequence):
        """Mutate the graph and repair the built indexes in place.

        Coalesces ``deltas`` (last writer wins per edge), applies them to
        the shared :class:`Graph` and then, per already-built index:

        * ``gtree`` / ``road`` / ``ch`` — bounded in-place repair via the
          index's own ``apply_weight_deltas`` (affected G-tree nodes /
          ROAD Rnets / CH shortcuts only).  An index that cannot repair
          itself (:class:`~repro.updates.RepairUnavailable`, e.g. loaded
          without provenance) is dropped and rebuilt lazily on next use.
        * ``silc`` / ``hub_labels`` / ``tnr`` — always dropped; their
          all-pairs nature admits no bounded repair.

        Unbuilt slots cost nothing.  Repaired indexes are *not* written
        back to the store — the mutated graph has a new fingerprint, so
        a later cold start simply rebuilds (and saves) under the new key;
        artifacts for the old weights stay valid for the old graph.

        Returns ``(changed, repaired, dropped)``: the graph's effective
        ``(u, v, old, new)`` list, per-index repair counters, and the
        names of dropped index kinds.
        """
        from repro.updates import RepairUnavailable, coalesce_weight_deltas

        changed = self.graph.apply_weight_deltas(
            coalesce_weight_deltas(deltas)
        )
        repaired: Dict[str, Dict[str, int]] = {}
        dropped: List[str] = []
        if not changed:
            return changed, repaired, dropped
        reg = obs.REGISTRY
        for kind in ("gtree", "road", "ch"):
            slot = "_" + kind
            with self._build_lock(kind):
                index = getattr(self, slot)
                if index is None:
                    continue
                try:
                    with _span("index_repair", kind=kind):
                        fault_check("index.repair")
                        start = time.perf_counter()
                        repaired[kind] = index.apply_weight_deltas(changed)
                        elapsed = time.perf_counter() - start
                    if reg.enabled:
                        reg.histogram(
                            "index_repair_seconds",
                            "in-place index repair time",
                            kind=kind,
                        ).observe(elapsed)
                except (RepairUnavailable, FaultError):
                    # An injected repair fault degrades exactly like a
                    # real RepairUnavailable: drop the slot, rebuild
                    # lazily.  The graph already mutated, so serving the
                    # unrepaired index would be wrong; dropping is safe.
                    setattr(self, slot, None)
                    dropped.append(kind)
        for kind in ("silc", "hub_labels", "tnr"):
            slot = "_" + kind
            with self._build_lock(kind):
                if getattr(self, slot) is not None:
                    setattr(self, slot, None)
                    dropped.append(kind)
        if reg.enabled:
            for kind in dropped:
                reg.counter(
                    "index_dropped_total",
                    "built indexes dropped by weight updates",
                    kind=kind,
                ).inc()
        return changed, repaired, dropped

    # ------------------------------------------------------------------
    def prebuild(self, kinds: Sequence[str]) -> List[str]:
        """Force-build (or warm-load) the named indexes, dependencies first.

        ``kinds`` are attribute names from the registry's ``requires``
        declarations (``gtree``, ``road``, ``silc``, ``ch``,
        ``hub_labels``, ``tnr``); each is expanded with its artifact
        dependencies (e.g. ``tnr``/``hub_labels`` pull in ``ch``) so no
        kind's construction silently folds another's build into it.
        Returns the kinds actually obtained, in order — with a
        ``store=`` backing each is now persisted on disk.
        """
        from repro.store import expand_kinds

        obtained: List[str] = []
        with _span("prebuild", kinds=",".join(kinds)):
            for kind in expand_kinds(kinds):
                if kind == "silc" and not self.silc_available:
                    continue
                getattr(self, kind)
                obtained.append(kind)
        return obtained

    # ------------------------------------------------------------------
    def make(self, method: str, objects: Sequence[int], **kwargs) -> KNNAlgorithm:
        """Construct a kNN method instance via the method registry.

        Raises :class:`~repro.engine.registry.UnknownMethod` for names the
        registry has never seen and
        :class:`~repro.engine.registry.MethodUnavailable` (with the
        reason) for methods that cannot run on this network.
        """
        return registry.create_method(self, method, objects, **kwargs)

    def available_methods(self, include_disbrw: bool = True) -> List[str]:
        """The paper's main-comparison methods buildable on this network."""
        return registry.available_methods(self, include_disbrw=include_disbrw)

    def method_availability(self, method: str) -> Optional[str]:
        """``None`` if ``method`` can run here, else the reason it cannot."""
        return registry.get_method(method).availability(self)

    def engine(self, objects: Sequence[int], **kwargs):
        """A :class:`~repro.engine.engine.QueryEngine` sharing these indexes."""
        from repro.engine.engine import QueryEngine

        return QueryEngine(workbench=self, objects=objects, **kwargs)
