"""Unified query-engine service layer.

This package is the library's primary public API for answering kNN
queries.  It separates three concerns that used to be fused inside the
experiment harness:

* :mod:`repro.engine.registry` — a pluggable **method registry**.  Each
  of the paper's methods (and every IER oracle variant) is declared with
  ``@register_method(name, ...)``: its constructor, the indexes it
  needs, and an applicability check (SILC's vertex cap).  Third-party
  methods plug in the same way — see the module docstring for the
  three-line recipe for adding a sixth method.
* :mod:`repro.engine.workbench` — :class:`IndexCache`, the lazily built,
  shared road-network index collection (G-tree, ROAD, SILC, CH, hub
  labels, TNR) that method builders draw from.
* :mod:`repro.engine.engine` — :class:`QueryEngine`, the facade with
  ``query`` / ``batch`` / ``explain`` and the density-based auto
  planner, returning structured :class:`KNNResult` objects that carry
  provenance, per-query counters and wall-clock time while still
  iterating as ``(distance, vertex)`` pairs.

Quickstart::

    from repro import QueryEngine, road_network, uniform_objects

    graph = road_network(2000, seed=7)
    objects = uniform_objects(graph, density=0.01, seed=1)
    engine = QueryEngine(graph, objects)
    result = engine.query(42, k=5)        # method="auto" picks one
    print(result.method, result.time_us, list(result))
"""

from repro.engine.query import (
    KNNQuery,
    KNNResult,
    Neighbor,
    as_queries,
    normalise_query,
)
from repro.engine.registry import (
    MethodSpec,
    MethodUnavailable,
    UnknownMethod,
    available_methods,
    create_method,
    get_method,
    known_methods,
    method_specs,
    register_method,
    unregister_method,
)
from repro.engine.workbench import SILC_MAX_VERTICES, IndexCache, as_index_cache
from repro.engine.planner import AUTO_DENSITY_THRESHOLD, plan_method
from repro.engine.engine import QueryEngine

__all__ = [
    "QueryEngine",
    "KNNQuery",
    "KNNResult",
    "Neighbor",
    "as_queries",
    "normalise_query",
    "IndexCache",
    "as_index_cache",
    "SILC_MAX_VERTICES",
    "MethodSpec",
    "MethodUnavailable",
    "UnknownMethod",
    "register_method",
    "unregister_method",
    "get_method",
    "known_methods",
    "method_specs",
    "create_method",
    "available_methods",
    "plan_method",
    "AUTO_DENSITY_THRESHOLD",
]
