"""Pluggable kNN method registry.

Every query method the engine can run is declared here as a
:class:`MethodSpec`: a constructor, the workbench indexes it needs, and an
optional applicability check (e.g. SILC's vertex cap).  The registry
replaces the old hard-coded if/else chain in ``Workbench.make`` — adding a
sixth method is one decorated function, no core edits:

    from repro.engine import register_method

    @register_method("mymethod", summary="my kNN method",
                     requires=("gtree",))
    def _build_mymethod(bench, objects, **kwargs):
        return MyKNN(bench.gtree, objects, **kwargs)

after which ``"mymethod"`` works everywhere a method name is accepted —
``QueryEngine.query``, ``Workbench.make``, the CLI's ``--methods`` flag.

Builders receive the index cache (``Workbench``) as their first argument
and use its lazy properties (``bench.graph``, ``bench.gtree``,
``bench.hub_labels``, ...), so indexes are built once and shared across
methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.index.gtree import GTreeOracle
from repro.knn.base import KNNAlgorithm
from repro.knn.distance_browsing import DistanceBrowsing
from repro.knn.gtree_knn import GTreeKNN
from repro.knn.ier import IER
from repro.knn.ine import INE
from repro.knn.road_knn import RoadKNN
from repro.pathfinding.astar import AStarOracle
from repro.pathfinding.dijkstra import DijkstraOracle


class MethodUnavailable(RuntimeError):
    """A registered method cannot run on this workbench.

    Carries the ``method`` name and the human-readable ``reason`` (e.g.
    "SILC capped at 9000 vertices ...") instead of a bare ``MemoryError``
    from deep inside an index constructor.
    """

    def __init__(self, method: str, reason: str) -> None:
        super().__init__(f"method {method!r} unavailable: {reason}")
        self.method = method
        self.reason = reason


class UnknownMethod(ValueError):
    """An unregistered method name; lists the registered ones."""

    def __init__(self, method: str, known: Sequence[str]) -> None:
        super().__init__(
            f"unknown method {method!r}; known methods: {', '.join(known)}"
        )
        self.method = method
        self.known = tuple(known)


#: Applicability check: returns ``None`` when the method can run on the
#: given workbench, or a reason string when it cannot.
AvailabilityCheck = Callable[[object], Optional[str]]


@dataclass(frozen=True)
class MethodSpec:
    """Declaration of one query method."""

    name: str
    builder: Callable[..., KNNAlgorithm]
    summary: str = ""
    requires: Tuple[str, ...] = ()
    check: Optional[AvailabilityCheck] = None
    #: Position in the paper's main-comparison lineup (None = auxiliary
    #: variant that is constructible but not part of the default set).
    main_rank: Optional[int] = None
    #: Whether the builder accepts the ``kernel="python"|"array"`` knob
    #: (the engine forwards its resolved kernel only to these methods).
    supports_kernel: bool = False

    def availability(self, bench) -> Optional[str]:
        """``None`` if runnable on ``bench``, else the reason it is not."""
        return None if self.check is None else self.check(bench)

    def create(self, bench, objects: Sequence[int], **kwargs) -> KNNAlgorithm:
        reason = self.availability(bench)
        if reason is not None:
            raise MethodUnavailable(self.name, reason)
        return self.builder(bench, objects, **kwargs)


_REGISTRY: Dict[str, MethodSpec] = {}


def register_method(
    name: str,
    *,
    summary: str = "",
    requires: Sequence[str] = (),
    check: Optional[AvailabilityCheck] = None,
    main_rank: Optional[int] = None,
    supports_kernel: bool = False,
    replace: bool = False,
) -> Callable[[Callable[..., KNNAlgorithm]], Callable[..., KNNAlgorithm]]:
    """Decorator registering ``builder(bench, objects, **kwargs)`` under ``name``."""

    def decorator(builder: Callable[..., KNNAlgorithm]):
        if name in _REGISTRY and not replace:
            raise ValueError(f"method {name!r} already registered")
        _REGISTRY[name] = MethodSpec(
            name=name,
            builder=builder,
            summary=summary,
            requires=tuple(requires),
            check=check,
            main_rank=main_rank,
            supports_kernel=supports_kernel,
        )
        return builder

    return decorator


def unregister_method(name: str) -> None:
    """Remove a method (tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def get_method(name: str) -> MethodSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMethod(name, known_methods()) from None


def known_methods() -> List[str]:
    """All registered method names, in registration order."""
    return list(_REGISTRY)


def method_specs() -> List[MethodSpec]:
    return list(_REGISTRY.values())


def create_method(bench, name: str, objects: Sequence[int], **kwargs) -> KNNAlgorithm:
    """Construct method ``name`` on ``bench`` (raises on unknown/unavailable)."""
    return get_method(name).create(bench, objects, **kwargs)


def available_methods(bench, include_disbrw: bool = True) -> List[str]:
    """The paper's main-comparison methods runnable on this workbench."""
    main = sorted(
        (s for s in _REGISTRY.values() if s.main_rank is not None),
        key=lambda s: s.main_rank,
    )
    out: List[str] = []
    for spec in main:
        if not include_disbrw and "disbrw" in spec.name:
            continue
        if spec.availability(bench) is None:
            out.append(spec.name)
    return out


# ----------------------------------------------------------------------
# Built-in methods (the paper's five, plus IER oracle variants)
# ----------------------------------------------------------------------
def _silc_check(bench) -> Optional[str]:
    return bench.silc_unavailable_reason()


@register_method(
    "ine",
    summary="Incremental Network Expansion (Dijkstra-style, no road index)",
    main_rank=0,
    supports_kernel=True,
)
def _build_ine(bench, objects, **kwargs):
    return INE(bench.graph, objects, **kwargs)


@register_method(
    "gtree",
    summary="G-tree hierarchy traversal with occurrence lists",
    requires=("gtree",),
    main_rank=2,
    supports_kernel=True,
)
def _build_gtree(bench, objects, **kwargs):
    return GTreeKNN(bench.gtree, objects, **kwargs)


@register_method(
    "road",
    summary="ROAD expansion with Rnet bypassing",
    requires=("road",),
    main_rank=1,
)
def _build_road(bench, objects, **kwargs):
    return RoadKNN(bench.road, objects, **kwargs)


@register_method(
    "disbrw",
    summary="Distance Browsing over SILC (DB-ENN candidates)",
    requires=("silc",),
    check=_silc_check,
    main_rank=5,
    supports_kernel=True,
)
def _build_disbrw(bench, objects, **kwargs):
    return DistanceBrowsing(bench.silc, objects, **kwargs)


@register_method(
    "disbrw-oh",
    summary="Distance Browsing over SILC (Object Hierarchy candidates)",
    requires=("silc",),
    check=_silc_check,
    supports_kernel=True,
)
def _build_disbrw_oh(bench, objects, **kwargs):
    return DistanceBrowsing(
        bench.silc, objects, candidate_source="hierarchy", **kwargs
    )


@register_method(
    "ier-dijk",
    summary="IER with a plain Dijkstra oracle (the original, VLDB 2003)",
    supports_kernel=True,
)
def _build_ier_dijk(bench, objects, kernel=None, **kwargs):
    return IER(
        bench.graph, objects, DijkstraOracle(bench.graph, kernel=kernel), **kwargs
    )


@register_method("ier-astar", summary="IER with an A* oracle")
def _build_ier_astar(bench, objects, **kwargs):
    return IER(bench.graph, objects, AStarOracle(bench.graph), **kwargs)


@register_method(
    "ier-gt",
    summary="IER with a materialized G-tree oracle (MGtree)",
    requires=("gtree",),
    main_rank=3,
)
def _build_ier_gt(bench, objects, **kwargs):
    return IER(bench.graph, objects, GTreeOracle(bench.gtree), **kwargs)


@register_method(
    "ier-phl",
    summary="IER with hub labels (the PHL stand-in; paper's overall winner)",
    requires=("hub_labels",),
    main_rank=4,
)
def _build_ier_phl(bench, objects, **kwargs):
    return IER(bench.graph, objects, bench.hub_labels, **kwargs)


@register_method(
    "ier-ch",
    summary="IER with Contraction Hierarchies",
    requires=("ch",),
)
def _build_ier_ch(bench, objects, **kwargs):
    return IER(bench.graph, objects, bench.ch, **kwargs)


@register_method(
    "ier-tnr",
    summary="IER with Transit Node Routing",
    requires=("ch", "tnr"),
)
def _build_ier_tnr(bench, objects, **kwargs):
    return IER(bench.graph, objects, bench.tnr, **kwargs)
