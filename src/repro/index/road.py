"""ROAD: Route Overlay and Association Directory (Lee et al., TKDE 2012).

ROAD recursively partitions the road network into a hierarchy of *Rnets*
(Section 3.4).  For each Rnet it precomputes *shortcuts* — within-Rnet
shortest distances between every pair of the Rnet's borders — so that a
kNN expansion reaching a border of an object-free Rnet can bypass its
interior entirely.  The *Route Overlay* stores, per vertex, the Rnets the
vertex borders (with its shortcut rows); the *Association Directory* is
the decoupled object index telling the search which Rnets contain objects.

Shortcuts are computed bottom-up like the paper: leaf Rnets run Dijkstra
restricted to their subgraph, higher levels run over a minigraph of child
borders (child shortcut cliques + cross edges).  Within-Rnet distances are
the correct semantics here: any shortest path crossing an Rnet decomposes
at its borders, and segments outside the Rnet are explored by the normal
expansion (see DESIGN.md).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.graph.graph import Graph
from repro.graph.partition import recursive_partition
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS

INF = float("inf")


class RnetNode:
    """One Rnet in the hierarchy."""

    __slots__ = (
        "id",
        "parent",
        "children",
        "level",
        "leaf_lo",
        "leaf_hi",
        "vertices",
        "borders",
        "border_pos",
        "shortcut_matrix",
        "interior_size",
    )

    def __init__(self, node_id: int, parent: int, level: int) -> None:
        self.id = node_id
        self.parent = parent
        self.children: List[int] = []
        self.level = level
        self.leaf_lo = 0
        self.leaf_hi = 0
        self.vertices: Optional[np.ndarray] = None  # leaf Rnets only
        self.borders: np.ndarray = np.empty(0, dtype=np.int64)
        self.border_pos: Dict[int, int] = {}
        self.shortcut_matrix: Optional[np.ndarray] = None
        self.interior_size = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RoadIndex:
    """The ROAD road-network index (Route Overlay + shortcut hierarchy).

    Parameters
    ----------
    graph:
        Road network.
    fanout:
        Partition fanout f (paper default 4).
    levels:
        Hierarchy depth l.  The paper increases l with network size (7 for
        DE up to 11 for US); the default scales as ``log_f(V / 50)``.
    """

    name = "road"

    def __init__(
        self,
        graph: Graph,
        fanout: int = 4,
        levels: Optional[int] = None,
        seed: int = 0,
        partition=None,
    ) -> None:
        self.graph = graph
        self.fanout = fanout
        if levels is None:
            levels = max(2, round(math.log(max(graph.num_vertices / 50, 4), fanout)))
        self.levels = levels
        BUILD_COUNTERS.add("build:road")
        start = time.perf_counter()
        self._build(seed, partition)
        self._build_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, seed: int, partition=None) -> None:
        graph = self.graph
        # The multilevel partitioner reads edge weights; ``partition``
        # pins the hierarchy so a rebuild after weight deltas can be
        # compared against in-place repair (see apply_weight_deltas).
        hierarchy = partition if partition is not None else recursive_partition(
            graph, fanout=self.fanout, max_levels=self.levels, seed=seed
        )
        self.partition = hierarchy
        self.rnets: List[RnetNode] = []

        def add(pnode, parent_id: int, level: int) -> int:
            node = RnetNode(len(self.rnets), parent_id, level)
            self.rnets.append(node)
            for child in pnode.children:
                cid = add(child, node.id, level + 1)
                node.children.append(cid)
            if not pnode.children:
                node.vertices = np.sort(np.asarray(pnode.vertices, dtype=np.int64))
            return node.id

        add(hierarchy, -1, 0)
        self.root = 0

        n = graph.num_vertices
        self.leaf_of = np.full(n, -1, dtype=np.int64)
        self.leaf_index_of = np.full(n, -1, dtype=np.int64)
        counter = [0]

        def assign(node: RnetNode) -> None:
            node.leaf_lo = counter[0]
            if node.is_leaf:
                self.leaf_of[node.vertices] = node.id
                self.leaf_index_of[node.vertices] = counter[0]
                counter[0] += 1
            else:
                for cid in node.children:
                    assign(self.rnets[cid])
            node.leaf_hi = counter[0]

        assign(self.rnets[self.root])

        # Borders per Rnet via the neighbour leaf-interval trick.
        nmin = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        nmax = np.full(n, -1, dtype=np.int64)
        for u in range(n):
            targets, _ = graph.neighbor_slice(u)
            if len(targets):
                li = self.leaf_index_of[targets]
                nmin[u] = li.min()
                nmax[u] = li.max()
        for node in self.rnets:
            verts = self._rnet_vertices(node)
            mask = (nmin[verts] < node.leaf_lo) | (nmax[verts] >= node.leaf_hi)
            node.borders = verts[mask]
            node.border_pos = {int(b): i for i, b in enumerate(node.borders)}
            node.interior_size = len(verts) - len(node.borders)

        self._build_shortcuts()
        self._build_query_structures()

    def _build_query_structures(self) -> None:
        """Derived structures shared by ``_build`` and ``from_arrays``."""
        graph = self.graph
        n = graph.num_vertices

        # Route Overlay: for each vertex, the chain of Rnets it borders,
        # ordered shallowest (highest level in paper terms) first.  The
        # chain is contiguous down to the leaf Rnet by construction.
        self.route_overlay: List[List[int]] = [[] for _ in range(n)]
        by_depth = sorted(self.rnets, key=lambda nd: nd.level)
        for node in by_depth:
            if node.id == self.root:
                continue  # the root has no borders and cannot be bypassed
            for b in node.borders:
                self.route_overlay[int(b)].append(node.id)

        # Flat query-time structures.  The paper stores all shortcuts in
        # one global array with per-tree offsets (Section 6.2); CPython's
        # equivalent of that flat layout is plain lists, which avoid the
        # per-element boxing cost of numpy scalar indexing on the search
        # hot path.
        self._leaf_index_list: List[int] = self.leaf_index_of.tolist()
        self._vs = graph.vertex_start.tolist()
        self._et = graph.edge_target.tolist()
        self._ew = graph.edge_weight.tolist()
        self._shortcut_lists: List[List[List[Tuple[int, float]]]] = []
        for node in self.rnets:
            rows: List[List[Tuple[int, float]]] = []
            if node.shortcut_matrix is not None and len(node.borders):
                borders = [int(b) for b in node.borders]
                for i in range(len(borders)):
                    row = []
                    for j, w in enumerate(node.shortcut_matrix[i]):
                        if j != i and np.isfinite(w):
                            row.append((borders[j], float(w)))
                    rows.append(row)
            self._shortcut_lists.append(rows)

    def _rnet_vertices(self, node: RnetNode) -> np.ndarray:
        if node.is_leaf:
            return node.vertices
        parts = [self._rnet_vertices(self.rnets[c]) for c in node.children]
        return np.concatenate(parts)

    @staticmethod
    def _multi_dijkstra(
        adj: List[List[Tuple[int, float]]], sources: Sequence[int]
    ) -> np.ndarray:
        """Dijkstra over a local adjacency; parallel edges collapse to min
        (scipy's COO constructor would otherwise sum duplicates)."""
        n = len(adj)
        if n == 0 or not sources:
            return np.empty((len(sources), n))
        best: Dict[Tuple[int, int], float] = {}
        for u, lst in enumerate(adj):
            for v, w in lst:
                key = (u, v)
                prev = best.get(key)
                if prev is None or w < prev:
                    best[key] = w
        rows = np.fromiter((k[0] for k in best), dtype=np.int64, count=len(best))
        cols = np.fromiter((k[1] for k in best), dtype=np.int64, count=len(best))
        data = np.fromiter(best.values(), dtype=np.float64, count=len(best))
        m = csr_matrix((data, (rows, cols)), shape=(n, n))
        return _csgraph_dijkstra(m, directed=True, indices=list(sources))

    def _node_shortcut_matrix(self, node: RnetNode) -> np.ndarray:
        """Within-Rnet border-to-border distances for one Rnet.

        Leaves run Dijkstra over their induced subgraph; internal Rnets
        over the minigraph of child shortcut cliques plus the original
        cross edges between different children.  Children's matrices
        must be current — both the build and the incremental repair call
        this bottom-up.
        """
        graph = self.graph
        if node.is_leaf:
            verts = node.vertices
            pos = {int(v): i for i, v in enumerate(verts)}
            adj: List[List[Tuple[int, float]]] = [[] for _ in verts]
            for v in verts:
                i = pos[int(v)]
                targets, weights = graph.neighbor_slice(int(v))
                for t, w in zip(targets, weights):
                    j = pos.get(int(t))
                    if j is not None:
                        adj[i].append((j, float(w)))
            if not len(node.borders):
                return np.empty((0, 0))
            sources = [pos[int(b)] for b in node.borders]
            return self._multi_dijkstra(adj, sources)[
                :, [pos[int(b)] for b in node.borders]
            ]
        # Minigraph over child borders.  (Children partition vertices,
        # so each border belongs to exactly one child.)
        groups: List[np.ndarray] = []
        for cid in node.children:
            groups.append(self.rnets[cid].borders)
        cb = np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
        pos_of = {int(v): i for i, v in enumerate(cb)}
        adj = [[] for _ in cb]
        offset = 0
        for cid in node.children:
            child = self.rnets[cid]
            bb = child.shortcut_matrix
            nb = len(child.borders)
            for a in range(nb):
                for b2 in range(nb):
                    if a != b2 and np.isfinite(bb[a, b2]):
                        adj[offset + a].append((offset + b2, float(bb[a, b2])))
            offset += nb
        for i, u in enumerate(cb):
            targets, weights = graph.neighbor_slice(int(u))
            for t, w in zip(targets, weights):
                j = pos_of.get(int(t))
                if j is None:
                    continue
                if self._child_of(node, int(u)) != self._child_of(node, int(t)):
                    adj[i].append((j, float(w)))
        if not len(node.borders):
            return np.empty((0, 0))
        sources = [pos_of[int(b)] for b in node.borders]
        return self._multi_dijkstra(adj, sources)[:, sources]

    def _build_shortcuts(self) -> None:
        """Bottom-up within-Rnet border-to-border distances."""
        post_order: List[RnetNode] = []

        def visit(node: RnetNode) -> None:
            for cid in node.children:
                visit(self.rnets[cid])
            post_order.append(node)

        visit(self.rnets[self.root])
        for node in post_order:
            node.shortcut_matrix = self._node_shortcut_matrix(node)

    # ------------------------------------------------------------------
    # Incremental repair (live weight deltas)
    # ------------------------------------------------------------------
    def apply_weight_deltas(
        self, changed: Sequence[Tuple[int, int, float, float]]
    ) -> Dict[str, int]:
        """Repair shortcut matrices after in-place edge-weight changes.

        ``changed`` is :meth:`Graph.apply_weight_deltas` output.  A raw
        edge enters exactly one Rnet's computation directly — the
        endpoint leaf for an intra-leaf edge, else the LCA Rnet of the
        two endpoint leaves (the only Rnet where the endpoints fall in
        *different* children, which is the minigraph's cross-edge test).
        Repair recomputes bottom-up along the endpoint-leaf ancestor
        chains, stopping early when a recomputed matrix is bitwise
        unchanged, then refreshes the derived query structures (which
        snapshot edge weights).  Because :meth:`_node_shortcut_matrix`
        is the build's own per-node computation, the repaired index is
        byte-identical to a rebuild on the same partition hierarchy.
        """
        counters = {
            "rnets_affected": 0,
            "shortcuts_recomputed": 0,
            "shortcuts_changed": 0,
        }
        if not changed:
            return counters
        triggers: set = set()
        affected: set = set()

        def chain(node_id: int) -> List[int]:
            out = []
            while node_id >= 0:
                out.append(node_id)
                node_id = self.rnets[node_id].parent
            return out

        for u, v, _old, _new in changed:
            chain_u = chain(int(self.leaf_of[int(u)]))
            chain_v = chain(int(self.leaf_of[int(v)]))
            affected.update(chain_u)
            affected.update(chain_v)
            if chain_u[0] == chain_v[0]:
                triggers.add(chain_u[0])
            else:
                common = set(chain_u) & set(chain_v)
                triggers.add(max(common, key=lambda nid: self.rnets[nid].level))
        counters["rnets_affected"] = len(affected)
        matrix_changed: set = set()
        for node in sorted(
            (self.rnets[i] for i in affected), key=lambda nd: -nd.level
        ):
            if node.id not in triggers and not any(
                c in matrix_changed for c in node.children
            ):
                continue
            new_matrix = self._node_shortcut_matrix(node)
            counters["shortcuts_recomputed"] += 1
            if not np.array_equal(node.shortcut_matrix, new_matrix):
                node.shortcut_matrix = new_matrix
                matrix_changed.add(node.id)
        counters["shortcuts_changed"] = len(matrix_changed)
        # The flat query-time lists snapshot edge weights and shortcut
        # rows; always refresh them.
        self._build_query_structures()
        return counters

    def _child_of(self, node: RnetNode, vertex: int) -> int:
        li = int(self.leaf_index_of[vertex])
        for cid in node.children:
            child = self.rnets[cid]
            if child.leaf_lo <= li < child.leaf_hi:
                return cid
        return -1

    # ------------------------------------------------------------------
    # Search support
    # ------------------------------------------------------------------
    def in_rnet(self, rnet_id: int, vertex: int) -> bool:
        node = self.rnets[rnet_id]
        li = int(self.leaf_index_of[vertex])
        return node.leaf_lo <= li < node.leaf_hi

    def shortcut_row(self, rnet_id: int, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """(border vertices, shortcut distances) from ``vertex`` in an Rnet."""
        node = self.rnets[rnet_id]
        row = node.border_pos[int(vertex)]
        return node.borders, node.shortcut_matrix[row]

    def shortcut_list(self, rnet_id: int, vertex: int) -> List[Tuple[int, float]]:
        """Finite shortcuts from ``vertex`` as a flat (border, w) list."""
        node = self.rnets[rnet_id]
        return self._shortcut_lists[rnet_id][node.border_pos[int(vertex)]]

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        total = self.leaf_of.nbytes + self.leaf_index_of.nbytes
        for node in self.rnets:
            if node.shortcut_matrix is not None:
                total += int(node.shortcut_matrix.nbytes)
            total += node.borders.nbytes
            if node.vertices is not None:
                total += node.vertices.nbytes
        # Route Overlay entries: (rnet id, row offset) per bordered Rnet.
        total += sum(12 * len(chain) for chain in self.route_overlay)
        return total

    def num_rnets(self) -> int:
        return len(self.rnets) - 1  # root excluded

    def average_borders(self) -> float:
        return float(
            np.mean([len(nd.borders) for nd in self.rnets if nd.id != self.root])
        )

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the Rnet hierarchy and shortcut matrices to numpy arrays.

        The Route Overlay and the flat query-time lists are *derived*
        structures, recomputed cheaply by ``from_arrays`` — only the
        expensive Dijkstra products (shortcut matrices) are stored.
        """
        rnets = self.rnets
        empty = np.empty(0, dtype=np.int64)
        verts, verts_off = concat_ragged(
            [n.vertices if n.vertices is not None else empty for n in rnets],
            np.int64,
        )
        borders, borders_off = concat_ragged([n.borders for n in rnets], np.int64)
        children, children_off = concat_ragged(
            [np.asarray(n.children, dtype=np.int64) for n in rnets], np.int64
        )
        mats = [
            n.shortcut_matrix
            if n.shortcut_matrix is not None
            else np.empty((0, 0))
            for n in rnets
        ]
        mat_flat, mat_off = concat_ragged([m.ravel() for m in mats], np.float64)
        mat_shape = np.asarray([m.shape for m in mats], dtype=np.int64)
        return {
            "parent": np.asarray([n.parent for n in rnets], dtype=np.int64),
            "level": np.asarray([n.level for n in rnets], dtype=np.int64),
            "leaf_lo": np.asarray([n.leaf_lo for n in rnets], dtype=np.int64),
            "leaf_hi": np.asarray([n.leaf_hi for n in rnets], dtype=np.int64),
            "interior_size": np.asarray(
                [n.interior_size for n in rnets], dtype=np.int64
            ),
            "children": children,
            "children_off": children_off,
            "vertices": verts,
            "vertices_off": verts_off,
            "borders": borders,
            "borders_off": borders_off,
            "shortcut": mat_flat,
            "shortcut_off": mat_off,
            "shortcut_shape": mat_shape,
            "leaf_of": self.leaf_of,
            "leaf_index_of": self.leaf_index_of,
            "fanout": np.asarray(self.fanout),
            "levels": np.asarray(self.levels),
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(cls, graph: Graph, arrays: Dict[str, np.ndarray]) -> "RoadIndex":
        """Rehydrate a :meth:`to_arrays` dump without re-running Dijkstra."""
        self = cls.__new__(cls)
        self.graph = graph
        self.fanout = int(arrays["fanout"])
        self.levels = int(arrays["levels"])
        self._build_time = float(arrays["build_time"])

        parent = arrays["parent"]
        self.rnets = []
        for i in range(len(parent)):
            node = RnetNode(i, int(parent[i]), int(arrays["level"][i]))
            node.leaf_lo = int(arrays["leaf_lo"][i])
            node.leaf_hi = int(arrays["leaf_hi"][i])
            node.interior_size = int(arrays["interior_size"][i])
            node.children = [
                int(c)
                for c in ragged_row(arrays["children"], arrays["children_off"], i)
            ]
            node.borders = ragged_row(arrays["borders"], arrays["borders_off"], i)
            node.border_pos = {int(b): j for j, b in enumerate(node.borders)}
            rows, cols = (int(v) for v in arrays["shortcut_shape"][i])
            node.shortcut_matrix = ragged_row(
                arrays["shortcut"], arrays["shortcut_off"], i
            ).reshape(rows, cols)
            if node.is_leaf:
                node.vertices = ragged_row(
                    arrays["vertices"], arrays["vertices_off"], i
                )
            self.rnets.append(node)
        self.root = 0
        self.leaf_of = np.asarray(arrays["leaf_of"], dtype=np.int64)
        self.leaf_index_of = np.asarray(arrays["leaf_index_of"], dtype=np.int64)
        # Not serialized; repair still works (it needs only the current
        # shortcut matrices), but rebuild-equality pinning does not.
        self.partition = None
        self._build_query_structures()
        return self


class AssociationDirectory:
    """ROAD's decoupled object index (Sections 3.4 / 7.4).

    A bit per Rnet ("contains an object?") propagated bottom-up, plus a
    byte-array of per-vertex object flags — the paper highlights that this
    is cheaper to store than G-tree's Occurrence List because it need not
    record *which* children contain objects.
    """

    def __init__(self, road: RoadIndex, objects: Sequence[int]) -> None:
        start = time.perf_counter()
        self.road = road
        self.objects = np.sort(np.asarray(list(objects), dtype=np.int64))
        n = road.graph.num_vertices
        self._vertex_flag = bytearray(n)
        # Per-Rnet object *counts* rather than flags, so removals can
        # clear occupancy without a rescan (cheap updates are the point
        # of decoupled indexing, Section 2.2).
        self._rnet_count = [0] * len(road.rnets)
        for o in self.objects:
            self._add_to_hierarchy(int(o))
        self._build_time = time.perf_counter() - start

    def _add_to_hierarchy(self, vertex: int) -> None:
        if self._vertex_flag[vertex]:
            return
        self._vertex_flag[vertex] = 1
        node = self.road.rnets[int(self.road.leaf_of[vertex])]
        while True:
            self._rnet_count[node.id] += 1
            if node.parent < 0:
                break
            node = self.road.rnets[node.parent]

    def add_object(self, vertex: int) -> None:
        """Insert one object — O(hierarchy depth)."""
        vertex = int(vertex)
        if not self._vertex_flag[vertex]:
            self._add_to_hierarchy(vertex)
            self.objects = np.sort(np.append(self.objects, vertex))

    def remove_object(self, vertex: int) -> None:
        """Remove one object — O(hierarchy depth)."""
        vertex = int(vertex)
        if not self._vertex_flag[vertex]:
            return
        self._vertex_flag[vertex] = 0
        self.objects = self.objects[self.objects != vertex]
        node = self.road.rnets[int(self.road.leaf_of[vertex])]
        while True:
            self._rnet_count[node.id] -= 1
            if node.parent < 0:
                break
            node = self.road.rnets[node.parent]

    def is_object(self, vertex: int) -> bool:
        return bool(self._vertex_flag[vertex])

    def rnet_has_object(self, rnet_id: int) -> bool:
        return self._rnet_count[rnet_id] > 0

    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        # Vertex flags as a bit-array; per-Rnet occupancy counts as
        # uint16 (the updatable generalisation of the paper's bit-array).
        return (
            len(self._vertex_flag) // 8
            + 2 * len(self._rnet_count)
            + self.objects.nbytes
        )

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The object set is the whole state — occupancy is derived."""
        return {
            "objects": self.objects,
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(
        cls, road: RoadIndex, arrays: Dict[str, np.ndarray]
    ) -> "AssociationDirectory":
        ad = cls(road, np.asarray(arrays["objects"], dtype=np.int64))
        ad._build_time = float(arrays["build_time"])
        return ad
