"""SILC: Spatially Induced Linkage Cognizance (Sankaranarayanan et al.).

For every source vertex s, SILC colours each other vertex t by the *first
hop* of a shortest path from s to t and compresses the colouring into a
region quadtree (Section 3.3).  Distance Browsing additionally stores, per
quadtree block, the min/max ratio of network to Euclidean distance
(lambda-/lambda+), from which a [lower, upper] network-distance interval
for any target is derived and iteratively *refined* by stepping along the
shortest path.

Representation.  Instead of pointer-based quadtrees we store each source's
blocks as sorted arrays over a Morton-ordered vertex permutation — the
"Morton List" the paper's Refine performs a binary search on.  A block is
a maximal Morton-aligned range of uniform colour; lookups are
``searchsorted`` calls.  Construction runs one scipy shortest-path tree
per source and derives first hops by pointer doubling, which is the
pure-Python analogue of the paper's OpenMP parallelisation of the
all-pairs step (the asymptotics — O(|V|^2 log |V|) work, O(|V|^1.5)-ish
space — are unchanged, which is why SILC remains buildable only on the
smaller networks, matching Figure 8).

The degree-2 *chain optimisation* of Appendix A.1.2 is implemented in
:meth:`path_next`/:meth:`refine`: while the current vertex lies on a
chain, the next hop is forced and no quadtree lookup is needed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.pathfinding.bulk import bulk_sssp
from repro.spatial.morton import morton_encode_array
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS

INF = float("inf")

#: Safety factors keeping interval bounds valid under float rounding.
_LB_SLACK = 1.0 - 1e-12
_UB_SLACK = 1.0 + 1e-12


class _SourceBlocks:
    """Compressed colour map for one source vertex."""

    __slots__ = (
        "starts",
        "colors",
        "lam_minus",
        "lam_plus",
        "dn_min",
        "dn_max",
        "exceptions",
    )

    def __init__(
        self,
        starts: np.ndarray,
        colors: np.ndarray,
        lam_minus: np.ndarray,
        lam_plus: np.ndarray,
        dn_min: np.ndarray,
        dn_max: np.ndarray,
        exceptions: Optional[Dict[int, int]],
    ) -> None:
        self.starts = starts
        self.colors = colors
        self.lam_minus = lam_minus
        self.lam_plus = lam_plus
        self.dn_min = dn_min
        self.dn_max = dn_max
        self.exceptions = exceptions

    def block_of(self, pos: int) -> int:
        """Index of the block containing Morton position ``pos``."""
        return int(np.searchsorted(self.starts, pos, side="right")) - 1

    def size_bytes(self) -> int:
        total = (
            self.starts.nbytes
            + self.colors.nbytes
            + self.lam_minus.nbytes
            + self.lam_plus.nbytes
            + self.dn_min.nbytes
            + self.dn_max.nbytes
        )
        if self.exceptions:
            total += 24 * len(self.exceptions)
        return total


class SILCIndex:
    """SILC path/interval oracle for all sources.

    Parameters
    ----------
    graph:
        Road network (coordinates required).
    grid_bits:
        Quadtree grid resolution (2^bits per axis).
    batch_size:
        Sources per scipy shortest-path batch during construction.
    """

    name = "silc"

    def __init__(self, graph: Graph, grid_bits: int = 11, batch_size: int = 64) -> None:
        self.graph = graph
        self.grid_bits = grid_bits
        BUILD_COUNTERS.add("build:silc")
        start = time.perf_counter()
        self._build(batch_size)
        self._build_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, batch_size: int) -> None:
        graph = self.graph
        n = graph.num_vertices
        grid = (1 << self.grid_bits) - 1
        x0, y0 = float(graph.x.min()), float(graph.y.min())
        spanx = float(graph.x.max()) - x0 or 1.0
        spany = float(graph.y.max()) - y0 or 1.0
        gx = np.clip(
            ((graph.x - x0) / spanx * (grid + 1)).astype(np.int64), 0, grid
        )
        gy = np.clip(
            ((graph.y - y0) / spany * (grid + 1)).astype(np.int64), 0, grid
        )
        codes = morton_encode_array(gx, gy).astype(np.int64)
        self._order = np.argsort(codes, kind="stable")
        self._codes_sorted = codes[self._order]
        self._pos_of = np.empty(n, dtype=np.int64)
        self._pos_of[self._order] = np.arange(n)
        self._degree = np.diff(graph.vertex_start)

        self._sources: List[Optional[_SourceBlocks]] = [None] * n
        xs = graph.x
        ys = graph.y
        for lo in range(0, n, batch_size):
            sources = list(range(lo, min(lo + batch_size, n)))
            dist, pred = bulk_sssp(graph, sources, return_predecessors=True)
            for row, s in enumerate(sources):
                hops = self._first_hops_from_pred(s, pred[row])
                eu = np.hypot(xs - xs[s], ys - ys[s])
                self._sources[s] = self._compress(s, hops, dist[row], eu)

    @staticmethod
    def _first_hops_from_pred(source: int, pred: np.ndarray) -> np.ndarray:
        """First hop per target via pointer doubling on the pred tree."""
        n = len(pred)
        nxt = np.arange(n, dtype=np.int64)
        valid = pred >= 0
        # nxt[t] = t when pred[t] == source (t is its own first hop) or t
        # is the source / unreachable; else pred[t].
        move = valid & (pred != source)
        nxt[move] = pred[move]
        # Pointer doubling to the fixed point.
        for _ in range(64):
            nxt2 = nxt[nxt]
            if np.array_equal(nxt2, nxt):
                break
            nxt = nxt2
        nxt[source] = source
        nxt[~valid] = -1
        nxt[~valid & (np.arange(n) == source)] = source
        return nxt

    def _compress(
        self, source: int, hops: np.ndarray, dist: np.ndarray, eu: np.ndarray
    ) -> _SourceBlocks:
        order = self._order
        colors = hops[order].copy()
        dn = dist[order]
        de = eu[order]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(de > 0, dn / de, np.inf)
        # The source never splits blocks: give it its neighbour's colour.
        spos = int(self._pos_of[source])
        ratio_for_agg = ratio.copy()
        ratio_for_agg[spos] = np.nan
        if spos > 0:
            colors[spos] = colors[spos - 1]
        elif len(colors) > 1:
            colors[spos] = colors[spos + 1]

        starts: List[int] = []
        out_colors: List[int] = []
        lam_minus: List[float] = []
        lam_plus: List[float] = []
        dn_min: List[float] = []
        dn_max: List[float] = []
        exceptions: Dict[int, int] = {}
        codes = self._codes_sorted
        total_bits = 2 * self.grid_bits

        def emit(i_lo: int, i_hi: int, color: int) -> None:
            starts.append(i_lo)
            out_colors.append(int(color))
            seg_ratio = ratio_for_agg[i_lo:i_hi]
            finite = seg_ratio[np.isfinite(seg_ratio)]
            if len(finite):
                lam_minus.append(float(finite.min()) * _LB_SLACK)
                lam_plus.append(float(finite.max()) * _UB_SLACK)
            else:
                lam_minus.append(0.0)
                lam_plus.append(INF)
            seg_dn = dn[i_lo:i_hi]
            dn_min.append(float(seg_dn.min()) * _LB_SLACK)
            dn_max.append(float(seg_dn.max()) * _UB_SLACK)

        def build(code_lo: int, size_bits: int, i_lo: int, i_hi: int) -> None:
            if i_lo >= i_hi:
                return
            seg = colors[i_lo:i_hi]
            if bool((seg == seg[0]).all()):
                emit(i_lo, i_hi, seg[0])
                return
            if size_bits == 0:
                # Same grid cell, mixed colours: exception map.
                emit(i_lo, i_hi, seg[0])
                for i in range(i_lo, i_hi):
                    if colors[i] != seg[0]:
                        exceptions[int(order[i])] = int(colors[i])
                return
            quarter = 1 << (2 * (size_bits - 1))
            j_lo = i_lo
            for q in range(4):
                hi_code = code_lo + (q + 1) * quarter
                j_hi = int(
                    np.searchsorted(codes[j_lo:i_hi], hi_code, side="left")
                ) + j_lo
                build(code_lo + q * quarter, size_bits - 1, j_lo, j_hi)
                j_lo = j_hi

        build(0, self.grid_bits, 0, len(colors))
        return _SourceBlocks(
            np.asarray(starts, dtype=np.int64),
            np.asarray(out_colors, dtype=np.int64),
            np.asarray(lam_minus),
            np.asarray(lam_plus),
            np.asarray(dn_min),
            np.asarray(dn_max),
            exceptions or None,
        )

    # ------------------------------------------------------------------
    # Path oracle
    # ------------------------------------------------------------------
    def first_hop(self, source: int, target: int) -> int:
        """First vertex after ``source`` on a shortest path to ``target``.

        One binary search on the source's Morton list (O(log |V|)) — the
        cost Refine pays per step.
        """
        if source == target:
            return source
        blocks = self._sources[source]
        if blocks.exceptions is not None:
            hit = blocks.exceptions.get(int(target))
            if hit is not None:
                return hit
        pos = int(self._pos_of[target])
        return int(blocks.colors[blocks.block_of(pos)])

    def path_next(
        self, current: int, previous: int, target: int, use_chains: bool
    ) -> Tuple[int, float]:
        """Next vertex after ``current`` on the path to ``target``.

        Returns ``(next_vertex, edge_weight)``.  With ``use_chains`` the
        degree-2 optimisation skips the quadtree lookup when the next hop
        is forced (Appendix A.1.2).
        """
        graph = self.graph
        if use_chains and previous >= 0 and self._degree[current] <= 2:
            targets, weights = graph.neighbor_slice(current)
            for t, w in zip(targets, weights):
                if int(t) != previous:
                    return int(t), float(w)
            return previous, float(weights[0])  # dead end: backtrack
        nxt = self.first_hop(current, target)
        w = graph.edge_weight_between(current, nxt)
        if w is None:
            raise RuntimeError(
                f"SILC first hop {nxt} is not adjacent to {current}"
            )
        return nxt, w

    def path(
        self, source: int, target: int, use_chains: bool = False
    ) -> Tuple[float, List[int]]:
        """Shortest path (distance, vertex list) assembled hop by hop."""
        path = [source]
        total = 0.0
        current, previous = source, -1
        while current != target:
            nxt, w = self.path_next(current, previous, target, use_chains)
            total += w
            path.append(nxt)
            previous, current = current, nxt
        return total, path

    def distance(self, source: int, target: int, use_chains: bool = True) -> float:
        return self.path(source, target, use_chains=use_chains)[0]

    # ------------------------------------------------------------------
    # Distance intervals (Distance Browsing)
    # ------------------------------------------------------------------
    def interval_from(self, vertex: int, target: int) -> Tuple[float, float]:
        """[lower, upper] bounds on d(vertex, target) from vertex's blocks."""
        if vertex == target:
            return 0.0, 0.0
        blocks = self._sources[vertex]
        b = blocks.block_of(int(self._pos_of[target]))
        # np.hypot, not math.hypot: CPython's hypot rounds differently in
        # the last ulp, and the scalar path must agree bit-for-bit with
        # the vectorised :meth:`intervals_from` (the construction-time
        # lambda ratios are np.hypot-based too).
        de = float(
            np.hypot(
                self.graph.x[vertex] - self.graph.x[target],
                self.graph.y[vertex] - self.graph.y[target],
            )
        )
        # fmax/fmin drop a NaN side (an all-infinite-ratio block at zero
        # Euclidean distance makes lam * de = inf * 0 = NaN), falling
        # back to the always-valid per-block network-distance bounds —
        # a NaN key would otherwise reach the priority queues.
        with np.errstate(invalid="ignore"):
            lb = np.fmax(blocks.lam_minus[b] * de, blocks.dn_min[b])
            ub = np.fmin(blocks.lam_plus[b] * de, blocks.dn_max[b])
        return float(lb), float(ub)

    def intervals_from(
        self, vertex: int, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`interval_from` for a batch of targets.

        One ``searchsorted`` over the Morton list covers the whole batch
        — the array-kernel form Distance Browsing uses to seed its
        candidate queue.  Entry-for-entry identical to the scalar path.
        """
        targets = np.asarray(targets, dtype=np.int64)
        blocks = self._sources[vertex]
        pos = self._pos_of[targets]
        b = np.searchsorted(blocks.starts, pos, side="right") - 1
        de = np.hypot(
            self.graph.x[targets] - self.graph.x[vertex],
            self.graph.y[targets] - self.graph.y[vertex],
        )
        # fmax/fmin, matching the scalar path: a NaN lambda bound (inf * 0
        # at zero Euclidean distance) falls back to the per-block
        # network-distance bounds instead of poisoning the heap keys.
        with np.errstate(invalid="ignore"):
            lb = np.fmax(blocks.lam_minus[b] * de, blocks.dn_min[b])
            ub = np.fmin(blocks.lam_plus[b] * de, blocks.dn_max[b])
        same = targets == vertex
        if same.any():
            lb[same] = 0.0
            ub[same] = 0.0
        return lb, ub

    def refine(
        self,
        vn: int,
        d: float,
        previous: int,
        target: int,
        use_chains: bool = True,
    ) -> Tuple[int, float, int, float, float]:
        """One DisBrw refinement step.

        Given the path walked so far — current vertex ``vn`` at exact
        distance ``d`` from the query — advance one hop (or one chain)
        towards ``target`` and return
        ``(vn', d', previous', lower, upper)`` where the bounds are on the
        *query*-to-target distance.
        """
        nxt, w = self.path_next(vn, previous, target, use_chains)
        d2 = d + w
        prev2 = vn
        if use_chains:
            # Jump along the forced chain: no quadtree consultations.
            while nxt != target and self._degree[nxt] <= 2:
                nxt2, w2 = self.path_next(nxt, prev2, target, True)
                prev2, nxt = nxt, nxt2
                d2 += w2
        if nxt == target:
            return nxt, d2, prev2, d2, d2
        lb, ub = self.interval_from(nxt, target)
        return nxt, d2, prev2, d2 + lb, d2 + ub

    # ------------------------------------------------------------------
    # Region bounds for the Object Hierarchy variant
    # ------------------------------------------------------------------
    def region_bounds(
        self,
        source: int,
        idx_lo: int,
        idx_hi: int,
    ) -> Tuple[float, float]:
        """Bounds on d(source, t) over all t at Morton positions [lo, hi).

        Used by the Object-Hierarchy DisBrw variant: an OH block maps to a
        Morton position range; SILC blocks intersecting it contribute
        their interval bounds.  Returns (min lower, max upper).
        """
        blocks = self._sources[source]
        first = blocks.block_of(idx_lo)
        lb_best = INF
        ub_best = 0.0
        b = first
        starts = blocks.starts
        nblocks = len(starts)
        while b < nblocks and (b == first or starts[b] < idx_hi):
            seg_lo = max(int(starts[b]), idx_lo)
            seg_hi = min(
                int(starts[b + 1]) if b + 1 < nblocks else len(self._order), idx_hi
            )
            if seg_lo < seg_hi:
                lb_best = min(lb_best, float(blocks.dn_min[b]))
                ub_best = max(ub_best, float(blocks.dn_max[b]))
            b += 1
        if lb_best is INF:
            return 0.0, INF
        return lb_best, ub_best

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def morton_position(self, vertex: int) -> int:
        return int(self._pos_of[vertex])

    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        total = self._order.nbytes + self._codes_sorted.nbytes + self._pos_of.nbytes
        for blocks in self._sources:
            if blocks is not None:
                total += blocks.size_bytes()
        return total

    def average_blocks(self) -> float:
        return float(
            np.mean([len(b.starts) for b in self._sources if b is not None])
        )

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten all per-source Morton-list blocks into numpy arrays.

        Per-source block arrays concatenate with one shared offsets array
        (all six block attributes have the same per-source lengths);
        mixed-cell exception maps flatten to (source, target, color)
        triplets.
        """
        sources = self._sources
        starts, off = concat_ragged([b.starts for b in sources], np.int64)
        colors, _ = concat_ragged([b.colors for b in sources], np.int64)
        lam_minus, _ = concat_ragged([b.lam_minus for b in sources], np.float64)
        lam_plus, _ = concat_ragged([b.lam_plus for b in sources], np.float64)
        dn_min, _ = concat_ragged([b.dn_min for b in sources], np.float64)
        dn_max, _ = concat_ragged([b.dn_max for b in sources], np.float64)
        exc_src: List[int] = []
        exc_target: List[int] = []
        exc_color: List[int] = []
        for s, b in enumerate(sources):
            if b.exceptions:
                for t, c in b.exceptions.items():
                    exc_src.append(s)
                    exc_target.append(int(t))
                    exc_color.append(int(c))
        return {
            "order": self._order,
            "codes_sorted": self._codes_sorted,
            "pos_of": self._pos_of,
            "block_starts": starts,
            "block_off": off,
            "block_colors": colors,
            "block_lam_minus": lam_minus,
            "block_lam_plus": lam_plus,
            "block_dn_min": dn_min,
            "block_dn_max": dn_max,
            "exc_src": np.asarray(exc_src, dtype=np.int64),
            "exc_target": np.asarray(exc_target, dtype=np.int64),
            "exc_color": np.asarray(exc_color, dtype=np.int64),
            "grid_bits": np.asarray(self.grid_bits),
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(cls, graph: Graph, arrays: Dict[str, np.ndarray]) -> "SILCIndex":
        """Rehydrate without re-running the all-pairs preprocessing."""
        self = cls.__new__(cls)
        self.graph = graph
        self.grid_bits = int(arrays["grid_bits"])
        self._build_time = float(arrays["build_time"])
        self._order = np.asarray(arrays["order"], dtype=np.int64)
        self._codes_sorted = np.asarray(arrays["codes_sorted"], dtype=np.int64)
        self._pos_of = np.asarray(arrays["pos_of"], dtype=np.int64)
        self._degree = np.diff(graph.vertex_start)

        exceptions: Dict[int, Dict[int, int]] = {}
        for s, t, c in zip(
            arrays["exc_src"], arrays["exc_target"], arrays["exc_color"]
        ):
            exceptions.setdefault(int(s), {})[int(t)] = int(c)

        off = arrays["block_off"]
        n = graph.num_vertices
        self._sources = []
        for s in range(n):
            self._sources.append(
                _SourceBlocks(
                    ragged_row(arrays["block_starts"], off, s),
                    ragged_row(arrays["block_colors"], off, s),
                    ragged_row(arrays["block_lam_minus"], off, s),
                    ragged_row(arrays["block_lam_plus"], off, s),
                    ragged_row(arrays["block_dn_min"], off, s),
                    ragged_row(arrays["block_dn_max"], off, s),
                    exceptions.get(s),
                )
            )
        return self
