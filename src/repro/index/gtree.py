"""G-tree: hierarchical graph partition index (Zhong et al., TKDE 2015).

The index recursively partitions the road network with fanout ``f`` until
subgraphs have at most ``tau`` vertices (Section 3.5).  Every tree node
stores its *borders* and a *distance matrix*; network distances are
"assembled" along the tree path between two vertices by repeated min-plus
steps over these matrices, with *materialization* caching the distances
from a fixed source to each visited node's borders — the property that
makes repeated queries from one source cheap (MGtree, Section 5).

Implementation notes mirroring the paper:

* **Matrix layout is pluggable** (Section 6.1): the production backend is
  a flat numpy array indexed by grouped child borders; two hash-table
  backends reproduce the Figure 6 ablation.
* **Matrix exactness**: bottom-up construction yields within-subgraph
  distances; a top-down correction pass (documented in DESIGN.md) injects
  each node's parent-level border-to-border distances so all matrices
  hold *global* shortest distances.  Property tests assert assembly ==
  Dijkstra.
* **Improved leaf search** (Appendix A.2.1) runs a within-leaf Dijkstra
  augmented with exact border-to-border "clique" edges, emitting objects
  in exact global-distance order; the pre-improvement behaviour is kept
  for the Figure 22 ablation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
from scipy.sparse.csgraph import floyd_warshall as _floyd_warshall

from repro.graph.graph import Graph
from repro.graph.partition import recursive_partition
from repro.kernels.config import resolve_kernel
from repro.updates import RepairUnavailable
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS, Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


def _dedup_min(rows, cols, data):
    """Collapse duplicate COO entries to their *minimum* weight.

    scipy's constructors *sum* duplicate entries, which is wrong for
    distance graphs (a raw edge coinciding with a clique edge must keep
    the smaller weight).  Vectorised: sort by (row, col), reduce runs.
    """
    rows = np.concatenate(rows) if isinstance(rows, (list, tuple)) else rows
    cols = np.concatenate(cols) if isinstance(cols, (list, tuple)) else cols
    data = np.concatenate(data) if isinstance(data, (list, tuple)) else data
    if len(rows) == 0:
        return rows, cols, data
    order = np.lexsort((cols, rows))
    r, c, d = rows[order], cols[order], data[order]
    first = np.empty(len(r), dtype=bool)
    first[0] = True
    first[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
    starts = np.flatnonzero(first)
    return r[starts], c[starts], np.minimum.reduceat(d, starts)


def _min_csr(n: int, rows, cols, data) -> csr_matrix:
    """CSR from COO triplets with duplicates collapsed to their minimum."""
    r, c, d = _dedup_min(rows, cols, data)
    if len(r) == 0:
        return csr_matrix((n, n))
    return csr_matrix((d, (r, c)), shape=(n, n))


def _clique_coo(positions: np.ndarray, matrix: np.ndarray):
    """COO triplets for a distance clique over local ``positions``."""
    nb = len(positions)
    if nb == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    rows = np.repeat(positions, nb)
    cols = np.tile(positions, nb)
    data = np.asarray(matrix, dtype=np.float64).ravel()
    keep = np.isfinite(data) & (rows != cols)
    return rows[keep], cols[keep], data[keep]


def _matrix_dense(matrix) -> np.ndarray:
    """The dense distance array behind any matrix backend."""
    if hasattr(matrix, "m"):
        return matrix.m
    rows, cols = matrix.shape
    out = np.empty((rows, cols))
    for i in range(rows):
        for j in range(cols):
            out[i, j] = matrix.get(i, j)
    return out


# ----------------------------------------------------------------------
# Distance-matrix backends (Figure 6 / Table 3)
# ----------------------------------------------------------------------
class ArrayMatrix:
    """Flat 2-D numpy distance matrix — the paper's cache-friendly layout.

    Min-plus transitions slice contiguous row/column groups, which is the
    sequential-access property Section 6.1 credits for the >10x win.
    """

    kind = "array"

    def __init__(self, matrix: np.ndarray) -> None:
        self.m = np.asarray(matrix, dtype=np.float64)

    def get(self, i: int, j: int) -> float:
        return float(self.m[i, j])

    def minplus(
        self, prev: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """``out[j] = min_i prev[i] + M[rows[i], cols[j]]`` (vectorised)."""
        sub = self.m[np.ix_(rows, cols)]
        return (prev[:, None] + sub).min(axis=0)

    def size_bytes(self) -> int:
        return int(self.m.nbytes)


class HashMatrixTuple:
    """Dict keyed by ``(i, j)`` tuples — the chained-hashing analogue.

    Tuple hashing plus per-entry boxing gives the worst locality of the
    three backends, like ``std::unordered_map`` in the paper.
    """

    kind = "hash_tuple"

    def __init__(self, matrix: np.ndarray) -> None:
        m = np.asarray(matrix, dtype=np.float64)
        self.shape = m.shape
        self.d = {
            (i, j): float(m[i, j])
            for i in range(m.shape[0])
            for j in range(m.shape[1])
        }

    def get(self, i: int, j: int) -> float:
        return self.d[(i, j)]

    def minplus(
        self, prev: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        d = self.d
        out = np.full(len(cols), INF)
        for a, i in enumerate(rows):
            base = prev[a]
            for b, j in enumerate(cols):
                total = base + d[(int(i), int(j))]
                if total < out[b]:
                    out[b] = total
        return out

    def size_bytes(self) -> int:
        # dict entry overhead dominated by key tuple + boxed float.
        return 104 * len(self.d)


class HashMatrixPacked:
    """Dict keyed by packed integers — the open-addressing analogue.

    Cheaper hashing than tuples (like quadratic probing vs chaining) but
    still no sequential locality.
    """

    kind = "hash_packed"

    def __init__(self, matrix: np.ndarray) -> None:
        m = np.asarray(matrix, dtype=np.float64)
        self.shape = m.shape
        ncols = m.shape[1]
        self.ncols = ncols
        self.d = {
            i * ncols + j: float(m[i, j])
            for i in range(m.shape[0])
            for j in range(ncols)
        }

    def get(self, i: int, j: int) -> float:
        return self.d[i * self.ncols + j]

    def minplus(
        self, prev: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        d = self.d
        ncols = self.ncols
        out = np.full(len(cols), INF)
        for a, i in enumerate(rows):
            base = prev[a]
            row = int(i) * ncols
            for b, j in enumerate(cols):
                total = base + d[row + int(j)]
                if total < out[b]:
                    out[b] = total
        return out

    def size_bytes(self) -> int:
        return 72 * len(self.d)


MATRIX_BACKENDS = {
    "array": ArrayMatrix,
    "hash_tuple": HashMatrixTuple,
    "hash_packed": HashMatrixPacked,
}


# ----------------------------------------------------------------------
# Tree node
# ----------------------------------------------------------------------
class GTreeNode:
    """One G-tree node (a subgraph of the road network)."""

    __slots__ = (
        "id",
        "parent",
        "children",
        "level",
        "leaf_lo",
        "leaf_hi",
        "vertices",
        "borders",
        "child_borders",
        "matrix",
        "pos_in_parent",
        "own_border_pos",
        "vertex_pos",
        "leaf_adj",
        "leaf_csr",
    )

    def __init__(self, node_id: int, parent: int, level: int) -> None:
        self.id = node_id
        self.parent = parent
        self.children: List[int] = []
        self.level = level
        self.leaf_lo = 0  # DFS leaf-interval for subtree membership tests
        self.leaf_hi = 0
        self.vertices: Optional[np.ndarray] = None  # leaf only
        self.borders: np.ndarray = np.empty(0, dtype=np.int64)
        self.child_borders: Optional[np.ndarray] = None  # internal only
        self.matrix = None
        self.pos_in_parent: np.ndarray = np.empty(0, dtype=np.int64)
        self.own_border_pos: np.ndarray = np.empty(0, dtype=np.int64)
        self.vertex_pos: Optional[Dict[int, int]] = None  # leaf only
        self.leaf_adj: Optional[List[List[Tuple[int, float]]]] = None
        self.leaf_csr = None  # array-kernel cache of leaf_adj as scipy CSR

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GTree:
    """The G-tree index.

    Parameters
    ----------
    graph:
        Road network.
    fanout:
        Partition fanout f (paper default 4).
    tau:
        Leaf capacity; the paper scales it with network size (64 for DE up
        to 512 for US).  Default picks ``max(32, ~sqrt(V))`` similarly.
    matrix_backend:
        One of ``"array"`` (default), ``"hash_tuple"``, ``"hash_packed"``.
    kernel:
        ``"array"`` (resolved default) builds with the bulk kernels:
        vectorised geometric partitioning, vectorised minigraph assembly
        and multi-source C Dijkstra — an order of magnitude faster than
        ``"python"``, the reference per-edge build.  Both produce exact
        global distance matrices; query answers are identical.
    """

    name = "gtree"

    def __init__(
        self,
        graph: Graph,
        fanout: int = 4,
        tau: Optional[int] = None,
        matrix_backend: str = "array",
        seed: int = 0,
        kernel: Optional[str] = None,
        partition=None,
    ) -> None:
        if matrix_backend not in MATRIX_BACKENDS:
            raise ValueError(f"unknown matrix backend {matrix_backend!r}")
        self.graph = graph
        self.fanout = fanout
        if tau is None:
            tau = max(32, int(np.sqrt(graph.num_vertices) / 2) * 4)
        self.tau = tau
        self.matrix_backend = matrix_backend
        self.kernel = resolve_kernel(kernel)
        BUILD_COUNTERS.add("build:gtree")
        start = time.perf_counter()
        self._build(seed, partition)
        self._build_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, seed: int, partition=None) -> None:
        graph = self.graph
        # The multilevel partitioner reads edge weights, so a rebuild
        # after weight deltas may legitimately repartition; ``partition``
        # lets callers (the rebuild-equality harness) pin the hierarchy
        # an existing tree was built on.
        hierarchy = partition if partition is not None else recursive_partition(
            graph,
            fanout=self.fanout,
            max_leaf_size=self.tau,
            seed=seed,
            method="geometric" if self.kernel == "array" else "multilevel",
        )
        self.partition = hierarchy

        # Flatten the hierarchy into id-addressed nodes.
        self.nodes: List[GTreeNode] = []

        def add(pnode, parent_id: int, level: int) -> int:
            node = GTreeNode(len(self.nodes), parent_id, level)
            self.nodes.append(node)
            for child in pnode.children:
                cid = add(child, node.id, level + 1)
                node.children.append(cid)
            if not pnode.children:
                node.vertices = np.sort(np.asarray(pnode.vertices, dtype=np.int64))
            return node.id

        add(hierarchy, -1, 0)
        self.root = 0

        # DFS leaf intervals + per-vertex leaf assignment.
        n = graph.num_vertices
        self.leaf_of = np.full(n, -1, dtype=np.int64)
        self.leaf_index_of = np.full(n, -1, dtype=np.int64)
        counter = [0]

        def assign(node: GTreeNode) -> None:
            node.leaf_lo = counter[0]
            if node.is_leaf:
                self.leaf_of[node.vertices] = node.id
                counter[0] += 1
            else:
                for cid in node.children:
                    assign(self.nodes[cid])
            node.leaf_hi = counter[0]

        assign(self.nodes[self.root])
        for node in self.nodes:
            if node.is_leaf:
                self.leaf_index_of[node.vertices] = node.leaf_lo

        # Borders: vertex u is a border of node N iff some neighbour's
        # leaf-interval index falls outside N's interval.  One reduceat
        # per bound over the flat CSR arrays — no per-vertex loop.
        nmin = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        nmax = np.full(n, -1, dtype=np.int64)
        li_all = self.leaf_index_of[graph.edge_target]
        nonempty = np.flatnonzero(np.diff(graph.vertex_start) > 0)
        if len(nonempty):
            seg_starts = graph.vertex_start[nonempty]
            nmin[nonempty] = np.minimum.reduceat(li_all, seg_starts)
            nmax[nonempty] = np.maximum.reduceat(li_all, seg_starts)
        for node in self.nodes:
            verts = self._node_vertices(node)
            mask = (nmin[verts] < node.leaf_lo) | (nmax[verts] >= node.leaf_hi)
            node.borders = verts[mask]

        # Grouped child borders + positional indexes.
        for node in self.nodes:
            if node.is_leaf:
                node.vertex_pos = {int(v): i for i, v in enumerate(node.vertices)}
                continue
            groups = []
            offset = 0
            for cid in node.children:
                child = self.nodes[cid]
                groups.append(child.borders)
                child.pos_in_parent = np.arange(
                    offset, offset + len(child.borders), dtype=np.int64
                )
                offset += len(child.borders)
            node.child_borders = (
                np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
            )
            pos_of = {int(v): i for i, v in enumerate(node.child_borders)}
            node.own_border_pos = np.asarray(
                [pos_of[int(b)] for b in node.borders], dtype=np.int64
            )

        if self.kernel == "array":
            self._build_matrices_bulk()
        else:
            self._build_matrices()

    def _node_vertices(self, node: GTreeNode) -> np.ndarray:
        if node.is_leaf:
            return node.vertices
        parts = [self._node_vertices(self.nodes[c]) for c in node.children]
        return np.concatenate(parts)

    # -- matrix machinery ------------------------------------------------
    def _leaf_local_graph(
        self, node: GTreeNode, border_clique: Optional[np.ndarray]
    ) -> List[List[Tuple[int, float]]]:
        """Local adjacency over leaf vertices (+ optional border clique)."""
        pos = node.vertex_pos
        adj: List[List[Tuple[int, float]]] = [[] for _ in node.vertices]
        for v in node.vertices:
            i = pos[int(v)]
            targets, weights = self.graph.neighbor_slice(int(v))
            for t, w in zip(targets, weights):
                j = pos.get(int(t))
                if j is not None:
                    adj[i].append((j, float(w)))
        if border_clique is not None:
            bpos = [pos[int(b)] for b in node.borders]
            nb = len(bpos)
            for a in range(nb):
                for b in range(nb):
                    if a != b and np.isfinite(border_clique[a, b]):
                        adj[bpos[a]].append((bpos[b], float(border_clique[a, b])))
        return adj

    @staticmethod
    def _multi_dijkstra(
        adj: List[List[Tuple[int, float]]], sources: Sequence[int]
    ) -> np.ndarray:
        """Dijkstra from each source over a small local adjacency.

        Parallel edges (e.g. a raw edge coinciding with a clique edge)
        are collapsed to their minimum — scipy's COO constructor would
        otherwise *sum* duplicates.
        """
        n = len(adj)
        if n == 0:
            return np.empty((len(sources), 0))
        best: Dict[Tuple[int, int], float] = {}
        for u, lst in enumerate(adj):
            for v, w in lst:
                key = (u, v)
                prev = best.get(key)
                if prev is None or w < prev:
                    best[key] = w
        rows = np.fromiter((k[0] for k in best), dtype=np.int64, count=len(best))
        cols = np.fromiter((k[1] for k in best), dtype=np.int64, count=len(best))
        data = np.fromiter(best.values(), dtype=np.float64, count=len(best))
        m = csr_matrix((data, (rows, cols)), shape=(n, n))
        if not sources:
            return np.empty((0, n))
        return _csgraph_dijkstra(m, directed=True, indices=list(sources))

    def _leaf_matrix(
        self, node: GTreeNode, border_clique: Optional[np.ndarray]
    ) -> np.ndarray:
        """(borders x leaf vertices) distance matrix for a leaf."""
        adj = self._leaf_local_graph(node, border_clique)
        node.leaf_adj = adj if border_clique is not None else node.leaf_adj
        sources = [node.vertex_pos[int(b)] for b in node.borders]
        return self._multi_dijkstra(adj, sources)

    def _internal_minigraph(
        self, node: GTreeNode, own_clique: Optional[np.ndarray]
    ) -> List[List[Tuple[int, float]]]:
        """Minigraph over ``node.child_borders``.

        Edges: per-child border cliques (from child matrices), original
        cross edges between children, and optionally a clique over the
        node's own borders carrying parent-level exact distances.
        """
        cb = node.child_borders
        pos_of = {int(v): i for i, v in enumerate(cb)}
        adj: List[List[Tuple[int, float]]] = [[] for _ in cb]
        for cid in node.children:
            child = self.nodes[cid]
            bb = self._child_border_to_border(child)
            idx = child.pos_in_parent
            nb = len(idx)
            for a in range(nb):
                for b in range(nb):
                    if a != b and np.isfinite(bb[a, b]):
                        adj[idx[a]].append((int(idx[b]), float(bb[a, b])))
        # Cross edges between different children (both endpoints are
        # borders of their child, hence present in child_borders).
        for i, u in enumerate(cb):
            targets, weights = self.graph.neighbor_slice(int(u))
            for t, w in zip(targets, weights):
                j = pos_of.get(int(t))
                if j is None:
                    continue
                if self._child_of(node, int(u)) != self._child_of(node, int(t)):
                    adj[i].append((j, float(w)))
        if own_clique is not None:
            obp = node.own_border_pos
            nb = len(obp)
            for a in range(nb):
                for b in range(nb):
                    if a != b and np.isfinite(own_clique[a, b]):
                        adj[int(obp[a])].append((int(obp[b]), float(own_clique[a, b])))
        return adj

    def _child_of(self, node: GTreeNode, vertex: int) -> int:
        """Which child of ``node`` contains ``vertex`` (by leaf interval)."""
        li = int(self.leaf_index_of[vertex])
        for cid in node.children:
            child = self.nodes[cid]
            if child.leaf_lo <= li < child.leaf_hi:
                return cid
        return -1

    def _child_border_to_border(self, child: GTreeNode) -> np.ndarray:
        """Border-to-border submatrix of a child node's raw matrix."""
        m = child.matrix.m if hasattr(child.matrix, "m") else None
        if m is None:
            raise RuntimeError("matrices must be built as arrays first")
        if child.is_leaf:
            cols = [child.vertex_pos[int(b)] for b in child.borders]
            rows = np.arange(len(child.borders))
            return m[np.ix_(rows, cols)]
        return m[np.ix_(child.own_border_pos, child.own_border_pos)]

    def _build_matrices(self) -> None:
        # Pass 1 (bottom-up): within-subgraph matrices.
        post_order: List[GTreeNode] = []

        def visit(node: GTreeNode) -> None:
            for cid in node.children:
                visit(self.nodes[cid])
            post_order.append(node)

        visit(self.nodes[self.root])
        for node in post_order:
            if node.is_leaf:
                node.matrix = ArrayMatrix(self._leaf_matrix(node, None))
            else:
                adj = self._internal_minigraph(node, None)
                node.matrix = ArrayMatrix(
                    self._multi_dijkstra(adj, list(range(len(node.child_borders))))
                )
        # Pass-1 matrices are the state incremental weight-delta repair
        # restarts from, so keep them (see apply_weight_deltas).
        self._raw = {node.id: node.matrix.m for node in self.nodes}

        # Pass 2 (top-down): inject parent-level exact border distances so
        # every matrix becomes globally exact (out-and-back paths).
        order = sorted(self.nodes, key=lambda nd: nd.level)
        for node in order:
            if node.id == self.root:
                continue
            parent = self.nodes[node.parent]
            pm = parent.matrix.m
            clique = pm[np.ix_(node.pos_in_parent, node.pos_in_parent)]
            if node.is_leaf:
                node.matrix = ArrayMatrix(self._leaf_matrix(node, clique))
            else:
                adj = self._internal_minigraph(node, clique)
                node.matrix = ArrayMatrix(
                    self._multi_dijkstra(adj, list(range(len(node.child_borders))))
                )
        # Root leaf adjacency (graph smaller than tau: root is a leaf).
        root = self.nodes[self.root]
        if root.is_leaf and root.leaf_adj is None:
            root.leaf_adj = self._leaf_local_graph(root, None)

        # Convert to the requested backend.
        if self.matrix_backend != "array":
            backend = MATRIX_BACKENDS[self.matrix_backend]
            for node in self.nodes:
                node.matrix = backend(node.matrix.m)

    # -- bulk (array-kernel) matrix machinery ---------------------------
    def _induced_triplets(self, vs: np.ndarray):
        """COO triplets of the subgraph induced by sorted vertex ids ``vs``.

        Direct CSR-slice gathering — one batch of numpy ops per call,
        an order of magnitude cheaper than scipy's generic fancy
        indexing for the small subgraphs the build extracts per node.
        """
        graph = self.graph
        starts = graph.vertex_start[vs]
        lens = (graph.vertex_start[vs + 1] - starts).astype(np.int64)
        total = int(lens.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        inc = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        gather = np.repeat(starts, lens) + inc
        tg = graph.edge_target[gather]
        loc = np.searchsorted(vs, tg)
        loc_clipped = np.minimum(loc, len(vs) - 1)
        keep = vs[loc_clipped] == tg
        rows = np.repeat(np.arange(len(vs), dtype=np.int64), lens)[keep]
        return rows, loc_clipped[keep], graph.edge_weight[gather][keep]

    def _leaf_matrix_bulk(
        self, node: GTreeNode, border_clique: Optional[np.ndarray]
    ) -> np.ndarray:
        """Leaf matrix via induced-triplet extraction + multi-source
        Dijkstra.

        Same minigraph as :meth:`_leaf_matrix` — induced leaf subgraph
        plus the optional exact border clique — but assembled entirely
        with array operations and solved in one C call.
        """
        vs = node.vertices
        ir, ic, iw = self._induced_triplets(vs)
        bpos = np.searchsorted(vs, node.borders)
        rows, cols, data = [ir], [ic], [iw]
        if border_clique is not None:
            cr, cc, cd = _clique_coo(bpos, border_clique)
            rows.append(cr)
            cols.append(cc)
            data.append(cd)
        if len(bpos) == 0:
            return np.empty((0, len(vs)))
        local = _min_csr(len(vs), rows, cols, data)
        return _csgraph_dijkstra(local, directed=True, indices=bpos)

    def _internal_matrix_bulk(
        self, node: GTreeNode, own_clique: Optional[np.ndarray]
    ) -> np.ndarray:
        """Internal-node matrix over the child-border minigraph, in bulk.

        The minigraph of :meth:`_internal_minigraph` — child border
        cliques, original cross edges between children, optional own
        clique — built as COO triplet batches (duplicates collapsed to
        their minimum) instead of per-pair Python loops.  The child
        cliques make these minigraphs dense (~half the entries are
        edges), so the all-pairs solve uses dense Floyd–Warshall, which
        measures >2x faster here than heap-based multi-source Dijkstra.
        """
        cb = node.child_borders
        nb = len(cb)
        if nb == 0:
            return np.empty((0, 0))
        buf = self._pos_buf
        buf[cb] = np.arange(nb)
        try:
            rows: List[np.ndarray] = []
            cols: List[np.ndarray] = []
            data: List[np.ndarray] = []
            child_of_pos = np.empty(nb, dtype=np.int64)
            for ci, cid in enumerate(node.children):
                child = self.nodes[cid]
                idx = child.pos_in_parent
                child_of_pos[idx] = ci
                cr, cc, cd = _clique_coo(
                    idx, self._child_border_to_border(child)
                )
                rows.append(cr)
                cols.append(cc)
                data.append(cd)
            graph = self.graph
            starts = graph.vertex_start[cb]
            lens = (graph.vertex_start[cb + 1] - starts).astype(np.int64)
            total = int(lens.sum())
            if total:
                inc = np.arange(total) - np.repeat(
                    np.cumsum(lens) - lens, lens
                )
                gather = np.repeat(starts, lens) + inc
                j = buf[graph.edge_target[gather]]
                keep = j >= 0
                r2 = np.repeat(np.arange(nb, dtype=np.int64), lens)[keep]
                j2 = j[keep]
                w2 = graph.edge_weight[gather][keep]
                cross = child_of_pos[r2] != child_of_pos[j2]
                rows.append(r2[cross])
                cols.append(j2[cross])
                data.append(w2[cross])
            if own_clique is not None:
                cr, cc, cd = _clique_coo(node.own_border_pos, own_clique)
                rows.append(cr)
                cols.append(cc)
                data.append(cd)
            r, c, d = _dedup_min(rows, cols, data)
        finally:
            buf[cb] = -1
        dense = np.full((nb, nb), INF)
        dense[r, c] = d
        return _floyd_warshall(dense, directed=True)

    @staticmethod
    def _correct_leaf(clique: np.ndarray, m1: np.ndarray) -> np.ndarray:
        """Globalise a leaf matrix: ``out[b, v] = min_c C[b, c] + M1[c, v]``.

        Any global shortest path from border ``b`` into the leaf
        decomposes at its *last entry* border ``c``: the prefix is the
        exact parent-level border-to-border distance ``C[b, c]`` and the
        suffix stays inside the leaf (``M1``).  ``C``'s zero diagonal
        covers never-leaving paths, so one min-plus is the whole
        correction — no second Dijkstra pass.
        """
        if len(clique) == 0 or m1.size == 0:
            return m1
        out = np.empty_like(m1)
        nb = len(clique)
        chunk = max(1, 4_000_000 // max(nb * m1.shape[1], 1))
        for lo in range(0, nb, chunk):
            out[lo : lo + chunk] = (
                clique[lo : lo + chunk, :, None] + m1[None, :, :]
            ).min(axis=1)
        return out

    @staticmethod
    def _correct_internal(
        m1: np.ndarray, own_pos: np.ndarray, clique: np.ndarray
    ) -> np.ndarray:
        """Globalise an internal matrix via first-exit/last-entry borders.

        ``out[i, j] = min(M1[i, j],
        min_{a,b} M1[i, a] + C[a, b] + M1[b, j])`` with ``a``/``b``
        ranging over the node's own borders — the exact out-and-back
        correction, evaluated as two chunked min-plus products instead
        of re-running the minigraph Dijkstra.
        """
        b = len(own_pos)
        if b == 0 or m1.size == 0:
            return m1
        left = m1[:, own_pos]
        # Fold the clique into the exit side once: D[a, j] = min_b
        # C[a, b] + M1[b, j].  The row sweep then needs a single min-plus.
        exit_side = (
            clique[:, :, None] + m1[own_pos, :][None, :, :]
        ).min(axis=1)
        out = m1.copy()
        nb = m1.shape[0]
        chunk = max(1, 4_000_000 // max(b * nb, 1))
        for lo in range(0, nb, chunk):
            seg = left[lo : lo + chunk]
            best = (seg[:, :, None] + exit_side[None, :, :]).min(axis=1)
            np.minimum(out[lo : lo + chunk], best, out=out[lo : lo + chunk])
        return out

    def _build_matrices_bulk(self) -> None:
        """Array-kernel matrix construction.

        Pass 1 mirrors :meth:`_build_matrices` bottom-up, with every
        minigraph assembled vectorised and solved by multi-source C
        Dijkstra.  Pass 2 (the top-down globalisation) replaces the
        python kernel's per-node Dijkstra re-runs with closed-form
        min-plus corrections — no per-edge Python work anywhere."""
        self._pos_buf = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        post_order: List[GTreeNode] = []

        def visit(node: GTreeNode) -> None:
            for cid in node.children:
                visit(self.nodes[cid])
            post_order.append(node)

        visit(self.nodes[self.root])
        for node in post_order:
            if node.is_leaf:
                node.matrix = ArrayMatrix(self._leaf_matrix_bulk(node, None))
            else:
                node.matrix = ArrayMatrix(self._internal_matrix_bulk(node, None))
        del self._pos_buf

        # Pass-1 matrices of children feed their parent's correction, so
        # keep them and correct top-down in level order.  They are also
        # retained for incremental weight-delta repair.
        raw = {node.id: node.matrix.m for node in self.nodes}
        self._raw = raw
        for node in sorted(self.nodes, key=lambda nd: nd.level):
            if node.id == self.root:
                continue
            parent = self.nodes[node.parent]
            clique = parent.matrix.m[
                np.ix_(node.pos_in_parent, node.pos_in_parent)
            ]
            if node.is_leaf:
                node.matrix = ArrayMatrix(
                    self._correct_leaf(clique, raw[node.id])
                )
            else:
                node.matrix = ArrayMatrix(
                    self._correct_internal(
                        raw[node.id], node.own_border_pos, clique
                    )
                )

        if self.matrix_backend != "array":
            backend = MATRIX_BACKENDS[self.matrix_backend]
            for node in self.nodes:
                node.matrix = backend(node.matrix.m)

    # ------------------------------------------------------------------
    # Incremental repair (live weight deltas)
    # ------------------------------------------------------------------
    def _ancestor_chain(self, node_id: int) -> List[int]:
        chain: List[int] = []
        while node_id >= 0:
            chain.append(node_id)
            node_id = self.nodes[node_id].parent
        return chain

    def apply_weight_deltas(
        self, changed: Sequence[Tuple[int, int, float, float]]
    ) -> Dict[str, int]:
        """Repair distance matrices after in-place edge-weight changes.

        ``changed`` is :meth:`Graph.apply_weight_deltas` output — the
        graph already holds the new weights.  The repair replays the
        exact two-pass build restricted to *affected* nodes (the union
        of the ancestor chains of the changed edges' endpoint leaves):

        * a raw edge appears in exactly one minigraph — the endpoint
          leaf for an intra-leaf edge, else the LCA of the two endpoint
          leaves — so pass-1 recomputation starts there and propagates
          upward only while a child's raw matrix actually changed
          (bitwise compare);
        * pass 2 sweeps in the build's level order from an all-raw
          matrix state, reusing the previous corrected matrix whenever
          a node's raw matrix and its parent-clique block are both
          bitwise unchanged.

        Because every recomputation calls the same kernels on bitwise
        identical inputs as a from-scratch build on this partition
        hierarchy, the repaired tree is byte-identical to that rebuild.
        Returns repair counters.  Raises :class:`RepairUnavailable` for
        trees without raw matrices (loaded from the store) or non-array
        matrix backends.
        """
        if getattr(self, "_raw", None) is None:
            raise RepairUnavailable(
                "gtree was loaded without pass-1 matrices; rebuild instead"
            )
        if self.matrix_backend != "array":
            raise RepairUnavailable(
                "gtree repair supports the array matrix backend only"
            )
        counters = {
            "nodes_affected": 0,
            "raw_recomputed": 0,
            "corrected_recomputed": 0,
            "leaves_reset": 0,
        }
        if not changed:
            return counters

        triggers: Set[int] = set()
        affected: Set[int] = set()
        for u, v, _old, _new in changed:
            chain_u = self._ancestor_chain(int(self.leaf_of[int(u)]))
            chain_v = self._ancestor_chain(int(self.leaf_of[int(v)]))
            affected.update(chain_u)
            affected.update(chain_v)
            if chain_u[0] == chain_v[0]:
                triggers.add(chain_u[0])
            else:
                common = set(chain_u) & set(chain_v)
                triggers.add(max(common, key=lambda nid: self.nodes[nid].level))
        counters["nodes_affected"] = len(affected)

        raw = self._raw
        old_corr = {node.id: node.matrix for node in self.nodes}
        # Full-swap discipline: both build passes read *raw* child
        # matrices, so restore the all-raw state the build passes see.
        for node in self.nodes:
            node.matrix = ArrayMatrix(raw[node.id])

        if self.kernel == "array":
            self._pos_buf = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        try:
            # Pass 1: bottom-up raw recomputation over affected nodes.
            raw_changed: Set[int] = set()
            for node in sorted(
                (self.nodes[i] for i in affected), key=lambda nd: -nd.level
            ):
                if node.id not in triggers and not any(
                    c in raw_changed for c in node.children
                ):
                    continue
                if self.kernel == "array":
                    new_raw = (
                        self._leaf_matrix_bulk(node, None)
                        if node.is_leaf
                        else self._internal_matrix_bulk(node, None)
                    )
                elif node.is_leaf:
                    new_raw = self._leaf_matrix(node, None)
                else:
                    adj = self._internal_minigraph(node, None)
                    new_raw = self._multi_dijkstra(
                        adj, list(range(len(node.child_borders)))
                    )
                counters["raw_recomputed"] += 1
                if not np.array_equal(raw[node.id], new_raw):
                    raw[node.id] = new_raw
                    node.matrix = ArrayMatrix(new_raw)
                    raw_changed.add(node.id)

            # Pass 2: level-order correction sweep with bitwise pruning.
            corrected_changed: Set[int] = set()
            if self.root in raw_changed:
                corrected_changed.add(self.root)
            for node in sorted(self.nodes, key=lambda nd: nd.level):
                if node.id == self.root:
                    continue  # the root's corrected matrix IS its raw one
                parent = self.nodes[node.parent]
                if (
                    node.id not in raw_changed
                    and parent.id not in corrected_changed
                ):
                    node.matrix = old_corr[node.id]
                    continue
                clique = parent.matrix.m[
                    np.ix_(node.pos_in_parent, node.pos_in_parent)
                ]
                if node.id not in raw_changed and np.array_equal(
                    clique,
                    old_corr[parent.id].m[
                        np.ix_(node.pos_in_parent, node.pos_in_parent)
                    ],
                ):
                    node.matrix = old_corr[node.id]
                    continue
                if self.kernel == "array":
                    corrected = (
                        self._correct_leaf(clique, raw[node.id])
                        if node.is_leaf
                        else self._correct_internal(
                            raw[node.id], node.own_border_pos, clique
                        )
                    )
                elif node.is_leaf:
                    corrected = self._leaf_matrix(node, clique)
                else:
                    adj = self._internal_minigraph(node, clique)
                    corrected = self._multi_dijkstra(
                        adj, list(range(len(node.child_borders)))
                    )
                counters["corrected_recomputed"] += 1
                node.matrix = ArrayMatrix(corrected)
                if not np.array_equal(corrected, old_corr[node.id].m):
                    corrected_changed.add(node.id)
        finally:
            if self.kernel == "array":
                del self._pos_buf

        # Leaf search caches embed raw edge weights and the parent
        # clique; drop the stale ones for lazy rebuild.
        for node in self.nodes:
            if not node.is_leaf:
                continue
            if (
                node.id in triggers
                or node.id in raw_changed
                or (node.parent >= 0 and node.parent in corrected_changed)
            ):
                if node.leaf_adj is not None or node.leaf_csr is not None:
                    counters["leaves_reset"] += 1
                node.leaf_adj = None
                node.leaf_csr = None
        return counters

    # ------------------------------------------------------------------
    # Assembly (materialized distance computation)
    # ------------------------------------------------------------------
    def is_ancestor(self, node_id: int, leaf_id: int) -> bool:
        node = self.nodes[node_id]
        leaf = self.nodes[leaf_id]
        return node.leaf_lo <= leaf.leaf_lo and leaf.leaf_hi <= node.leaf_hi

    def child_towards(self, node_id: int, leaf_id: int) -> int:
        """The child of ``node_id`` whose subtree contains ``leaf_id``."""
        leaf = self.nodes[leaf_id]
        for cid in self.nodes[node_id].children:
            child = self.nodes[cid]
            if child.leaf_lo <= leaf.leaf_lo and leaf.leaf_hi <= child.leaf_hi:
                return cid
        raise ValueError(f"node {node_id} is not an ancestor of leaf {leaf_id}")

    def leaf_border_distances(self, vertex: int) -> np.ndarray:
        """Exact distances from ``vertex`` to its leaf's borders (O(B))."""
        leaf = self.nodes[int(self.leaf_of[vertex])]
        col = leaf.vertex_pos[int(vertex)]
        return leaf.matrix.m[:, col] if hasattr(leaf.matrix, "m") else np.asarray(
            [leaf.matrix.get(i, col) for i in range(len(leaf.borders))]
        )

    def distances_to_node_borders(
        self,
        source: int,
        node_id: int,
        cache: Dict[int, np.ndarray],
        counters: Counters = NULL_COUNTERS,
    ) -> np.ndarray:
        """Exact distances from ``source`` to the borders of ``node_id``.

        ``cache`` is the materialization store — per-source, shared across
        calls so repeated queries reuse already-assembled prefixes.
        """
        cached = cache.get(node_id)
        if cached is not None:
            return cached
        source_leaf = int(self.leaf_of[source])
        node = self.nodes[node_id]
        if node_id == source_leaf:
            result = self.leaf_border_distances(source)
        elif self.is_ancestor(node_id, source_leaf):
            prev_id = self.child_towards(node_id, source_leaf)
            prev = self.nodes[prev_id]
            d_prev = self.distances_to_node_borders(
                source, prev_id, cache, counters
            )
            counters.add("matrix_ops", len(d_prev) * len(node.own_border_pos))
            result = node.matrix.minplus(
                d_prev, prev.pos_in_parent, node.own_border_pos
            )
        else:
            parent = self.nodes[node.parent]
            if self.is_ancestor(parent.id, source_leaf):
                prev_id = (
                    source_leaf
                    if parent.id == int(self.leaf_of[source])
                    else self.child_towards(parent.id, source_leaf)
                )
                prev = self.nodes[prev_id]
                d_prev = self.distances_to_node_borders(
                    source, prev_id, cache, counters
                )
                rows = prev.pos_in_parent
            else:
                d_prev = self.distances_to_node_borders(
                    source, parent.id, cache, counters
                )
                rows = parent.own_border_pos
            counters.add("matrix_ops", len(d_prev) * len(node.pos_in_parent))
            result = parent.matrix.minplus(d_prev, rows, node.pos_in_parent)
        cache[node_id] = result
        return result

    def leaf_local_csr(self, leaf: GTreeNode) -> csr_matrix:
        """Cached CSR form of the leaf subgraph + exact border clique.

        The array-kernel counterpart of ``leaf_adj``: built once per
        leaf with vectorised extraction, it lets same-leaf searches run
        as whole-frontier C Dijkstras.
        """
        if leaf.leaf_csr is None:
            clique = self._leaf_border_clique(leaf)
            vs = leaf.vertices
            ir, ic, iw = self._induced_triplets(vs)
            rows, cols, data = [ir], [ic], [iw]
            if clique is not None:
                bpos = np.searchsorted(vs, leaf.borders)
                cr, cc, cd = _clique_coo(bpos, clique)
                rows.append(cr)
                cols.append(cc)
                data.append(cd)
            leaf.leaf_csr = _min_csr(len(vs), rows, cols, data)
        return leaf.leaf_csr

    def _same_leaf_sssp(self, source: int) -> Dict[int, float]:
        """Exact distances from ``source`` to every vertex of its leaf.

        Dijkstra over the leaf subgraph augmented with the exact border
        clique, so out-and-back paths are covered.  Under the array
        kernel the whole expansion is one C call on the cached leaf CSR.
        """
        leaf = self.nodes[int(self.leaf_of[source])]
        if self.kernel == "array":
            local = self.leaf_local_csr(leaf)
            dist = _csgraph_dijkstra(
                local, directed=True, indices=leaf.vertex_pos[int(source)]
            )
            return {int(v): float(dist[i]) for i, v in enumerate(leaf.vertices)}
        adj = leaf.leaf_adj
        if adj is None:
            adj = self._leaf_local_graph(leaf, self._leaf_border_clique(leaf))
            leaf.leaf_adj = adj
        start = leaf.vertex_pos[int(source)]
        n = len(adj)
        dist = [INF] * n
        dist[start] = 0.0
        heap = BinaryHeap()
        heap.push(0.0, start)
        settled = [False] * n
        while heap:
            d, u = heap.pop()
            if settled[u]:
                continue
            settled[u] = True
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heap.push(nd, v)
        return {int(v): dist[leaf.vertex_pos[int(v)]] for v in leaf.vertices}

    def _leaf_border_clique(self, leaf: GTreeNode) -> Optional[np.ndarray]:
        if leaf.id == self.root:
            return None
        parent = self.nodes[leaf.parent]
        pm = parent.matrix.m if hasattr(parent.matrix, "m") else None
        if pm is None:
            nb = len(leaf.pos_in_parent)
            return np.asarray(
                [
                    [
                        parent.matrix.get(int(leaf.pos_in_parent[a]), int(leaf.pos_in_parent[b]))
                        for b in range(nb)
                    ]
                    for a in range(nb)
                ]
            )
        return pm[np.ix_(leaf.pos_in_parent, leaf.pos_in_parent)]

    def distance(
        self,
        source: int,
        target: int,
        cache: Optional[Dict[int, np.ndarray]] = None,
        counters: Counters = NULL_COUNTERS,
    ) -> float:
        """Exact network distance via assembly (optionally materialized)."""
        if source == target:
            return 0.0
        if cache is None:
            cache = {}
        source_leaf = int(self.leaf_of[source])
        target_leaf = int(self.leaf_of[target])
        if source_leaf == target_leaf:
            key = ("sssp", source)
            sssp = cache.get(key)  # type: ignore[arg-type]
            if sssp is None:
                sssp = self._same_leaf_sssp(source)
                cache[key] = sssp  # type: ignore[index]
            return float(sssp[int(target)])
        d_borders = self.distances_to_node_borders(
            source, target_leaf, cache, counters
        )
        leaf = self.nodes[target_leaf]
        col = leaf.vertex_pos[int(target)]
        counters.add("matrix_ops", len(d_borders))
        if hasattr(leaf.matrix, "m"):
            return float((d_borders + leaf.matrix.m[:, col]).min())
        best = INF
        for i in range(len(d_borders)):
            total = d_borders[i] + leaf.matrix.get(i, col)
            if total < best:
                best = total
        return best

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        total = 0
        for node in self.nodes:
            total += node.matrix.size_bytes() if node.matrix is not None else 0
            total += node.borders.nbytes
            if node.child_borders is not None:
                total += node.child_borders.nbytes
            if node.vertices is not None:
                total += node.vertices.nbytes
        total += self.leaf_of.nbytes + self.leaf_index_of.nbytes
        return total

    def leaves(self) -> List[GTreeNode]:
        return [n for n in self.nodes if n.is_leaf]

    def num_levels(self) -> int:
        return 1 + max(n.level for n in self.nodes)

    def average_borders(self) -> float:
        return float(np.mean([len(n.borders) for n in self.nodes]))

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the tree into numpy arrays (Section 6.2 layout, on disk).

        Ragged per-node sequences (vertices, borders, matrices, ...) are
        concatenated with ``*_off`` offset arrays; ``from_arrays`` slices
        them back.  The paper's flat-array layout is thereby also the
        storage format — no pickling of node objects.
        """
        nodes = self.nodes
        empty = np.empty(0, dtype=np.int64)
        verts, verts_off = concat_ragged(
            [n.vertices if n.vertices is not None else empty for n in nodes],
            np.int64,
        )
        borders, borders_off = concat_ragged([n.borders for n in nodes], np.int64)
        cb, cb_off = concat_ragged(
            [n.child_borders if n.child_borders is not None else empty for n in nodes],
            np.int64,
        )
        children, children_off = concat_ragged(
            [np.asarray(n.children, dtype=np.int64) for n in nodes], np.int64
        )
        pip, pip_off = concat_ragged([n.pos_in_parent for n in nodes], np.int64)
        obp, obp_off = concat_ragged([n.own_border_pos for n in nodes], np.int64)
        mats = [_matrix_dense(n.matrix) for n in nodes]
        mat_flat, mat_off = concat_ragged([m.ravel() for m in mats], np.float64)
        mat_shape = np.asarray([m.shape for m in mats], dtype=np.int64)
        return {
            "parent": np.asarray([n.parent for n in nodes], dtype=np.int64),
            "level": np.asarray([n.level for n in nodes], dtype=np.int64),
            "leaf_lo": np.asarray([n.leaf_lo for n in nodes], dtype=np.int64),
            "leaf_hi": np.asarray([n.leaf_hi for n in nodes], dtype=np.int64),
            "children": children,
            "children_off": children_off,
            "vertices": verts,
            "vertices_off": verts_off,
            "borders": borders,
            "borders_off": borders_off,
            "child_borders": cb,
            "child_borders_off": cb_off,
            "pos_in_parent": pip,
            "pos_in_parent_off": pip_off,
            "own_border_pos": obp,
            "own_border_pos_off": obp_off,
            "matrix": mat_flat,
            "matrix_off": mat_off,
            "matrix_shape": mat_shape,
            "leaf_of": self.leaf_of,
            "leaf_index_of": self.leaf_index_of,
            "fanout": np.asarray(self.fanout),
            "tau": np.asarray(self.tau),
            "matrix_backend": np.asarray(self.matrix_backend),
            "kernel": np.asarray(self.kernel),
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(cls, graph: Graph, arrays: Dict[str, np.ndarray]) -> "GTree":
        """Rehydrate a :meth:`to_arrays` dump without rebuilding.

        ``build_time()`` reports the *original* construction wall-time
        (recorded in the artifact), so preprocessing figures stay honest
        when served from the store.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.fanout = int(arrays["fanout"])
        self.tau = int(arrays["tau"])
        self.matrix_backend = str(arrays["matrix_backend"])
        # Loaded trees resume the kernel they were built with (older
        # artifacts predate the field and fall back to the default), so
        # a warm start honours the cache's kernel-keyed artifact choice.
        kernel = arrays.get("kernel")
        self.kernel = (
            resolve_kernel(str(kernel)) if kernel is not None
            else resolve_kernel(None)
        )
        self._build_time = float(arrays["build_time"])
        backend = MATRIX_BACKENDS[self.matrix_backend]

        parent = arrays["parent"]
        n_nodes = len(parent)

        def rag(name: str, i: int) -> np.ndarray:
            return ragged_row(arrays[name], arrays[f"{name}_off"], i)

        self.nodes = []
        for i in range(n_nodes):
            node = GTreeNode(i, int(parent[i]), int(arrays["level"][i]))
            node.leaf_lo = int(arrays["leaf_lo"][i])
            node.leaf_hi = int(arrays["leaf_hi"][i])
            node.children = [int(c) for c in rag("children", i)]
            node.borders = rag("borders", i)
            node.pos_in_parent = rag("pos_in_parent", i)
            node.own_border_pos = rag("own_border_pos", i)
            rows, cols = (int(v) for v in arrays["matrix_shape"][i])
            node.matrix = backend(rag("matrix", i).reshape(rows, cols))
            if node.is_leaf:
                node.vertices = rag("vertices", i)
                node.vertex_pos = {int(v): j for j, v in enumerate(node.vertices)}
            else:
                node.child_borders = rag("child_borders", i)
            self.nodes.append(node)
        self.root = 0
        self.leaf_of = np.asarray(arrays["leaf_of"], dtype=np.int64)
        self.leaf_index_of = np.asarray(arrays["leaf_index_of"], dtype=np.int64)
        # leaf_adj is rebuilt lazily on first same-leaf search.  Pass-1
        # matrices and the partition hierarchy are not serialized, so a
        # loaded tree cannot repair in place (apply_weight_deltas raises
        # RepairUnavailable and callers rebuild).
        self._raw = None
        self.partition = None
        return self


# ----------------------------------------------------------------------
# Occurrence List (G-tree's object index, Sections 3.5 / 7.4)
# ----------------------------------------------------------------------
class OccurrenceList:
    """Which G-tree children contain objects, per node.

    Built bottom-up from the object set; the kNN algorithm consults it to
    prune empty subtrees.  Tracked separately because Section 7.4 measures
    object-index build time and size on their own.
    """

    def __init__(self, gtree: GTree, objects: Sequence[int]) -> None:
        start = time.perf_counter()
        self.gtree = gtree
        self.objects = np.sort(np.asarray(list(objects), dtype=np.int64))
        self._object_set = set(int(o) for o in self.objects)
        self.leaf_objects: Dict[int, List[int]] = {}
        for o in self.objects:
            leaf = int(gtree.leaf_of[o])
            self.leaf_objects.setdefault(leaf, []).append(int(o))
        # Bottom-up propagation of occupancy.
        self.children_with_objects: Dict[int, List[int]] = {}
        occupied: Set[int] = set(self.leaf_objects)
        for node in sorted(gtree.nodes, key=lambda nd: -nd.level):
            if node.is_leaf:
                continue
            present = [c for c in node.children if c in occupied]
            if present:
                self.children_with_objects[node.id] = present
                occupied.add(node.id)
        self._build_time = time.perf_counter() - start

    def add_object(self, vertex: int) -> None:
        """Insert one object — O(tree height), no road-index work.

        This cheap maintenance is the decoupled-indexing advantage the
        paper's Section 2.2 argues for (e.g. parking spaces freeing up).
        """
        vertex = int(vertex)
        if vertex in self._object_set:
            return
        self._object_set.add(vertex)
        self.objects = np.sort(np.append(self.objects, vertex))
        leaf = int(self.gtree.leaf_of[vertex])
        bucket = self.leaf_objects.setdefault(leaf, [])
        bucket.append(vertex)
        bucket.sort()
        node_id = leaf
        while True:
            parent = self.gtree.nodes[node_id].parent
            if parent < 0:
                break
            siblings = self.children_with_objects.setdefault(parent, [])
            if node_id in siblings:
                break
            siblings.append(node_id)
            # Keep child-id order canonical (node.children is ascending)
            # so an incrementally maintained list matches a rebuilt one.
            siblings.sort()
            node_id = parent

    def remove_object(self, vertex: int) -> None:
        """Remove one object, pruning emptied ancestors bottom-up."""
        vertex = int(vertex)
        if vertex not in self._object_set:
            return
        self._object_set.discard(vertex)
        self.objects = self.objects[self.objects != vertex]
        leaf = int(self.gtree.leaf_of[vertex])
        bucket = self.leaf_objects.get(leaf, [])
        if vertex in bucket:
            bucket.remove(vertex)
        node_id = leaf
        while not self.has_objects(node_id):
            if node_id in self.leaf_objects:
                del self.leaf_objects[node_id]
            parent = self.gtree.nodes[node_id].parent
            if parent < 0:
                break
            siblings = self.children_with_objects.get(parent, [])
            if node_id in siblings:
                siblings.remove(node_id)
            if siblings:
                break
            if parent in self.children_with_objects:
                del self.children_with_objects[parent]
            node_id = parent

    def has_objects(self, node_id: int) -> bool:
        return bool(self.leaf_objects.get(node_id)) or bool(
            self.children_with_objects.get(node_id)
        )

    def children(self, node_id: int) -> List[int]:
        return self.children_with_objects.get(node_id, [])

    def objects_in_leaf(self, leaf_id: int) -> List[int]:
        return self.leaf_objects.get(leaf_id, [])

    def is_object(self, vertex: int) -> bool:
        return int(vertex) in self._object_set

    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        total = self.objects.nbytes
        total += sum(8 * len(v) + 16 for v in self.leaf_objects.values())
        total += sum(8 * len(v) + 16 for v in self.children_with_objects.values())
        return total

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The object set is the whole state — occupancy is derived."""
        return {
            "objects": self.objects,
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(
        cls, gtree: "GTree", arrays: Dict[str, np.ndarray]
    ) -> "OccurrenceList":
        ol = cls(gtree, np.asarray(arrays["objects"], dtype=np.int64))
        ol._build_time = float(arrays["build_time"])
        return ol


# ----------------------------------------------------------------------
# MGtree distance oracle (Section 5)
# ----------------------------------------------------------------------
class GTreeOracle:
    """G-tree as a point-to-point oracle with cross-query materialization.

    IER issues many distance queries from the *same* source; the oracle
    keeps the per-source materialization cache across calls (reset when
    the source changes), which is what makes "IER-Gt" competitive.
    """

    name = "mgtree"

    def __init__(self, gtree: GTree, counters: Counters = NULL_COUNTERS) -> None:
        self.gtree = gtree
        self.counters = counters
        self._source: Optional[int] = None
        self._cache: Dict = {}

    def begin_source(self, source: int) -> None:
        if self._source != source:
            self._source = source
            self._cache = {}

    def distance(self, source: int, target: int) -> float:
        self.begin_source(source)
        return self.gtree.distance(
            source, target, cache=self._cache, counters=self.counters
        )

    def build_time(self) -> float:
        return self.gtree.build_time()

    def size_bytes(self) -> int:
        return self.gtree.size_bytes()
