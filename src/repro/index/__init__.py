"""Road-network indexes: G-tree, ROAD and SILC.

Each module provides an index (built once per road network) and the kNN /
distance machinery the paper evaluates on top of it.  Object-set indexes
(Occurrence Lists, Association Directories) live here too since they are
bound to the corresponding road-network index.
"""

from repro.index.gtree import GTree, GTreeOracle, OccurrenceList, MATRIX_BACKENDS
from repro.index.road import RoadIndex, AssociationDirectory
from repro.index.silc import SILCIndex

__all__ = [
    "GTree",
    "GTreeOracle",
    "OccurrenceList",
    "MATRIX_BACKENDS",
    "RoadIndex",
    "AssociationDirectory",
    "SILCIndex",
]
