"""`KNNServer` — a concurrent kNN query service over one road network.

The serving architecture follows the paper's own split between expensive
preprocessing and microsecond queries, hardened for sustained concurrent
load:

* **admission control** — a bounded request queue; a submit against a
  full queue completes immediately as :data:`~repro.server.request.REJECTED`
  instead of growing an unbounded backlog;
* **worker pool** — N threads share one warm :class:`IndexCache` (load it
  from a :class:`repro.store.IndexStore` and serve time performs *zero*
  index builds — ``BUILD_COUNTERS`` proves it);
* **micro-batching** — each worker drains up to ``max_batch`` waiting
  requests, coalesces identical ``(category, vertex, k, method)`` keys
  into one computation, and orders groups so same-object-set work is
  paid once per batch (see :mod:`repro.server.batching`);
* **result cache** — a shared LRU keyed on (graph fingerprint, object
  fingerprint, vertex, k, method); swapping a POI category with
  :meth:`KNNServer.with_objects` invalidates exactly the outgoing
  entries (see :mod:`repro.server.cache`);
* **deadlines** — a request still queued past its ``deadline_s`` is
  answered :data:`~repro.server.request.DEADLINE_EXCEEDED` without ever
  occupying a worker.

Typical use::

    engine = QueryEngine(graph, objects, store=store)   # warm indexes
    with KNNServer(engine, workers=4) as server:
        pending = server.submit(vertex=42, k=5)
        response = pending.result(timeout=5.0)
        assert response.result == engine.query(42, k=5)  # byte-identical
"""

from __future__ import annotations

import collections
import contextlib
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.engine.engine import QueryEngine
from repro.obs.tracing import span as _span
from repro.server.batching import BatchGroup, coalesce
from repro.server.cache import ResultCache, objects_fingerprint, result_key
from repro.server.request import (
    DEADLINE_EXCEEDED,
    ERROR,
    OK,
    REJECTED,
    PendingRequest,
    ServerRequest,
    ServerResponse,
)
from repro.resilience import (
    CircuitBreaker,
    Heartbeats,
    RetryPolicy,
    Supervisor,
    WorkerKilled,
    classify,
    current_plan,
    fault_check,
    quarantine_counts,
)


class ServerClosed(RuntimeError):
    """Submit after :meth:`KNNServer.stop` (or before :meth:`start`)."""


class UnknownCategory(KeyError):
    """A request named a POI category the server does not hold."""

    def __init__(self, category: str, known: Sequence[Optional[str]]) -> None:
        names = ", ".join(sorted(str(c) for c in known))
        super().__init__(
            f"unknown category {category!r}; server holds: {names}"
        )
        self.category = category


class _RWLock:
    """Writer-priority readers-writer lock for live updates.

    Query workers hold read locks (many at once); ``apply_updates``
    holds the write lock, so no query ever observes a half-repaired
    index or a graph whose weights changed mid-search.  Writer priority
    — new readers queue behind a waiting writer — bounds update latency
    under sustained query load.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class KNNServer:
    """Serve kNN queries concurrently from a pool of worker threads.

    Parameters
    ----------
    engine:
        The :class:`QueryEngine` for the default object set.  Its
        :class:`IndexCache` is shared by every category engine, so road
        network indexes exist exactly once in the process.
    workers:
        Worker thread count.
    max_queue:
        Bound on queued (admitted, unserved) requests — the admission
        control knob.  Submits beyond it are answered ``rejected``.
    max_batch:
        Most requests one worker drains per dispatch round.
    cache_capacity:
        Result-cache entries (0 disables result caching).
    categories:
        Optional ``{name: object_vertex_ids}`` POI categories; each is
        served by ``engine.with_objects(ids)`` over the shared index
        cache.  Requests select one via ``category=``; ``None`` is the
        default engine.
    default_deadline_s:
        Deadline applied to requests that do not carry their own.
    retry_policy:
        Server-side retry budget for *transient* errors (see
        :mod:`repro.resilience.errors`); a :class:`RetryPolicy` with
        capped jittered exponential backoff.  The default allows two
        retries; ``RetryPolicy(max_attempts=1)`` disables retrying.
    breaker_threshold / breaker_cooldown_s:
        Per-method circuit breaker tuning: consecutive primary-method
        failures that trip a breaker open, and how long it stays open
        before letting a half-open probe through.
    supervise:
        Run the worker supervisor (default True): a daemon thread that
        heartbeat-checks the pool every ``heartbeat_interval_s`` and
        replaces workers that died or have not beaten for
        ``wedge_timeout_s`` (wedged threads are abandoned — told to
        exit at their next checkpoint — and replaced immediately).
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        workers: int = 4,
        max_queue: int = 1024,
        max_batch: int = 32,
        cache_capacity: int = 4096,
        categories: Optional[Dict[str, Sequence[int]]] = None,
        default_deadline_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
        supervise: bool = True,
        heartbeat_interval_s: float = 0.25,
        wedge_timeout_s: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.workers = workers
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.default_deadline_s = default_deadline_s
        self.cache = ResultCache(cache_capacity)
        self._graph_fp = engine.graph.fingerprint()
        self._engines: Dict[Optional[str], QueryEngine] = {None: engine}
        self._objects_fp: Dict[Optional[str], str] = {
            None: objects_fingerprint(engine.objects)
        }
        for name, objects in (categories or {}).items():
            self._engines[name] = engine.with_objects(objects)
            self._objects_fp[name] = objects_fingerprint(objects)
        # One mutex guards the queue, the stats and the engine/category
        # maps; workers block on the condition, never spin.  The RW lock
        # fences queries (readers) against live updates (the writer).
        self._update_lock = _RWLock()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._queue: collections.deque = collections.deque()
        self._threads: List[threading.Thread] = []
        self._running = False
        self._stats = collections.Counter()
        self._batch_sizes: collections.Counter = collections.Counter()
        # Flush markers: value of each lifetime statistic when
        # :meth:`flush_stats` last ran.  ``stats()`` subtracts them to
        # report the since-last-flush window next to the lifetime totals.
        self._flush_stats = collections.Counter()
        self._flush_batch_sizes: collections.Counter = collections.Counter()
        self._flush_cache: Dict[str, int] = {}
        # Resilience: retries, per-method circuit breakers, worker
        # supervision (heartbeats + replacement of dead/wedged threads).
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.supervise = supervise
        self.heartbeat_interval_s = heartbeat_interval_s
        self.wedge_timeout_s = wedge_timeout_s
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._heartbeats = Heartbeats()
        self._abandoned: set = set()
        self._worker_seq = 0
        self._supervisor: Optional[Supervisor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, warmup_methods: Optional[Sequence[str]] = None) -> "KNNServer":
        """Spin up the worker pool (idempotent).

        ``warmup_methods`` resolves and instantiates those methods for
        every category *before* accepting traffic, so the first request
        never pays algorithm construction.  With a store-backed engine
        the indexes load from disk; either way nothing is built twice —
        the index cache build paths are locked per key.
        """
        with self._lock:
            if self._running:
                return self
            self._running = True
        for name in warmup_methods or ():
            for engine in self._engines.values():
                resolved = engine.resolve_method(name)
                if engine.objects:
                    engine.algorithm(resolved)
        for _ in range(self.workers):
            self._spawn_worker()
        if self.supervise:
            self._supervisor = Supervisor(
                self._check_workers, interval_s=self.heartbeat_interval_s
            ).start()
        return self

    def _spawn_worker(self) -> threading.Thread:
        with self._lock:
            self._worker_seq += 1
            name = f"knn-worker-{self._worker_seq}"
            t = threading.Thread(
                target=self._worker_loop, name=name, daemon=True
            )
            t.start()
            self._threads.append(t)
        return t

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the pool; with ``drain`` (default) serve the backlog first."""
        # Supervisor first — it must not resurrect workers that are
        # exiting because the server is stopping.
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        dropped: List[PendingRequest] = []
        with self._lock:
            if not self._running:
                return
            if not drain:
                while self._queue:
                    dropped.append(self._queue.popleft())
            self._running = False
            self._work_ready.notify_all()
        for pending in dropped:
            self._finish(pending, ServerResponse(
                request=pending.request,
                status=REJECTED,
                error="server stopping",
                latency_s=self._latency(pending.request),
            ))
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()
        self._heartbeats.clear()
        with self._lock:
            self._abandoned.clear()

    def __enter__(self) -> "KNNServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        vertex: int,
        k: int,
        method: str = "auto",
        *,
        category: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> PendingRequest:
        """Enqueue one request; returns immediately with its future.

        Admission control happens here: a full queue (or a stopped
        server) completes the future at once with status ``rejected``.
        Unknown categories raise :class:`UnknownCategory` — that is a
        client programming error, not a load condition.
        """
        if category not in self._engines:
            raise UnknownCategory(category, list(self._engines))
        request = ServerRequest(
            vertex=int(vertex),
            k=int(k),
            method=method,
            category=category,
            deadline_s=(
                self.default_deadline_s if deadline_s is None else deadline_s
            ),
            submitted_at=time.monotonic(),
        )
        pending = PendingRequest(request)
        with self._lock:
            if not self._running:
                raise ServerClosed("server is not running; call start()")
            if len(self._queue) >= self.max_queue:
                self._stats["rejected"] += 1
                reg = obs.REGISTRY
                if reg.enabled:
                    reg.counter(
                        "server_requests_total",
                        "server requests by final status",
                        status=REJECTED,
                    ).inc()
                pending.complete(ServerResponse(
                    request=request, status=REJECTED,
                    error=f"queue full ({self.max_queue})",
                ))
                return pending
            self._stats["submitted"] += 1
            self._queue.append(pending)
            self._work_ready.notify()
        return pending

    def query(
        self,
        vertex: int,
        k: int,
        method: str = "auto",
        *,
        category: Optional[str] = None,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = 30.0,
    ) -> ServerResponse:
        """Synchronous convenience: submit and wait for the response."""
        return self.submit(
            vertex, k, method, category=category, deadline_s=deadline_s
        ).result(timeout)

    def with_objects(
        self, objects: Sequence[int], category: Optional[str] = None
    ) -> None:
        """Swap the object set served under ``category`` (live).

        Installs a fresh engine over the shared index cache (only the
        small object indexes rebuild) and invalidates every result-cache
        entry recorded under the outgoing object fingerprint, so no
        request can ever observe the old POI set again.  New categories
        may be installed the same way.
        """
        new_engine = self._engines[None].with_objects(objects)
        new_fp = objects_fingerprint(objects)
        with self._lock:
            old_fp = self._objects_fp.get(category)
            self._engines[category] = new_engine
            self._objects_fp[category] = new_fp
        if old_fp is not None and old_fp != new_fp:
            self.cache.invalidate(old_fp)

    def apply_updates(
        self, deltas: Sequence, category: Optional[str] = None
    ):
        """Apply live deltas under the write lock; returns the report.

        Takes the writer side of the update lock, so every in-flight
        query drains first and none starts until the indexes and cache
        are consistent again.

        * **Weight deltas** (shared road network) go through the default
          engine's :meth:`~repro.engine.engine.QueryEngine.apply_updates`
          — one graph mutation plus in-place index repair.  Every other
          category engine then drops its algorithm instances (they
          snapshot weights), the cached graph fingerprint is refreshed
          and the *whole* result cache is invalidated: every prior
          answer was computed on the old weights.
        * **Object deltas** target exactly one ``category``'s engine;
          only cache entries under that category's outgoing object
          fingerprint are invalidated — other categories' entries stay
          hot, the same targeted rule :meth:`with_objects` uses.
        """
        from repro.updates import UpdateReport, split_deltas

        obj_deltas, weight_deltas = split_deltas(deltas)
        report = UpdateReport()
        start = time.monotonic()
        with self._update_lock.write():
            hold_start = time.perf_counter()
            if weight_deltas:
                with self._lock:
                    default = self._engines[None]
                    others = [
                        e for e in self._engines.values() if e is not default
                    ]
                sub = default.apply_updates(weight_deltas)
                report.weight_changes.extend(sub.weight_changes)
                for name, counters in sub.repaired.items():
                    report.merge_repair(name, counters)
                report.dropped.extend(sub.dropped)
                if sub.weights_changed:
                    for engine in others:
                        engine.invalidate_algorithms()
                    with self._lock:
                        self._graph_fp = default.graph.fingerprint()
                    self.cache.invalidate()
            if obj_deltas:
                engine = self.engine_for(category)
                sub = engine.apply_updates(obj_deltas)
                report.objects_added += sub.objects_added
                report.objects_removed += sub.objects_removed
                report.dropped.extend(sub.dropped)
                new_fp = objects_fingerprint(engine.objects)
                with self._lock:
                    old_fp = self._objects_fp.get(category)
                    self._objects_fp[category] = new_fp
                if old_fp is not None and old_fp != new_fp:
                    self.cache.invalidate(old_fp)
        reg = obs.REGISTRY
        if reg.enabled:
            reg.histogram(
                "server_write_hold_seconds",
                "write-lock hold time per update batch",
            ).observe(time.perf_counter() - hold_start)
        report.elapsed_s = time.monotonic() - start
        return report

    def categories(self) -> List[Optional[str]]:
        with self._lock:
            return list(self._engines)

    def engine_for(self, category: Optional[str] = None) -> QueryEngine:
        with self._lock:
            try:
                return self._engines[category]
            except KeyError:
                raise UnknownCategory(category, list(self._engines)) from None

    def _category_state(self, category: Optional[str]):
        """The (engine, objects fingerprint) pair, read atomically.

        Workers must never mix the two across a concurrent
        :meth:`with_objects` swap: pairing the old engine with the new
        fingerprint would cache the old object set's answer under the
        new key — a stale POI served forever.
        """
        with self._lock:
            return self._engines[category], self._objects_fp[category]

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            with self._lock:
                if name in self._abandoned:
                    # The supervisor declared this thread wedged and
                    # already spawned a replacement; exit quietly.
                    self._abandoned.discard(name)
                    return
            self._heartbeats.beat(name)
            try:
                # Chaos hooks: a stall makes this worker miss heartbeats
                # (the supervisor's wedge detection fires); a kill makes
                # the thread exit mid-service (death detection fires).
                fault_check("worker.stall")
                fault_check("worker.die")
            except WorkerKilled:
                reg = obs.REGISTRY
                if reg.enabled:
                    reg.counter(
                        "server_worker_deaths_total",
                        "worker threads killed by an injected fault",
                    ).inc()
                return
            batch = self._next_batch(name)
            if batch is None:
                return
            if batch:
                reg = obs.REGISTRY
                if reg.enabled:
                    reg.histogram(
                        "server_batch_size",
                        "requests drained per worker dispatch",
                    ).observe(len(batch))
            for group in coalesce(batch):
                self._serve_group(group)

    def _next_batch(
        self, name: Optional[str] = None
    ) -> Optional[List[PendingRequest]]:
        """Block for work, then drain up to ``max_batch`` requests."""
        with self._work_ready:
            while self._running and not self._queue:
                if name is not None:
                    if name in self._abandoned:
                        return []  # loop re-checks and exits
                    self._heartbeats.beat(name)
                self._work_ready.wait(timeout=0.1)
            if not self._queue:
                if not self._running:
                    return None  # drained and stopping
                return []  # spurious wakeup under load; loop again
            batch = []
            while self._queue and len(batch) < self.max_batch:
                batch.append(self._queue.popleft())
            return batch

    def _check_workers(self) -> None:
        """Supervisor hook: replace dead workers, abandon wedged ones.

        A dead thread (uncaught exception, injected ``worker.die``) is
        removed and replaced.  A wedged thread — alive but silent for
        longer than ``wedge_timeout_s`` — cannot be killed from outside
        in Python, so it is *abandoned*: marked to exit at its next
        checkpoint and replaced immediately, restoring pool capacity
        without waiting for the stall to clear.
        """
        if not self._running:
            return
        with self._lock:
            threads = list(self._threads)
        stale: List[tuple] = []
        for t in threads:
            if not t.is_alive():
                stale.append((t, "died"))
                continue
            age = self._heartbeats.age_s(t.name)
            if age is not None and age > self.wedge_timeout_s:
                stale.append((t, "wedged"))
        if not stale:
            return
        reg = obs.REGISTRY
        for t, reason in stale:
            with self._lock:
                if t in self._threads:
                    self._threads.remove(t)
                if reason == "wedged":
                    self._abandoned.add(t.name)
                self._stats["worker_restarts"] += 1
                self._stats[f"worker_restarts_{reason}"] += 1
            self._heartbeats.drop(t.name)
            if reg.enabled:
                reg.counter(
                    "server_worker_restarts_total",
                    "workers replaced by the supervisor, by reason",
                    reason=reason,
                ).inc()
            self._spawn_worker()

    def _breaker(self, method: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                )
                self._breakers[method] = breaker
            return breaker

    def _latency(self, request: ServerRequest) -> float:
        return time.monotonic() - request.submitted_at

    def _finish(self, pending: PendingRequest, response: ServerResponse) -> None:
        with self._lock:
            self._stats[response.status] += 1
            if response.cache_hit:
                self._stats["cache_hits"] += 1
            if response.coalesced:
                self._stats["coalesced_hits"] += 1
            if response.degraded:
                self._stats["degraded"] += 1
        reg = obs.REGISTRY
        if reg.enabled:
            reg.counter(
                "server_requests_total",
                "server requests by final status",
                status=response.status,
            ).inc()
            if response.latency_s is not None:
                reg.histogram(
                    "server_request_seconds",
                    "submit-to-response latency",
                    status=response.status,
                ).observe(response.latency_s)
        pending.complete(response)

    def _serve_group(self, group: BatchGroup) -> None:
        """Answer every waiter of one coalesced group."""
        with self._lock:
            self._batch_sizes[len(group.waiters)] += 1
        now = time.monotonic()
        reg = obs.REGISTRY
        if reg.enabled:
            wait_h = reg.histogram(
                "server_queue_wait_seconds", "submit-to-worker queue wait"
            )
            for pending in group.waiters:
                wait_h.observe(now - pending.request.submitted_at)
            reg.histogram(
                "server_group_size", "waiters per coalesced group"
            ).observe(len(group.waiters))
        live: List[PendingRequest] = []
        for pending in group.waiters:
            if pending.request.expired(now):
                if reg.enabled:
                    reg.counter(
                        "server_deadline_missed_total",
                        "requests whose deadline passed, by stage",
                        stage="queued",
                    ).inc()
                self._finish(pending, ServerResponse(
                    request=pending.request,
                    status=DEADLINE_EXCEEDED,
                    error=f"expired after {pending.request.deadline_s}s in queue",
                    latency_s=now - pending.request.submitted_at,
                ))
            else:
                live.append(pending)
        if not live:
            return
        # Retry budget: transient errors are retried with capped jittered
        # backoff, but never past the earliest waiter deadline — backing
        # off into certain expiry helps nobody.
        deadlines = [
            p.request.submitted_at + p.request.deadline_s
            for p in live
            if p.request.deadline_s is not None
        ]
        deadline = min(deadlines) if len(deadlines) == len(live) else None
        policy = self.retry_policy
        retries = 0
        attempt = 0
        while True:
            attempt += 1
            result, cache_hit, error, error_class = self._attempt_group(group)
            if error is None or not error_class.transient:
                break
            if attempt >= policy.max_attempts:
                break
            backoff = policy.backoff_s(attempt)
            if deadline is not None and time.monotonic() + backoff >= deadline:
                break
            if reg.enabled:
                reg.counter(
                    "server_retries_total",
                    "transient-error retries, by error class",
                    **{"class": error_class.name},
                ).inc()
            retries += 1
            # Sleep outside every lock; the next attempt re-acquires the
            # read lock so a concurrent update is never blocked by a
            # backing-off worker.
            time.sleep(backoff)
        if retries:
            with self._lock:
                self._stats["retries"] += retries
        # Re-check deadlines *after* execution: a request whose deadline
        # passed while its query ran gets deadline_exceeded, not a late
        # success the client has already given up on.
        now = time.monotonic()
        for i, pending in enumerate(live):
            if error is None and pending.request.expired(now):
                if reg.enabled:
                    reg.counter(
                        "server_deadline_missed_total",
                        "requests whose deadline passed, by stage",
                        stage="executing",
                    ).inc()
                response = ServerResponse(
                    request=pending.request,
                    status=DEADLINE_EXCEEDED,
                    error=(
                        f"expired after {pending.request.deadline_s}s "
                        "(completed too late)"
                    ),
                    latency_s=now - pending.request.submitted_at,
                    retries=retries,
                )
            elif error is not None:
                response = ServerResponse(
                    request=pending.request, status=ERROR, error=error,
                    latency_s=self._latency(pending.request),
                    retries=retries,
                )
            else:
                response = ServerResponse(
                    request=pending.request,
                    status=OK,
                    result=result,
                    latency_s=self._latency(pending.request),
                    cache_hit=cache_hit,
                    coalesced=i > 0,
                    degraded=result.degraded,
                    fallback_from=result.fallback_from,
                    retries=retries,
                )
            self._finish(pending, response)

    def _attempt_group(self, group: BatchGroup):
        """One attempt at computing a group's answer.

        Returns ``(result, cache_hit, error, error_class)`` — ``error``
        is None on success, otherwise the formatted message with its
        :class:`~repro.resilience.errors.ErrorClass` (which the caller
        consults for retryability).  The circuit breaker of the resolved
        method gates the attempt: an open breaker steers the query
        around the method via ``avoid_methods`` instead of letting it
        fail again; a fallback success still counts as a *primary*
        failure so the breaker keeps tracking the broken method.
        """
        reg = obs.REGISTRY
        cache_hit = False
        result = None
        error: Optional[str] = None
        error_class = None
        breaker = None
        allowed = False
        # The read side of the update lock: queries in this section see
        # a frozen (graph weights, indexes, object sets, cache) world; a
        # concurrent apply_updates waits for it to drain.
        with self._update_lock.read():
            read_start = time.perf_counter()
            with _span(
                "serve_group",
                vertex=group.vertex,
                k=group.k,
                waiters=len(group.waiters),
            ):
                try:
                    engine, objects_fp = self._category_state(group.category)
                    key = result_key(
                        self._graph_fp,
                        objects_fp,
                        group.vertex,
                        group.k,
                        # Cache under the planner's resolution so "auto"
                        # and the explicit method it resolves to share
                        # entries.  This can raise (UnknownMethod on a
                        # bad client-supplied name), so it runs inside
                        # the answer-the-waiters guard.
                        resolved := engine.resolve_method(group.method, group.k),
                    )
                    result = self.cache.get(key)
                    if result is not None:
                        cache_hit = True
                    else:
                        breaker = self._breaker(resolved)
                        allowed = breaker.allow()
                        if not allowed and reg.enabled:
                            reg.counter(
                                "server_breaker_short_circuits_total",
                                "queries steered around an open breaker",
                                method=resolved,
                            ).inc()
                        result = engine.query(
                            group.vertex,
                            group.k,
                            method=group.method,
                            avoid_methods=(
                                frozenset() if allowed
                                else frozenset((resolved,))
                            ),
                        )
                        if allowed:
                            if result.fallback_from == resolved:
                                breaker.record_failure()
                            else:
                                breaker.record_success()
                        if not result.degraded:
                            # A degraded answer is exact but carries
                            # fallback provenance; caching it would keep
                            # reporting "degraded" long after the
                            # primary method recovered.
                            self.cache.put(key, result)
                except Exception as exc:  # answer waiters, not the worker
                    if breaker is not None and allowed:
                        breaker.record_failure()
                    result = None
                    error_class = classify(exc)
                    error = f"{type(exc).__name__}: {exc}"
                    if reg.enabled:
                        reg.counter(
                            "server_errors_total",
                            "serve errors by taxonomy class",
                            **{"class": error_class.name},
                        ).inc()
        if reg.enabled:
            reg.histogram(
                "server_read_hold_seconds",
                "read-lock hold time per served group",
            ).observe(time.perf_counter() - read_start)
            if error is None:
                reg.counter(
                    "server_cache_requests_total",
                    "result-cache lookups by outcome",
                    outcome="hit" if cache_hit else "miss",
                ).inc()
        return result, cache_hit, error, error_class

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_summary(sizes: Dict[int, int], coalesced: int) -> Dict[str, object]:
        dispatches = sum(sizes.values())
        requests = sum(n * c for n, c in sizes.items())
        return {
            "dispatches": dispatches,
            "mean_group_size": round(requests / dispatches, 3)
            if dispatches
            else 0.0,
            "coalesced_hits": coalesced,
        }

    def stats(self) -> Dict[str, object]:
        """A point-in-time stats snapshot (counts, batching, cache).

        Top-level keys are **lifetime** totals since :meth:`start` —
        the shape every existing consumer reads.  The ``since_flush``
        section repeats ``counts``/``batch``/``cache`` as the window
        since the last :meth:`flush_stats` call (the whole lifetime if
        it never ran), so an operator tailing a long-lived server can
        see current behaviour instead of history-dominated averages.
        """
        with self._lock:
            counts = dict(self._stats)
            sizes = dict(self._batch_sizes)
            queued = len(self._queue)
            window_counts = dict(self._stats - self._flush_stats)
            window_sizes = dict(self._batch_sizes - self._flush_batch_sizes)
            cache_marker = dict(self._flush_cache)
        cache_stats = self.cache.stats()
        window_cache: Dict[str, object] = {}
        for key, value in cache_stats.items():
            if key in ("hits", "misses", "evictions", "invalidations"):
                window_cache[key] = value - cache_marker.get(key, 0)
            elif key != "hit_rate":
                window_cache[key] = value
        wh, wm = window_cache.get("hits", 0), window_cache.get("misses", 0)
        window_cache["hit_rate"] = round(wh / (wh + wm), 4) if wh + wm else 0.0
        return {
            "queued": queued,
            "workers": self.workers,
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "counts": counts,
            "batch": self._batch_summary(
                sizes, counts.get("coalesced_hits", 0)
            ),
            "cache": cache_stats,
            "since_flush": {
                "counts": window_counts,
                "batch": self._batch_summary(
                    window_sizes, window_counts.get("coalesced_hits", 0)
                ),
                "cache": window_cache,
            },
            # Hot-path kernel the serving engine resolves queries on
            # ("array" unless the operator forced the reference loops).
            "kernel": getattr(self._engines[None], "kernel", None),
        }

    def flush_stats(self) -> Dict[str, object]:
        """Close the current stats window and start a new one.

        Returns the :meth:`stats` snapshot taken at the flush point (its
        ``since_flush`` section is the window that just closed); the
        lifetime totals are never reset.
        """
        snapshot = self.stats()
        with self._lock:
            self._flush_stats = collections.Counter(self._stats)
            self._flush_batch_sizes = collections.Counter(self._batch_sizes)
            self._flush_cache = {
                k: v
                for k, v in self.cache.stats().items()
                if k in ("hits", "misses", "evictions", "invalidations")
            }
        return snapshot

    def health(self) -> Dict[str, object]:
        """A liveness/resilience snapshot for operators.

        Reports worker liveness (configured vs alive, supervisor
        restarts by reason, per-worker heartbeat ages), every circuit
        breaker's state machine snapshot, quarantine counts for the
        serving store and the installed fault plan (None in production).
        ``status`` is ``"ok"``, ``"degraded"`` (open/half-open breaker
        or missing workers) or ``"stopped"``.
        """
        with self._lock:
            running = self._running
            queued = len(self._queue)
            threads = list(self._threads)
            breakers = {
                method: breaker.snapshot()
                for method, breaker in self._breakers.items()
            }
            restarts = {
                reason: self._stats.get(f"worker_restarts_{reason}", 0)
                for reason in ("died", "wedged")
                if self._stats.get(f"worker_restarts_{reason}", 0)
            }
            restarts_total = self._stats.get("worker_restarts", 0)
        alive = sum(1 for t in threads if t.is_alive())
        store = getattr(self._engines[None].workbench, "store", None)
        plan = current_plan()
        degraded = (
            any(s["state"] != "closed" for s in breakers.values())
            or (running and alive < self.workers)
        )
        status = "stopped" if not running else (
            "degraded" if degraded else "ok"
        )
        return {
            "status": status,
            "running": running,
            "queued": queued,
            "workers": {
                "configured": self.workers,
                "alive": alive,
                "restarts_total": restarts_total,
                "restarts": restarts,
                "heartbeat_age_s": {
                    name: round(age, 3)
                    for name, age in self._heartbeats.snapshot().items()
                },
            },
            "breakers": breakers,
            "quarantine": (
                quarantine_counts(store.root) if store is not None else {}
            ),
            "fault_plan": plan.snapshot() if plan is not None else None,
        }

    def metrics_text(self) -> str:
        """The process-wide metrics registry in Prometheus text format."""
        return obs.REGISTRY.to_prometheus()
