"""Workload generators for the kNN server load tests.

Each generator returns a list of :class:`WorkItem` — plain request specs
the load driver replays against a :class:`~repro.server.server.KNNServer`
(or sequentially against a bare engine for the baseline).  The shapes
model the request streams a POI service actually sees:

* :func:`uniform_workload` — every vertex equally likely; the
  cache-hostile floor.
* :func:`hotspot_workload` — Zipf-skewed popularity (a city centre, a
  stadium on match day); the stream real caches feed on.
* :func:`diurnal_workload` — arrival *times* follow a sinusoidal
  day/night rate curve; exercises open-loop pacing, burst admission and
  queue depth.
* :func:`category_switching_workload` — clients hop between POI
  categories (restaurants → fuel → parking), exercising per-category
  engines and batch grouping by object set.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class WorkItem:
    """One request spec: what to ask and (optionally) when."""

    vertex: int
    k: int
    method: str = "auto"
    category: Optional[str] = None
    #: Arrival offset in seconds from workload start (open-loop driver);
    #: closed-loop drivers ignore it.
    at_s: float = 0.0


def uniform_workload(
    graph: Graph, n: int, k: int, *, method: str = "auto", seed: int = 0
) -> List[WorkItem]:
    """``n`` queries from uniformly random vertices."""
    rng = np.random.default_rng(seed)
    vertices = rng.integers(0, graph.num_vertices, size=n)
    return [WorkItem(int(v), int(k), method=method) for v in vertices]


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf probabilities ``p(rank r) ∝ 1 / r^skew``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def hotspot_workload(
    graph: Graph,
    n: int,
    k: int,
    *,
    hot_vertices: int = 64,
    skew: float = 1.1,
    method: str = "auto",
    seed: int = 0,
) -> List[WorkItem]:
    """Zipf-skewed queries over a random hot set of vertices.

    ``hot_vertices`` random vertices get Zipf(``skew``) popularity; with
    the defaults the top vertex absorbs roughly a fifth of all traffic —
    the regime where result caching and request coalescing pay.
    """
    rng = np.random.default_rng(seed)
    pool = min(hot_vertices, graph.num_vertices)
    hot = rng.choice(graph.num_vertices, size=pool, replace=False)
    picks = rng.choice(hot, size=n, p=zipf_weights(pool, skew))
    return [WorkItem(int(v), int(k), method=method) for v in picks]


def diurnal_workload(
    graph: Graph,
    n: int,
    k: int,
    *,
    period_s: float = 60.0,
    peak_qps: float = 200.0,
    trough_qps: float = 20.0,
    hot_vertices: int = 64,
    skew: float = 1.1,
    method: str = "auto",
    seed: int = 0,
) -> List[WorkItem]:
    """Hotspot queries whose arrival times ramp like a day/night cycle.

    Arrivals follow an inhomogeneous Poisson process with rate
    ``trough + (peak - trough) * (1 - cos(2πt/period)) / 2`` — the
    workload starts at the trough, crests mid-period and returns.  The
    open-loop driver replays ``at_s`` faithfully; tail latency under the
    crest is the interesting output.
    """
    if peak_qps <= 0 or trough_qps <= 0:
        raise ValueError("rates must be positive")
    rng = np.random.default_rng(seed)
    items = hotspot_workload(
        graph, n, k, hot_vertices=hot_vertices, skew=skew,
        method=method, seed=seed + 1,
    )
    t = 0.0
    out: List[WorkItem] = []
    for item in items:
        rate = trough_qps + (peak_qps - trough_qps) * (
            1.0 - math.cos(2.0 * math.pi * t / period_s)
        ) / 2.0
        t += float(rng.exponential(1.0 / rate))
        out.append(WorkItem(item.vertex, item.k, method=item.method, at_s=t))
    return out


def category_switching_workload(
    graph: Graph,
    n: int,
    k: int,
    categories: Sequence[str],
    *,
    switch_every: int = 10,
    method: str = "auto",
    seed: int = 0,
) -> List[WorkItem]:
    """Uniform queries that cycle through POI categories.

    Every ``switch_every`` consecutive requests target the next category
    (restaurants, then fuel, then parking, ...), the way one user session
    hops between POI types.  Exercises the server's per-category engines
    and the dispatcher's same-object-set grouping.
    """
    if not categories:
        raise ValueError("need at least one category")
    if switch_every < 1:
        raise ValueError("switch_every must be >= 1")
    rng = np.random.default_rng(seed)
    vertices = rng.integers(0, graph.num_vertices, size=n)
    return [
        WorkItem(
            int(v),
            int(k),
            method=method,
            category=categories[(i // switch_every) % len(categories)],
        )
        for i, v in enumerate(vertices)
    ]
