"""Workload generators for the kNN server load tests.

Each generator returns a list of :class:`WorkItem` — plain request specs
the load driver replays against a :class:`~repro.server.server.KNNServer`
(or sequentially against a bare engine for the baseline).  The shapes
model the request streams a POI service actually sees:

* :func:`uniform_workload` — every vertex equally likely; the
  cache-hostile floor.
* :func:`hotspot_workload` — Zipf-skewed popularity (a city centre, a
  stadium on match day); the stream real caches feed on.
* :func:`diurnal_workload` — arrival *times* follow a sinusoidal
  day/night rate curve; exercises open-loop pacing, burst admission and
  queue depth.
* :func:`category_switching_workload` — clients hop between POI
  categories (restaurants → fuel → parking), exercising per-category
  engines and batch grouping by object set.
* :func:`mixed_update_workload` — a read stream plus a paced sequence of
  :class:`UpdateItem` live-update batches (POI churn and travel-weight
  drift) for the read/write driver
  (:func:`repro.server.loadgen.run_mixed_closed_loop`).

All generators are deterministic in ``seed``: the same seed always
yields the same item sequence (see ``tests/conftest.py`` for the
repo-wide seeding convention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.updates import ObjectDelta, WeightDelta, set_weight


@dataclass(frozen=True)
class WorkItem:
    """One request spec: what to ask and (optionally) when."""

    vertex: int
    k: int
    method: str = "auto"
    category: Optional[str] = None
    #: Arrival offset in seconds from workload start (open-loop driver);
    #: closed-loop drivers ignore it.
    at_s: float = 0.0


def uniform_workload(
    graph: Graph, n: int, k: int, *, method: str = "auto", seed: int = 0
) -> List[WorkItem]:
    """``n`` queries from uniformly random vertices."""
    rng = np.random.default_rng(seed)
    vertices = rng.integers(0, graph.num_vertices, size=n)
    return [WorkItem(int(v), int(k), method=method) for v in vertices]


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf probabilities ``p(rank r) ∝ 1 / r^skew``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def hotspot_workload(
    graph: Graph,
    n: int,
    k: int,
    *,
    hot_vertices: int = 64,
    skew: float = 1.1,
    method: str = "auto",
    seed: int = 0,
) -> List[WorkItem]:
    """Zipf-skewed queries over a random hot set of vertices.

    ``hot_vertices`` random vertices get Zipf(``skew``) popularity; with
    the defaults the top vertex absorbs roughly a fifth of all traffic —
    the regime where result caching and request coalescing pay.
    """
    rng = np.random.default_rng(seed)
    pool = min(hot_vertices, graph.num_vertices)
    hot = rng.choice(graph.num_vertices, size=pool, replace=False)
    picks = rng.choice(hot, size=n, p=zipf_weights(pool, skew))
    return [WorkItem(int(v), int(k), method=method) for v in picks]


def diurnal_workload(
    graph: Graph,
    n: int,
    k: int,
    *,
    period_s: float = 60.0,
    peak_qps: float = 200.0,
    trough_qps: float = 20.0,
    hot_vertices: int = 64,
    skew: float = 1.1,
    method: str = "auto",
    seed: int = 0,
) -> List[WorkItem]:
    """Hotspot queries whose arrival times ramp like a day/night cycle.

    Arrivals follow an inhomogeneous Poisson process with rate
    ``trough + (peak - trough) * (1 - cos(2πt/period)) / 2`` — the
    workload starts at the trough, crests mid-period and returns.  The
    open-loop driver replays ``at_s`` faithfully; tail latency under the
    crest is the interesting output.
    """
    if peak_qps <= 0 or trough_qps <= 0:
        raise ValueError("rates must be positive")
    rng = np.random.default_rng(seed)
    items = hotspot_workload(
        graph, n, k, hot_vertices=hot_vertices, skew=skew,
        method=method, seed=seed + 1,
    )
    t = 0.0
    out: List[WorkItem] = []
    for item in items:
        rate = trough_qps + (peak_qps - trough_qps) * (
            1.0 - math.cos(2.0 * math.pi * t / period_s)
        ) / 2.0
        t += float(rng.exponential(1.0 / rate))
        out.append(WorkItem(item.vertex, item.k, method=item.method, at_s=t))
    return out


@dataclass(frozen=True)
class UpdateItem:
    """One live-update batch the writer thread applies atomically.

    ``kind`` labels the batch for reporting (``"objects"``,
    ``"weights"`` or ``"mixed"``); ``after_reads`` is the closed-loop
    pacing mark — the writer fires this batch once the shared
    completed-read counter reaches it, so the offered update rate scales
    with read throughput instead of wall-clock guesswork.
    """

    kind: str
    deltas: Tuple[object, ...]
    category: Optional[str] = None
    after_reads: int = 0


def mixed_update_workload(
    graph: Graph,
    n_reads: int,
    k: int,
    objects: Sequence[int],
    *,
    updates: int = 8,
    deltas_per_update: int = 4,
    weight_fraction: float = 0.5,
    weight_scale: Tuple[float, float] = (0.5, 2.0),
    method: str = "auto",
    seed: int = 0,
) -> Tuple[List[WorkItem], List[UpdateItem]]:
    """A read stream plus ``updates`` evenly paced live-update batches.

    Each batch holds ``deltas_per_update`` deltas, each independently a
    weight delta (probability ``weight_fraction``) or an object delta.
    Weight deltas pick a random vertex and one of its incident edges and
    set an absolute weight of ``original * U(weight_scale)`` — bounded
    drift no matter how many batches apply.  Object deltas track the
    evolving object set, so removals always target a present object and
    additions a free vertex; the stream is therefore valid to apply in
    order against ``objects``.

    Update batch ``i`` (0-based) is paced ``after_reads = (i + 1) *
    n_reads // (updates + 1)`` — spread through the read stream with a
    quiet head and tail for clean before/after latency comparison.
    """
    if not 0.0 <= weight_fraction <= 1.0:
        raise ValueError("weight_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    reads = [
        WorkItem(int(v), int(k), method=method)
        for v in rng.integers(0, graph.num_vertices, size=n_reads)
    ]
    present = set(int(o) for o in objects)
    free = sorted(set(range(graph.num_vertices)) - present)
    out: List[UpdateItem] = []
    for i in range(updates):
        deltas: List[object] = []
        kinds = set()
        for _ in range(deltas_per_update):
            if rng.random() < weight_fraction:
                u = int(rng.integers(0, graph.num_vertices))
                start, end = (
                    int(graph.vertex_start[u]),
                    int(graph.vertex_start[u + 1]),
                )
                if start == end:  # isolated vertex; skip this slot
                    continue
                e = int(rng.integers(start, end))
                v = int(graph.edge_target[e])
                base = float(graph.edge_weight[e])
                deltas.append(set_weight(
                    u, v, base * float(rng.uniform(*weight_scale))
                ))
                kinds.add("weights")
            elif present and (not free or rng.random() < 0.5):
                victim = int(rng.choice(sorted(present)))
                present.discard(victim)
                free.append(victim)
                deltas.append(ObjectDelta("remove", victim))
                kinds.add("objects")
            elif free:
                newcomer = free.pop(int(rng.integers(0, len(free))))
                present.add(newcomer)
                deltas.append(ObjectDelta("add", newcomer))
                kinds.add("objects")
        if not deltas:
            continue
        out.append(UpdateItem(
            kind=kinds.pop() if len(kinds) == 1 else "mixed",
            deltas=tuple(deltas),
            after_reads=(i + 1) * n_reads // (updates + 1),
        ))
    return reads, out


def category_switching_workload(
    graph: Graph,
    n: int,
    k: int,
    categories: Sequence[str],
    *,
    switch_every: int = 10,
    method: str = "auto",
    seed: int = 0,
) -> List[WorkItem]:
    """Uniform queries that cycle through POI categories.

    Every ``switch_every`` consecutive requests target the next category
    (restaurants, then fuel, then parking, ...), the way one user session
    hops between POI types.  Exercises the server's per-category engines
    and the dispatcher's same-object-set grouping.
    """
    if not categories:
        raise ValueError("need at least one category")
    if switch_every < 1:
        raise ValueError("switch_every must be >= 1")
    rng = np.random.default_rng(seed)
    vertices = rng.integers(0, graph.num_vertices, size=n)
    return [
        WorkItem(
            int(v),
            int(k),
            method=method,
            category=categories[(i // switch_every) % len(categories)],
        )
        for i, v in enumerate(vertices)
    ]
