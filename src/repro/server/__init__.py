"""Concurrent kNN query serving over warm, shared, read-only indexes.

The subsystem that turns :class:`~repro.engine.engine.QueryEngine` into a
query *service*: a :class:`KNNServer` (bounded queue, worker pool,
deadlines, admission control) with a micro-batching dispatcher
(:mod:`repro.server.batching`), a shared LRU result cache
(:mod:`repro.server.cache`), workload generators
(:mod:`repro.server.workloads`) and closed-/open-loop load drivers
(:mod:`repro.server.loadgen`).

Index construction stays offline (``repro build`` + the PR-2 store);
at serve time the worker pool dispatches over one warm
:class:`~repro.engine.workbench.IndexCache` and performs **zero** index
builds — ``BUILD_COUNTERS`` proves it.  See ``docs/serving.md``.

Quickstart::

    from repro import QueryEngine, road_network, uniform_objects
    from repro.server import KNNServer

    graph = road_network(500, seed=7)
    engine = QueryEngine(graph, uniform_objects(graph, 0.02, seed=1))
    with KNNServer(engine, workers=4) as server:
        response = server.query(42, k=5)
        assert response.result == engine.query(42, k=5)

CLI equivalents: ``repro serve`` and ``repro loadtest``.
"""

from repro.server.batching import BatchGroup, coalesce
from repro.server.cache import (
    ResultCache,
    objects_fingerprint,
    result_key,
)
from repro.server.loadgen import (
    LoadReport,
    percentile,
    run_closed_loop,
    run_mixed_closed_loop,
    run_open_loop,
    sequential_baseline,
)
from repro.server.request import (
    DEADLINE_EXCEEDED,
    ERROR,
    OK,
    REJECTED,
    STATUSES,
    PendingRequest,
    ServerRequest,
    ServerResponse,
)
from repro.server.server import KNNServer, ServerClosed, UnknownCategory
from repro.server.workloads import (
    UpdateItem,
    WorkItem,
    category_switching_workload,
    diurnal_workload,
    hotspot_workload,
    mixed_update_workload,
    uniform_workload,
    zipf_weights,
)

__all__ = [
    "KNNServer",
    "ServerClosed",
    "UnknownCategory",
    "ServerRequest",
    "ServerResponse",
    "PendingRequest",
    "OK",
    "REJECTED",
    "DEADLINE_EXCEEDED",
    "ERROR",
    "STATUSES",
    "ResultCache",
    "objects_fingerprint",
    "result_key",
    "BatchGroup",
    "coalesce",
    "WorkItem",
    "UpdateItem",
    "uniform_workload",
    "hotspot_workload",
    "diurnal_workload",
    "category_switching_workload",
    "mixed_update_workload",
    "zipf_weights",
    "LoadReport",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
    "run_mixed_closed_loop",
    "sequential_baseline",
]
