"""Load drivers and latency reporting for the kNN server.

Two driving disciplines, matching the standard load-testing taxonomy:

* **closed loop** (:func:`run_closed_loop`) — ``concurrency`` synthetic
  clients each submit one request, wait for its response, then submit
  the next.  Offered load adapts to the server; measures sustainable
  throughput.
* **open loop** (:func:`run_open_loop`) — requests are injected at the
  workload's ``at_s`` arrival times regardless of completions (the
  "users don't wait for each other" model); measures behaviour under an
  offered rate, including rejections once the bounded queue fills.

Both return a :class:`LoadReport` with throughput, p50/p95/p99 latency,
per-status counts and the server's cache/batching stats.
``LoadReport.to_dict()`` is the machine-readable ``BENCH_server.json``
payload the CLI ``loadtest`` subcommand emits for trajectory tracking.

:func:`sequential_baseline` runs the same workload single-threaded
through ``QueryEngine.query`` — the denominator for the server's
speedup claim.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.engine import QueryEngine
from repro.engine.query import KNNResult
from repro.server.request import ERROR, OK, PendingRequest
from repro.server.server import KNNServer
from repro.server.workloads import UpdateItem, WorkItem


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class LoadReport:
    """Everything one load-test run measured."""

    mode: str
    requests: int
    duration_s: float
    status_counts: Dict[str, int] = field(default_factory=dict)
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    server_stats: Dict[str, object] = field(default_factory=dict)
    baseline_qps: Optional[float] = None
    #: Per-item responses in workload order (not serialised); lets the
    #: caller verify server answers against a ground-truth run.  A slot
    #: is ``None`` where the driver timed out waiting for the response.
    responses: List[object] = field(default_factory=list, repr=False)
    #: Client-side resubmissions (error responses / wait timeouts that
    #: the driver retried with backoff); 0 when retries are disabled.
    client_retries: int = 0

    @property
    def completed(self) -> int:
        return self.status_counts.get(OK, 0)

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline_qps is None or self.baseline_qps <= 0:
            return None
        return self.throughput_qps / self.baseline_qps

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (the ``BENCH_server.json`` schema)."""
        return {
            "bench": "server_loadtest",
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "duration_s": round(self.duration_s, 6),
            "throughput_qps": round(self.throughput_qps, 3),
            "latency_ms": {
                "p50": round(self.latency_p50_ms, 4),
                "p95": round(self.latency_p95_ms, 4),
                "p99": round(self.latency_p99_ms, 4),
                "mean": round(self.latency_mean_ms, 4),
            },
            "status_counts": dict(self.status_counts),
            "client_retries": self.client_retries,
            "baseline_qps": (
                round(self.baseline_qps, 3) if self.baseline_qps else None
            ),
            "speedup": (
                round(self.speedup, 3) if self.speedup is not None else None
            ),
            "server": self.server_stats,
        }


def _report(
    mode: str,
    server: KNNServer,
    completed: Sequence[PendingRequest],
    duration_s: float,
    client_retries: int = 0,
) -> LoadReport:
    latencies_ms: List[float] = []
    status_counts: Dict[str, int] = {}
    responses = []
    for pending in completed:
        try:
            response = pending.result(timeout=0)
        except TimeoutError:
            # The driver gave up on this request (client-side timeout);
            # keep the slot so responses stays aligned with the workload.
            responses.append(None)
            status_counts["timeout"] = status_counts.get("timeout", 0) + 1
            continue
        responses.append(response)
        status_counts[response.status] = status_counts.get(response.status, 0) + 1
        if response.ok:
            latencies_ms.append(response.latency_s * 1e3)
    return LoadReport(
        mode=mode,
        requests=len(completed),
        duration_s=duration_s,
        status_counts=status_counts,
        latency_p50_ms=percentile(latencies_ms, 50),
        latency_p95_ms=percentile(latencies_ms, 95),
        latency_p99_ms=percentile(latencies_ms, 99),
        latency_mean_ms=(
            sum(latencies_ms) / len(latencies_ms) if latencies_ms else 0.0
        ),
        server_stats=server.stats(),
        responses=responses,
        client_retries=client_retries,
    )


class _RetryingClient:
    """Shared submit-await-retry discipline for the load drivers.

    A request is resubmitted (a *fresh* submission — the original may
    still complete; only the last attempt is reported) when the client
    times out waiting or receives an ``error`` response, up to
    ``retries`` times with doubling backoff capped at 100 ms.
    Rejections and deadline misses are **not** retried: they are the
    server's admission-control and timeliness signals, and hammering a
    full queue with resubmissions would only deepen the overload the
    bounded queue exists to shed.
    """

    def __init__(self, retries: int, backoff_s: float) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.backoff_s = backoff_s
        self.total = 0
        self._lock = threading.Lock()

    def _await(self, pending: PendingRequest, timeout_s: float):
        try:
            return pending.result(timeout=timeout_s)
        except TimeoutError:
            return None  # reported as a client-side timeout

    def _retryable(self, response) -> bool:
        return response is None or response.status == ERROR

    def drive(
        self, server: KNNServer, item: WorkItem, timeout_s: float
    ) -> PendingRequest:
        """Submit ``item`` and wait, retrying per the policy above."""
        pending = server.submit(
            item.vertex, item.k, item.method, category=item.category
        )
        response = self._await(pending, timeout_s)
        return self.redrive(server, item, pending, response, timeout_s)

    def redrive(
        self,
        server: KNNServer,
        item: WorkItem,
        pending: PendingRequest,
        response,
        timeout_s: float,
    ) -> PendingRequest:
        """Retry an already-awaited attempt until it sticks or budget ends."""
        attempt = 0
        while self._retryable(response) and attempt < self.retries:
            attempt += 1
            with self._lock:
                self.total += 1
            time.sleep(min(self.backoff_s * 2 ** (attempt - 1), 0.1))
            pending = server.submit(
                item.vertex, item.k, item.method, category=item.category
            )
            response = self._await(pending, timeout_s)
        return pending


def run_closed_loop(
    server: KNNServer,
    items: Sequence[WorkItem],
    *,
    concurrency: int = 8,
    timeout_s: float = 30.0,
    retries: int = 0,
    retry_backoff_s: float = 0.01,
) -> LoadReport:
    """Replay ``items`` from ``concurrency`` request-wait-request clients.

    ``retries`` > 0 resubmits error responses and client-side wait
    timeouts with doubling backoff (see :class:`_RetryingClient`); the
    report's ``client_retries`` counts every resubmission.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    done: List[PendingRequest] = [None] * len(items)  # type: ignore[list-item]
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    retrier = _RetryingClient(retries, retry_backoff_s)

    def client() -> None:
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(items):
                    return
                cursor["next"] = i + 1
            done[i] = retrier.drive(server, items[i], timeout_s)

    start = time.perf_counter()
    clients = [
        threading.Thread(target=client, name=f"load-client-{c}", daemon=True)
        for c in range(min(concurrency, max(1, len(items))))
    ]
    for t in clients:
        t.start()
    for t in clients:
        t.join()
    duration = time.perf_counter() - start
    return _report(
        "closed-loop", server, [p for p in done if p], duration,
        client_retries=retrier.total,
    )


def run_open_loop(
    server: KNNServer,
    items: Sequence[WorkItem],
    *,
    time_scale: float = 1.0,
    timeout_s: float = 30.0,
    retries: int = 0,
    retry_backoff_s: float = 0.01,
) -> LoadReport:
    """Inject ``items`` at their ``at_s`` arrival offsets, waits be damned.

    ``time_scale`` compresses the schedule (0.1 replays a 60 s diurnal
    trace in 6 s).  Requests are fired from one injector thread; all
    outstanding futures are awaited at the end.  Rejections (queue full
    at the offered rate) land in ``status_counts["rejected"]`` — that is
    the admission-control signal, not an error.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    submitted: List[PendingRequest] = []
    retrier = _RetryingClient(retries, retry_backoff_s)
    start = time.perf_counter()
    for item in items:
        due = start + item.at_s * time_scale
        delay = due - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        submitted.append(
            server.submit(
                item.vertex, item.k, item.method, category=item.category
            )
        )
    # Retries happen in the await pass so they never perturb the
    # injection schedule (the whole point of an open loop).
    for i, pending in enumerate(submitted):
        response = retrier._await(pending, timeout_s)
        submitted[i] = retrier.redrive(
            server, items[i], pending, response, timeout_s
        )
    duration = time.perf_counter() - start
    return _report(
        "open-loop", server, submitted, duration,
        client_retries=retrier.total,
    )


def run_mixed_closed_loop(
    server: KNNServer,
    items: Sequence[WorkItem],
    updates: Sequence[UpdateItem],
    *,
    concurrency: int = 8,
    timeout_s: float = 30.0,
    retries: int = 0,
    retry_backoff_s: float = 0.01,
) -> tuple:
    """Closed-loop readers racing one paced writer thread.

    ``concurrency`` clients drive the read workload exactly like
    :func:`run_closed_loop`; a single writer applies each
    :class:`UpdateItem` via :meth:`KNNServer.apply_updates` once the
    shared completed-read counter reaches its ``after_reads`` mark
    (leftover batches fire when the readers finish, so every update is
    always applied).  This is the query-latency-degradation-vs-update-
    rate experiment: compare the returned read report's percentiles
    against an update-free :func:`run_closed_loop` run of the same
    items.

    Returns ``(read_report, update_stats)`` where ``update_stats`` holds
    the update count, per-kind counts, apply-latency percentiles and the
    summed :class:`~repro.updates.UpdateReport` counters.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    done: List[PendingRequest] = [None] * len(items)  # type: ignore[list-item]
    cursor = {"next": 0, "reads_done": 0}
    cursor_lock = threading.Lock()
    readers_finished = threading.Event()
    retrier = _RetryingClient(retries, retry_backoff_s)

    def client() -> None:
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(items):
                    return
                cursor["next"] = i + 1
            done[i] = retrier.drive(server, items[i], timeout_s)
            with cursor_lock:
                cursor["reads_done"] += 1

    applied: List[tuple] = []  # (UpdateItem, UpdateReport, latency_s)

    def writer() -> None:
        for update in updates:
            while not readers_finished.is_set():
                with cursor_lock:
                    if cursor["reads_done"] >= update.after_reads:
                        break
                time.sleep(0.0005)
            t0 = time.perf_counter()
            report = server.apply_updates(
                update.deltas, category=update.category
            )
            applied.append((update, report, time.perf_counter() - t0))

    start = time.perf_counter()
    clients = [
        threading.Thread(target=client, name=f"load-client-{c}", daemon=True)
        for c in range(min(concurrency, max(1, len(items))))
    ]
    writer_thread = threading.Thread(target=writer, name="load-writer", daemon=True)
    for t in clients:
        t.start()
    writer_thread.start()
    for t in clients:
        t.join()
    readers_finished.set()
    writer_thread.join()
    duration = time.perf_counter() - start
    report = _report(
        "mixed-closed-loop", server, [p for p in done if p], duration,
        client_retries=retrier.total,
    )

    latencies_ms = [lat * 1e3 for _, _, lat in applied]
    kind_counts: Dict[str, int] = {}
    totals = {"objects_added": 0, "objects_removed": 0, "weights_changed": 0}
    for update, upd_report, _ in applied:
        kind_counts[update.kind] = kind_counts.get(update.kind, 0) + 1
        totals["objects_added"] += upd_report.objects_added
        totals["objects_removed"] += upd_report.objects_removed
        totals["weights_changed"] += upd_report.weights_changed
    update_stats = {
        "updates_applied": len(applied),
        "update_rate_per_s": (
            round(len(applied) / duration, 3) if duration > 0 else 0.0
        ),
        "kind_counts": kind_counts,
        "apply_latency_ms": {
            "p50": round(percentile(latencies_ms, 50), 4),
            "p95": round(percentile(latencies_ms, 95), 4),
            "mean": round(
                sum(latencies_ms) / len(latencies_ms), 4
            ) if latencies_ms else 0.0,
        },
        "totals": totals,
    }
    return report, update_stats


def sequential_baseline(
    engine: QueryEngine, items: Sequence[WorkItem]
) -> tuple:
    """Single-threaded ``engine.query`` over the workload.

    ``engine`` may also be a ``{category: QueryEngine}`` mapping for
    category-switching workloads.  Returns ``(qps, results)`` — the
    results double as the ground truth the server's responses are
    compared byte-for-byte against.
    """
    engines = engine if isinstance(engine, dict) else {None: engine}
    results: List[KNNResult] = []
    start = time.perf_counter()
    for item in items:
        one = engines[item.category if item.category in engines else None]
        results.append(one.query(item.vertex, item.k, method=item.method))
    duration = time.perf_counter() - start
    qps = len(items) / duration if duration > 0 else 0.0
    return qps, results
