"""LRU result cache for served kNN answers.

The paper's measurements make queries cheap but not free — hundreds of
microseconds to milliseconds each.  Real request streams are heavily
skewed (a few hot POIs and junctions absorb most traffic), so a serving
layer caches *answers*, keyed on everything that determines one:

    (graph fingerprint, object-set fingerprint, query vertex, k, method)

The graph fingerprint covers topology + weights + coordinates (see
:meth:`repro.graph.graph.Graph.fingerprint`), the object-set fingerprint
covers the POI ids, so an engine swap — a different network, travel-time
weights, a new POI category — can never serve a stale answer.  Swapping a
category *in place* (``KNNServer.with_objects``) additionally evicts every
entry recorded under the outgoing object fingerprint, keeping the cache
from carrying dead weight.

All operations are O(1) and thread-safe; hit/miss/eviction/invalidation
statistics are kept for the loadtest report.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.engine.query import KNNResult

#: Cache key layout: (graph_fp, objects_fp, vertex, k, method).
CacheKey = Tuple[str, str, int, int, str]


def objects_fingerprint(objects: Sequence[int]) -> str:
    """Content fingerprint of an object set (order-insensitive)."""
    payload = ",".join(str(int(o)) for o in sorted(int(o) for o in objects))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def result_key(
    graph_fp: str, objects_fp: str, vertex: int, k: int, method: str
) -> CacheKey:
    return (graph_fp, objects_fp, int(vertex), int(k), method)


class ResultCache:
    """Bounded thread-safe LRU mapping :data:`CacheKey` -> ``KNNResult``.

    ``capacity=0`` disables caching entirely (every ``get`` is a miss,
    ``put`` is a no-op) — the knob the loadtest uses to measure the
    uncached path.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: "OrderedDict[CacheKey, KNNResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: CacheKey) -> Optional[KNNResult]:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: CacheKey, value: KNNResult) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, objects_fp: Optional[str] = None) -> int:
        """Drop entries for one object fingerprint (or all of them).

        Returns the number of entries removed; each counts as one
        invalidation in the stats.
        """
        with self._lock:
            if objects_fp is None:
                removed = len(self._data)
                self._data.clear()
            else:
                stale = [k for k in self._data if k[1] == objects_fp]
                for k in stale:
                    del self._data[k]
                removed = len(stale)
            self.invalidations += removed
            return removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4),
            }
