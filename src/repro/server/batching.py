"""Micro-batching: coalesce and group in-flight requests.

A worker never serves requests one at a time.  It drains whatever is
waiting (up to ``max_batch``) and hands the batch to :func:`coalesce`:

* requests with the same ``(category, vertex, k, method)`` key collapse
  into one :class:`BatchGroup` — a single engine computation fans its
  result out to every waiter (flash crowds on one POI cost one query);
* groups are ordered so all groups of one category are adjacent — the
  per-object-set work (the category's engine, its object indexes, its
  cached algorithm instances) is touched once per batch per category
  rather than ping-ponging between object sets request by request.

Grouping is pure bookkeeping over the drained list; it holds no locks
and knows nothing about engines, so it is trivially unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.server.request import PendingRequest


@dataclass
class BatchGroup:
    """All pending requests in one batch answerable by one computation."""

    category: Optional[str]
    vertex: int
    k: int
    method: str
    waiters: List[PendingRequest] = field(default_factory=list)

    @property
    def coalesced(self) -> int:
        """How many requests ride along for free (beyond the first)."""
        return len(self.waiters) - 1


def coalesce(batch: List[PendingRequest]) -> List[BatchGroup]:
    """Group a drained batch into per-key :class:`BatchGroup` lists.

    Output order: categories in first-appearance order, and within a
    category, keys in first-appearance order — deterministic, and all
    same-object-set work adjacent.
    """
    by_key: Dict[Tuple, BatchGroup] = {}
    by_category: Dict[Optional[str], List[BatchGroup]] = {}
    for pending in batch:
        req = pending.request
        key = req.coalesce_key()
        group = by_key.get(key)
        if group is None:
            group = BatchGroup(
                category=req.category,
                vertex=int(req.vertex),
                k=int(req.k),
                method=req.method,
            )
            by_key[key] = group
            by_category.setdefault(req.category, []).append(group)
        group.waiters.append(pending)
    ordered: List[BatchGroup] = []
    for groups in by_category.values():
        ordered.extend(groups)
    return ordered
