"""Request/response primitives for the concurrent kNN server.

A client submits a :class:`ServerRequest` (a vertex, ``k``, a method
choice, an optional POI category and an optional deadline) and receives a
:class:`PendingRequest` — a small thread-safe future that resolves to a
:class:`ServerResponse` once a worker has answered, rejected or expired
the request.  The payload of a successful response is the engine's
ordinary :class:`~repro.engine.query.KNNResult`, so server answers are
byte-identical to direct ``QueryEngine.query`` calls on the same input.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.query import KNNResult

#: Response statuses.  Plain strings (not an Enum) so they serialise into
#: the loadtest JSON report without adapters.
OK = "ok"
REJECTED = "rejected"  # admission control: bounded queue was full
DEADLINE_EXCEEDED = "deadline_exceeded"  # expired while queued
ERROR = "error"  # the query raised (e.g. MethodUnavailable)

STATUSES = (OK, REJECTED, DEADLINE_EXCEEDED, ERROR)


@dataclass(frozen=True)
class ServerRequest:
    """One kNN request as the server sees it.

    ``category`` selects one of the server's named object sets (``None``
    is the default set); ``deadline_s`` is a relative time budget — a
    request still queued when it runs out is answered
    :data:`DEADLINE_EXCEEDED` instead of occupying a worker.
    """

    vertex: int
    k: int
    method: str = "auto"
    category: Optional[str] = None
    deadline_s: Optional[float] = None
    #: ``time.monotonic()`` at submission; set by the server.
    submitted_at: float = field(default=0.0, compare=False)

    def coalesce_key(self):
        """Requests sharing this key are answered by one computation."""
        return (self.category, int(self.vertex), int(self.k), self.method)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_s is None:
            return False
        now = time.monotonic() if now is None else now
        return now - self.submitted_at > self.deadline_s


@dataclass(frozen=True)
class ServerResponse:
    """The terminal state of one request."""

    request: ServerRequest
    status: str
    result: Optional[KNNResult] = None
    error: Optional[str] = None
    #: Submission-to-completion wall time (queueing + service).
    latency_s: float = 0.0
    #: True when the answer came from the result cache.
    cache_hit: bool = False
    #: True when this request was coalesced onto another's computation.
    coalesced: bool = False
    #: True when the engine answered via a fallback method (the planner's
    #: choice failed or was circuit-broken).  Mirrors
    #: ``result.degraded`` for callers that only look at the response.
    degraded: bool = False
    #: The method the answer degraded from (None when not degraded).
    fallback_from: Optional[str] = None
    #: Server-side retry attempts this request's group consumed beyond
    #: the first (0 on a clean first attempt).
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status == OK


class PendingRequest:
    """A thread-safe one-shot future for a submitted request.

    ``result(timeout)`` blocks until a worker (or admission control)
    completes the request and returns the :class:`ServerResponse`; it
    raises ``TimeoutError`` if the response does not arrive in time —
    the request itself is *not* cancelled.
    """

    __slots__ = ("request", "_event", "_response")

    def __init__(self, request: ServerRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Optional[ServerResponse] = None

    def done(self) -> bool:
        return self._event.is_set()

    def complete(self, response: ServerResponse) -> None:
        """Resolve the future (first completion wins; later ones are no-ops)."""
        if self._response is None:
            self._response = response
            self._event.set()

    def result(self, timeout: Optional[float] = None) -> ServerResponse:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.coalesce_key()} not completed "
                f"within {timeout}s"
            )
        assert self._response is not None
        return self._response
