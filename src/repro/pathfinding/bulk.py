"""Bulk shortest-path preprocessing helpers (scipy-backed).

Index construction for SILC, G-tree and ROAD needs many single-source
computations over the *original* graph.  The paper parallelises SILC's
all-pairs step with OpenMP; our equivalent lever is
``scipy.sparse.csgraph.dijkstra`` (C implementation).  These helpers are
used only at build time — query algorithms remain pure Python so their
behaviour stays observable and instrumentable.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.graph.graph import Graph


def bulk_sssp(
    graph: Graph, sources: Sequence[int], return_predecessors: bool = False
):
    """Distances (and optionally predecessors) from each of ``sources``.

    Returns ``dist`` of shape (len(sources), V), plus ``pred`` of the same
    shape when requested (scipy convention: -9999 for unreachable/self).
    """
    matrix = graph.to_csr_matrix()
    indices = np.asarray(sources, dtype=np.int64)
    if return_predecessors:
        dist, pred = _csgraph_dijkstra(
            matrix, directed=False, indices=indices, return_predecessors=True
        )
        return dist, pred
    return _csgraph_dijkstra(matrix, directed=False, indices=indices)


def bulk_distance_matrix(graph: Graph, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
    """Dense ``len(sources) x len(targets)`` network-distance matrix."""
    dist = bulk_sssp(graph, sources)
    return dist[:, np.asarray(targets, dtype=np.int64)]


def first_hops(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """First hop on a shortest path from ``source`` to every vertex.

    Returns ``(dist, hop)`` where ``hop[t]`` is the neighbor of ``source``
    that a shortest path to ``t`` leaves through (``hop[source] = source``;
    unreachable vertices get -1).  This is SILC's "colouring": every vertex
    is coloured by its first hop (Section 3.3).

    Implemented by propagating along the scipy predecessor tree in order of
    increasing distance — O(V log V) per source instead of a Python walk
    per target.
    """
    dist, pred = bulk_sssp(graph, [source], return_predecessors=True)
    dist = dist[0]
    pred = pred[0]
    n = graph.num_vertices
    hop = np.full(n, -1, dtype=np.int64)
    hop[source] = source
    order = np.argsort(dist)
    for t in order:
        t = int(t)
        if t == source or not np.isfinite(dist[t]):
            continue
        p = int(pred[t])
        if p == source:
            hop[t] = t
        elif p >= 0:
            hop[t] = hop[p]
    return dist, hop


def eccentric_vertex(graph: Graph, source: int) -> Tuple[int, float]:
    """The vertex with maximum network distance from ``source``.

    Used by the minimum-object-distance workload generator (Section 4.2)
    to find ``v_f`` and ``D_max``.
    """
    dist = bulk_sssp(graph, [source])[0]
    finite = np.where(np.isfinite(dist), dist, -1.0)
    far = int(np.argmax(finite))
    return far, float(finite[far])


def network_center(graph: Graph) -> int:
    """Vertex nearest the Euclidean centre of the network (Section 4.2)."""
    cx = float(np.mean(graph.x))
    cy = float(np.mean(graph.y))
    d2 = (graph.x - cx) ** 2 + (graph.y - cy) ** 2
    return int(np.argmin(d2))
