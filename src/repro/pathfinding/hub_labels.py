"""Pruned hub labelling — the library's PHL stand-in.

The paper's fastest IER oracle is Pruned Highway Labelling (Akiba et al.,
ALENEX 2014).  PHL is a path-based refinement of the same authors' pruned
labelling framework; we implement the general pruned (landmark) labelling:

* process vertices in a hub order (most-central first — we reuse the CH
  contraction order reversed, a standard high-quality hub order);
* from each hub run a *pruned* Dijkstra: a vertex u reached at distance d
  is labelled (hub, d) only if the current labels cannot already prove
  dist(hub, u) <= d; pruned vertices are not expanded;
* a query merges the two sorted label arrays and minimises over common
  hubs — O(|label|) with no graph traversal, microsecond-scale, which is
  the property the IER-PHL experiments exercise.

Like PHL, the index is large (the paper's Figure 8 point) — label sizes
are reported by :meth:`size_bytes` / :meth:`average_label_size`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS, Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


class HubLabels:
    """Exact 2-hop labelling built with pruned Dijkstra."""

    name = "hub_labels"

    def __init__(self, graph: Graph, order: Optional[Sequence[int]] = None) -> None:
        self.graph = graph
        BUILD_COUNTERS.add("build:hub_labels")
        start = time.perf_counter()
        if order is None:
            order = self._default_order()
        self._build(list(order))
        self._build_time = time.perf_counter() - start

    def _default_order(self) -> List[int]:
        """Degree-descending order with a coordinate-centrality tiebreak.

        A cheap stand-in for the CH order: central, high-degree vertices
        make good hubs on road networks.  Callers wanting smaller labels
        can pass ``np.argsort(-ch.rank)`` explicitly.
        """
        g = self.graph
        degree = np.diff(g.vertex_start)
        cx, cy = float(np.mean(g.x)), float(np.mean(g.y))
        centrality = -((g.x - cx) ** 2 + (g.y - cy) ** 2)
        keys = degree * 1e6 + (centrality - centrality.min()) / (
            np.ptp(centrality) + 1e-12
        )
        return list(np.argsort(-keys))

    def _build(self, order: List[int]) -> None:
        n = self.graph.num_vertices
        # Per-vertex labels: parallel (hub-rank, distance) lists kept
        # sorted by hub rank so queries are merge joins.
        label_hubs: List[List[int]] = [[] for _ in range(n)]
        label_dists: List[List[float]] = [[] for _ in range(n)]
        hub_rank = np.full(n, -1, dtype=np.int64)
        for r, v in enumerate(order):
            hub_rank[v] = r

        graph = self.graph
        # Flat-list CSR mirrors (satellite of the kernels work): the
        # pruned Dijkstras below touch every edge many times, and list
        # indexing beats both the generator protocol and numpy scalar
        # reads in CPython.  Push order is identical to the old
        # ``graph.neighbors`` loop, so the labels are byte-for-byte.
        vs_l = graph.vertex_start.tolist()
        et_l = graph.edge_target.tolist()
        ew_l = graph.edge_weight.tolist()
        for r, hub in enumerate(order):
            # Pruned Dijkstra from this hub.
            dist = {hub: 0.0}
            settled = set()
            heap = BinaryHeap()
            heap.push(0.0, hub)
            hub_labels_h = label_hubs[hub]
            hub_dists_h = label_dists[hub]
            while heap:
                d, u = heap.pop()
                if u in settled:
                    continue
                settled.add(u)
                # Prune: can existing labels already certify d(hub, u) <= d?
                if self._query_merge(
                    hub_labels_h, hub_dists_h, label_hubs[u], label_dists[u]
                ) <= d:
                    continue
                label_hubs[u].append(r)
                label_dists[u].append(d)
                for i in range(vs_l[u], vs_l[u + 1]):
                    v = et_l[i]
                    nd = d + ew_l[i]
                    if nd < dist.get(v, INF):
                        dist[v] = nd
                        heap.push(nd, v)

        # Freeze into numpy arrays (compact, mirrors PHL's array labels).
        self._hubs = [np.asarray(h, dtype=np.int32) for h in label_hubs]
        self._dists = [np.asarray(d, dtype=np.float64) for d in label_dists]

    @staticmethod
    def _query_merge(
        hubs_a: Sequence[int],
        dists_a: Sequence[float],
        hubs_b: Sequence[int],
        dists_b: Sequence[float],
    ) -> float:
        """Merge-join two labels sorted by hub rank."""
        i = j = 0
        best = INF
        na, nb = len(hubs_a), len(hubs_b)
        while i < na and j < nb:
            ha, hb = hubs_a[i], hubs_b[j]
            if ha == hb:
                total = dists_a[i] + dists_b[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif ha < hb:
                i += 1
            else:
                j += 1
        return best

    # ------------------------------------------------------------------
    # Oracle protocol
    # ------------------------------------------------------------------
    def distance(
        self, source: int, target: int, counters: Counters = NULL_COUNTERS
    ) -> float:
        if source == target:
            return 0.0
        counters.add("label_scans")
        return self._query_merge(
            self._hubs[source],
            self._dists[source],
            self._hubs[target],
            self._dists[target],
        )

    def label(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """The (hub ranks, distances) label of vertex v."""
        return self._hubs[v], self._dists[v]

    def average_label_size(self) -> float:
        return float(np.mean([len(h) for h in self._hubs]))

    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        return sum(h.nbytes + d.nbytes for h, d in zip(self._hubs, self._dists))

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Per-vertex labels flattened into hub/distance arrays + offsets."""
        hubs, off = concat_ragged(self._hubs, np.int32)
        dists, _ = concat_ragged(self._dists, np.float64)
        return {
            "hubs": hubs,
            "dists": dists,
            "label_off": off,
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(cls, graph: Graph, arrays: Dict[str, np.ndarray]) -> "HubLabels":
        """Rehydrate without re-running the pruned Dijkstras."""
        self = cls.__new__(cls)
        self.graph = graph
        self._build_time = float(arrays["build_time"])
        off = arrays["label_off"]
        self._hubs = [
            ragged_row(arrays["hubs"], off, v) for v in range(graph.num_vertices)
        ]
        self._dists = [
            ragged_row(arrays["dists"], off, v) for v in range(graph.num_vertices)
        ]
        return self
