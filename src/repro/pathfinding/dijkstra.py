"""Dijkstra's algorithm and its in-memory implementation variants.

Besides the production implementation (used as the "Dijk" IER oracle and
as ground truth in tests), this module carries the *ablation ladder* from
Figure 7 of the paper.  Each rung improves one implementation choice:

``first_cut``      decrease-key heap + hash-map distances + hash-set settled
``pqueue``         no-decrease-key heap (duplicates), rest as first cut
``settled``        + byte-array settled container
``graph``          + CSR adjacency arrays and array distances (production)

All four compute identical results; only constants differ — which is the
paper's point.

The production entry points additionally take a ``kernel`` knob one rung
above the ladder: ``"python"`` (default here; the reference per-edge loop,
now running over reusable :mod:`repro.kernels.scratch` buffers instead of
per-query ``np.full`` allocations) or ``"array"`` (whole-frontier C-level
expansion from :mod:`repro.kernels.sssp`).  Both kernels return identical
distances and record identical ``dijkstra_settled`` counters; the engine
defaults to ``array``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.kernels.scratch import borrow
from repro.kernels.sssp import (
    distances_to_targets as _k_targets,
)
from repro.kernels.sssp import (
    p2p_distance as _k_p2p,
)
from repro.kernels.sssp import (
    sssp_bounded as _k_sssp,
)
from repro.utils.bitset import BitArray
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap, DecreaseKeyHeap

INF = float("inf")


def dijkstra_distance(
    graph: Graph,
    source: int,
    target: int,
    counters: Counters = NULL_COUNTERS,
    kernel: str = "python",
) -> float:
    """Point-to-point network distance (production variant)."""
    if kernel == "array":
        return _k_p2p(graph, source, target, counters)
    if source == target:
        return 0.0
    with borrow(graph) as scratch:
        gen = scratch.begin()
        dist, stamp, settled = scratch.dist, scratch.stamp, scratch.settled
        heap = BinaryHeap()
        dist[source] = 0.0
        stamp[source] = gen
        heap.push(0.0, source)
        vertex_start = graph.vertex_start
        edge_target = graph.edge_target
        edge_weight = graph.edge_weight
        while heap:
            d, u = heap.pop()
            if settled[u] == gen:
                continue
            settled[u] = gen
            counters.add("sssp_settled")
            if u == target:
                return d
            for i in range(vertex_start[u], vertex_start[u + 1]):
                v = int(edge_target[i])
                nd = d + edge_weight[i]
                if stamp[v] != gen or nd < dist[v]:
                    dist[v] = nd
                    stamp[v] = gen
                    heap.push(nd, v)
    return INF


def dijkstra_path(
    graph: Graph, source: int, target: int
) -> Tuple[float, List[int]]:
    """Point-to-point distance and the vertex sequence of a shortest path."""
    if source == target:
        return 0.0, [source]
    n = graph.num_vertices
    dist = np.full(n, INF)
    parent = np.full(n, -1, dtype=np.int64)
    settled = BitArray(n)
    heap = BinaryHeap()
    dist[source] = 0.0
    heap.push(0.0, source)
    vertex_start = graph.vertex_start
    edge_target = graph.edge_target
    edge_weight = graph.edge_weight
    while heap:
        d, u = heap.pop()
        if settled.get(u):
            continue
        settled.set(u)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(int(parent[path[-1]]))
            path.reverse()
            return d, path
        for i in range(vertex_start[u], vertex_start[u + 1]):
            v = int(edge_target[i])
            nd = d + edge_weight[i]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heap.push(nd, v)
    return INF, []


def dijkstra_sssp(
    graph: Graph,
    source: int,
    cutoff: float = INF,
    counters: Counters = NULL_COUNTERS,
    kernel: str = "python",
) -> np.ndarray:
    """Single-source distances to every vertex (optionally cut off).

    Entries at distance <= ``cutoff`` are exact under both kernels.
    Beyond the cutoff the python kernel leaves whatever tentative values
    its frontier held while the array kernel reports ``inf`` — callers
    must only rely on the settled region.
    """
    if kernel == "array":
        return _k_sssp(graph, source, cutoff, counters)
    with borrow(graph) as scratch:
        gen = scratch.begin()
        dist, stamp, settled = scratch.dist, scratch.stamp, scratch.settled
        heap = BinaryHeap()
        dist[source] = 0.0
        stamp[source] = gen
        heap.push(0.0, source)
        vertex_start = graph.vertex_start
        edge_target = graph.edge_target
        edge_weight = graph.edge_weight
        while heap:
            d, u = heap.pop()
            if settled[u] == gen:
                continue
            if d > cutoff:
                break
            settled[u] = gen
            counters.add("sssp_settled")
            for i in range(vertex_start[u], vertex_start[u + 1]):
                v = int(edge_target[i])
                nd = d + edge_weight[i]
                if stamp[v] != gen or nd < dist[v]:
                    dist[v] = nd
                    stamp[v] = gen
                    heap.push(nd, v)
        return np.where(stamp == gen, dist, INF)


def dijkstra_to_targets(
    graph: Graph,
    source: int,
    targets: Iterable[int],
    counters: Counters = NULL_COUNTERS,
    kernel: str = "python",
) -> Dict[int, float]:
    """Distances from ``source`` to each of ``targets``; stops early."""
    if kernel == "array":
        return _k_targets(graph, source, targets, counters)
    remaining = set(int(t) for t in targets)
    out: Dict[int, float] = {}
    if source in remaining:
        out[source] = 0.0
        remaining.discard(source)
    if not remaining:
        return out
    with borrow(graph) as scratch:
        gen = scratch.begin()
        dist, stamp, settled = scratch.dist, scratch.stamp, scratch.settled
        heap = BinaryHeap()
        dist[source] = 0.0
        stamp[source] = gen
        heap.push(0.0, source)
        vertex_start = graph.vertex_start
        edge_target = graph.edge_target
        edge_weight = graph.edge_weight
        while heap and remaining:
            d, u = heap.pop()
            if settled[u] == gen:
                continue
            settled[u] = gen
            counters.add("sssp_settled")
            if u in remaining:
                out[u] = d
                remaining.discard(u)
                if not remaining:
                    break
            for i in range(vertex_start[u], vertex_start[u + 1]):
                v = int(edge_target[i])
                nd = d + edge_weight[i]
                if stamp[v] != gen or nd < dist[v]:
                    dist[v] = nd
                    stamp[v] = gen
                    heap.push(nd, v)
    for t in remaining:
        out[t] = INF
    return out


def dijkstra_restricted(
    graph: Graph,
    source: int,
    allowed: Sequence[int],
) -> Dict[int, float]:
    """SSSP restricted to the subgraph induced by ``allowed`` vertices.

    Used for within-leaf G-tree distances and within-Rnet ROAD shortcuts,
    where paths must not leave the region.
    """
    allowed_set = allowed if isinstance(allowed, (set, frozenset)) else set(
        int(v) for v in allowed
    )
    if source not in allowed_set:
        raise ValueError("source must be inside the allowed region")
    dist: Dict[int, float] = {source: 0.0}
    settled = set()
    heap = BinaryHeap()
    heap.push(0.0, source)
    vertex_start = graph.vertex_start
    edge_target = graph.edge_target
    edge_weight = graph.edge_weight
    while heap:
        d, u = heap.pop()
        if u in settled:
            continue
        settled.add(u)
        for i in range(vertex_start[u], vertex_start[u + 1]):
            v = int(edge_target[i])
            if v not in allowed_set:
                continue
            nd = d + edge_weight[i]
            if nd < dist.get(v, INF):
                dist[v] = nd
                heap.push(nd, v)
    return dist


class DijkstraOracle:
    """Distance-oracle facade over plain Dijkstra (the "Dijk" IER variant).

    Implements the shared oracle protocol: ``distance(s, t)`` plus optional
    source-side state reuse via ``start_source``/``distance_from_source``
    (Dijkstra has nothing to reuse; each query runs cold, which is exactly
    why IER-Dijk is slow in Figure 4).  ``kernel`` selects the p2p
    implementation (see :func:`dijkstra_distance`).
    """

    name = "dijkstra"

    def __init__(self, graph: Graph, kernel: Optional[str] = None) -> None:
        self.graph = graph
        self.kernel = kernel if kernel is not None else "python"

    def distance(self, source: int, target: int) -> float:
        return dijkstra_distance(
            self.graph, source, target, kernel=self.kernel
        )

    def build_time(self) -> float:
        return 0.0

    def size_bytes(self) -> int:
        return 0


# ----------------------------------------------------------------------
# Figure 7 ablation ladder
# ----------------------------------------------------------------------
def _neighbors_objectstyle(adjacency: List[List[Tuple[int, float]]], u: int):
    return adjacency[u]


def build_object_adjacency(graph: Graph) -> List[List[Tuple[int, float]]]:
    """Per-vertex adjacency-list objects (the pre-"Graph" representation)."""
    return [list(graph.neighbors(u)) for u in range(graph.num_vertices)]


def sssp_first_cut(
    graph: Graph,
    source: int,
    targets_remaining: Optional[set] = None,
    adjacency: Optional[List[List[Tuple[int, float]]]] = None,
) -> Dict[int, float]:
    """"1st Cut": decrease-key heap, dict distances, set settled, object adjacency."""
    if adjacency is None:
        adjacency = build_object_adjacency(graph)
    heap = DecreaseKeyHeap()
    heap.push(0.0, source)
    settled: set = set()
    found: Dict[int, float] = {}
    while heap:
        d, u = heap.pop()
        settled.add(u)
        if targets_remaining is not None:
            if u in targets_remaining:
                found[u] = d
                if len(found) == len(targets_remaining):
                    return found
        else:
            found[u] = d
        for v, w in adjacency[u]:
            if v not in settled:
                heap.push(d + w, v)
    return found


def sssp_pqueue(
    graph: Graph,
    source: int,
    targets_remaining: Optional[set] = None,
    adjacency: Optional[List[List[Tuple[int, float]]]] = None,
) -> Dict[int, float]:
    """"PQueue": no-decrease-key heap with duplicates; rest as first cut."""
    if adjacency is None:
        adjacency = build_object_adjacency(graph)
    heap = BinaryHeap()
    heap.push(0.0, source)
    dist: Dict[int, float] = {source: 0.0}
    settled: set = set()
    found: Dict[int, float] = {}
    while heap:
        d, u = heap.pop()
        if u in settled:
            continue
        settled.add(u)
        if targets_remaining is not None:
            if u in targets_remaining:
                found[u] = d
                if len(found) == len(targets_remaining):
                    return found
        else:
            found[u] = d
        for v, w in adjacency[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heap.push(nd, v)
    return found


def sssp_settled(
    graph: Graph,
    source: int,
    targets_remaining: Optional[set] = None,
    adjacency: Optional[List[List[Tuple[int, float]]]] = None,
) -> Dict[int, float]:
    """"Settled": + byte-array settled container."""
    if adjacency is None:
        adjacency = build_object_adjacency(graph)
    heap = BinaryHeap()
    heap.push(0.0, source)
    dist: Dict[int, float] = {source: 0.0}
    settled = BitArray(graph.num_vertices)
    found: Dict[int, float] = {}
    while heap:
        d, u = heap.pop()
        if settled.get(u):
            continue
        settled.set(u)
        if targets_remaining is not None:
            if u in targets_remaining:
                found[u] = d
                if len(found) == len(targets_remaining):
                    return found
        else:
            found[u] = d
        for v, w in adjacency[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heap.push(nd, v)
    return found


def sssp_graph(
    graph: Graph,
    source: int,
    targets_remaining: Optional[set] = None,
) -> Dict[int, float]:
    """"Graph": + CSR arrays and array distances (production layout)."""
    heap = BinaryHeap()
    heap.push(0.0, source)
    n = graph.num_vertices
    dist = np.full(n, INF)
    dist[source] = 0.0
    settled = BitArray(n)
    found: Dict[int, float] = {}
    vertex_start = graph.vertex_start
    edge_target = graph.edge_target
    edge_weight = graph.edge_weight
    while heap:
        d, u = heap.pop()
        if settled.get(u):
            continue
        settled.set(u)
        if targets_remaining is not None:
            if u in targets_remaining:
                found[u] = d
                if len(found) == len(targets_remaining):
                    return found
        else:
            found[u] = d
        for i in range(vertex_start[u], vertex_start[u + 1]):
            v = int(edge_target[i])
            nd = d + edge_weight[i]
            if nd < dist[v]:
                dist[v] = nd
                heap.push(nd, v)
    return found


#: Ordered ablation ladder used by the Figure 7 benchmark.
ABLATION_VARIANTS = (
    ("1st Cut", sssp_first_cut),
    ("PQueue", sssp_pqueue),
    ("Settled", sssp_settled),
    ("Graph", sssp_graph),
)
