"""Contraction Hierarchies (Geisberger et al., WEA 2008).

One of the fast oracles IER is combined with in Section 5 ("CH"), and the
local-query fallback inside Transit Node Routing.  Standard construction:

* node ordering by *edge difference* + *deleted neighbours*, maintained
  lazily (re-evaluate the top of the priority queue before contracting);
* *witness searches* (budgeted Dijkstra that ignores the contracted node)
  decide which shortcuts are necessary;
* queries run a bidirectional Dijkstra over the upward graph; the answer
  is the best meeting vertex.

The hierarchy also exposes :meth:`upward_search`, used by TNR to find
access nodes, and a search variant pruned at a vertex set (TNR's exact
locality fallback).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS, Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


class ContractionHierarchy:
    """CH index over a road network.

    Parameters
    ----------
    graph:
        The road network.
    witness_settle_limit:
        Budget (settled vertices) for each witness search; smaller budgets
        build faster but insert more (harmless) shortcuts.
    """

    name = "ch"

    def __init__(self, graph: Graph, witness_settle_limit: int = 40) -> None:
        self.graph = graph
        self.witness_settle_limit = witness_settle_limit
        BUILD_COUNTERS.add("build:ch")
        start = time.perf_counter()
        self._build()
        self._build_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        n = self.graph.num_vertices
        # Overlay adjacency, mutated during contraction.
        overlay: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u in range(n):
            targets, weights = self.graph.neighbor_slice(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                prev = overlay[u].get(v)
                if prev is None or w < prev:
                    overlay[u][v] = w

        self.rank = np.full(n, -1, dtype=np.int64)
        deleted_neighbors = np.zeros(n, dtype=np.int64)
        contracted = np.zeros(n, dtype=bool)
        shortcuts: List[Tuple[int, int, float]] = []

        def simulate(v: int) -> Tuple[int, List[Tuple[int, int, float]]]:
            """Shortcuts needed if v were contracted now, and their count."""
            neighbors = [(u, w) for u, w in overlay[v].items() if not contracted[u]]
            needed: List[Tuple[int, int, float]] = []
            for i in range(len(neighbors)):
                u, wu = neighbors[i]
                # Witness search from u avoiding v, bounded by the longest
                # candidate shortcut through v.
                limit = max(wu + wv for _, wv in neighbors[i + 1 :]) if i + 1 < len(neighbors) else 0.0
                witness = self._witness_distances(overlay, contracted, u, v, limit)
                for j in range(i + 1, len(neighbors)):
                    w2, wv = neighbors[j]
                    through = wu + wv
                    if witness.get(w2, INF) > through:
                        needed.append((u, w2, through))
            return len(needed) - len(neighbors), needed

        heap = BinaryHeap()
        for v in range(n):
            ed, _ = simulate(v)
            heap.push(float(ed), v)

        next_rank = 0
        while heap:
            _, v = heap.pop()
            if contracted[v]:
                continue
            # Lazy re-evaluation: if v's priority got stale, re-push.
            ed, needed = simulate(v)
            priority = float(ed + deleted_neighbors[v])
            if heap and priority > heap.peek_key():
                heap.push(priority, v)
                continue
            # Contract v.
            contracted[v] = True
            self.rank[v] = next_rank
            next_rank += 1
            for u, w2, through in needed:
                prev = overlay[u].get(w2)
                if prev is None or through < prev:
                    overlay[u][w2] = through
                    overlay[w2][u] = through
                    shortcuts.append((u, w2, through))
            for u in overlay[v]:
                if not contracted[u]:
                    deleted_neighbors[u] += 1

        # Upward graph: original edges + shortcuts towards higher rank.
        up: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        seen_edge: Dict[Tuple[int, int], float] = {}
        for u in range(n):
            targets, weights = self.graph.neighbor_slice(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                key = (u, v)
                prev = seen_edge.get(key)
                if prev is None or w < prev:
                    seen_edge[key] = w
        for u, v, w in shortcuts:
            for a, b in ((u, v), (v, u)):
                key = (a, b)
                prev = seen_edge.get(key)
                if prev is None or w < prev:
                    seen_edge[key] = w
        for (u, v), w in seen_edge.items():
            if self.rank[v] > self.rank[u]:
                up[u].append((v, w))
        self.up = up
        self.num_shortcuts = len(shortcuts)

    def _witness_distances(
        self,
        overlay: List[Dict[int, float]],
        contracted: np.ndarray,
        source: int,
        avoid: int,
        limit: float,
    ) -> Dict[int, float]:
        """Budgeted Dijkstra from ``source`` avoiding ``avoid``."""
        dist: Dict[int, float] = {source: 0.0}
        settled: Set[int] = set()
        heap = BinaryHeap()
        heap.push(0.0, source)
        budget = self.witness_settle_limit
        while heap and budget > 0:
            d, u = heap.pop()
            if u in settled:
                continue
            if d > limit:
                break
            settled.add(u)
            budget -= 1
            for v, w in overlay[u].items():
                if v == avoid or contracted[v]:
                    continue
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heap.push(nd, v)
        return dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(
        self, source: int, target: int, counters: Counters = NULL_COUNTERS
    ) -> float:
        """Exact network distance via bidirectional upward search."""
        if source == target:
            return 0.0
        fwd = self._upward_sssp(source, counters)
        bwd = self._upward_sssp(target, counters)
        best = INF
        small, large = (fwd, bwd) if len(fwd) <= len(bwd) else (bwd, fwd)
        for v, d1 in small.items():
            d2 = large.get(v)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def _upward_sssp(
        self,
        source: int,
        counters: Counters = NULL_COUNTERS,
        prune_at: Optional[Set[int]] = None,
        collect_pruned: Optional[Dict[int, float]] = None,
    ) -> Dict[int, float]:
        """Dijkstra over the upward graph.

        When ``prune_at`` is given, edges out of those vertices are not
        relaxed; settled pruned vertices are reported in
        ``collect_pruned`` (TNR access-node search).
        """
        dist: Dict[int, float] = {source: 0.0}
        settled: Set[int] = set()
        heap = BinaryHeap()
        heap.push(0.0, source)
        up = self.up
        while heap:
            d, u = heap.pop()
            if u in settled:
                continue
            settled.add(u)
            counters.add("ch_settled")
            if prune_at is not None and u in prune_at and u != source:
                if collect_pruned is not None:
                    collect_pruned[u] = d
                continue
            for v, w in up[u]:
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heap.push(nd, v)
        return {u: dist[u] for u in settled}

    def upward_search(
        self, source: int, prune_at: Set[int]
    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Upward search pruned at ``prune_at``.

        Returns ``(settled_distances, pruned_hits)`` where ``pruned_hits``
        maps each pruning vertex reached to its distance — TNR's access
        nodes and the basis of its exact locality fallback.
        """
        pruned: Dict[int, float] = {}
        settled = self._upward_sssp(source, prune_at=prune_at, collect_pruned=pruned)
        return settled, pruned

    def distance_pruned(self, source: int, target: int, prune_at: Set[int]) -> float:
        """Bidirectional upward distance where searches stop at ``prune_at``.

        Exactly the distance of the best s-t path whose CH up-down
        representation avoids relaxing beyond ``prune_at`` vertices; used
        by TNR as the local-path component.
        """
        if source == target:
            return 0.0
        fwd = self._upward_sssp(source, prune_at=prune_at)
        bwd = self._upward_sssp(target, prune_at=prune_at)
        best = INF
        small, large = (fwd, bwd) if len(fwd) <= len(bwd) else (bwd, fwd)
        for v, d1 in small.items():
            d2 = large.get(v)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    # ------------------------------------------------------------------
    # Oracle protocol / bookkeeping
    # ------------------------------------------------------------------
    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        """Approximate in-memory footprint (upward edges + ranks)."""
        edges = sum(len(lst) for lst in self.up)
        return edges * 12 + self.rank.nbytes

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Ranks plus the upward graph in CSR form."""
        targets, off = concat_ragged(
            [np.asarray([v for v, _ in lst], dtype=np.int64) for lst in self.up],
            np.int64,
        )
        weights, _ = concat_ragged(
            [np.asarray([w for _, w in lst], dtype=np.float64) for lst in self.up],
            np.float64,
        )
        return {
            "rank": self.rank,
            "up_target": targets,
            "up_weight": weights,
            "up_off": off,
            "num_shortcuts": np.asarray(self.num_shortcuts),
            "witness_settle_limit": np.asarray(self.witness_settle_limit),
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(
        cls, graph: Graph, arrays: Dict[str, np.ndarray]
    ) -> "ContractionHierarchy":
        """Rehydrate without re-running contraction."""
        self = cls.__new__(cls)
        self.graph = graph
        self.witness_settle_limit = int(arrays["witness_settle_limit"])
        self.num_shortcuts = int(arrays["num_shortcuts"])
        self._build_time = float(arrays["build_time"])
        self.rank = np.asarray(arrays["rank"], dtype=np.int64)
        off = arrays["up_off"]
        self.up = [
            [
                (int(v), float(w))
                for v, w in zip(
                    ragged_row(arrays["up_target"], off, u),
                    ragged_row(arrays["up_weight"], off, u),
                )
            ]
            for u in range(graph.num_vertices)
        ]
        return self
