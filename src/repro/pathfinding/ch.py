"""Contraction Hierarchies (Geisberger et al., WEA 2008).

One of the fast oracles IER is combined with in Section 5 ("CH"), and the
local-query fallback inside Transit Node Routing.  Standard construction:

* node ordering by *edge difference* + *deleted neighbours*, maintained
  lazily (re-evaluate the top of the priority queue before contracting);
* *witness searches* (budgeted Dijkstra that ignores the contracted node)
  decide which shortcuts are necessary;
* queries run a bidirectional Dijkstra over the upward graph; the answer
  is the best meeting vertex.

The hierarchy also exposes :meth:`upward_search`, used by TNR to find
access nodes, and a search variant pruned at a vertex set (TNR's exact
locality fallback).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.updates import RepairUnavailable
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS, Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


class ContractionHierarchy:
    """CH index over a road network.

    Parameters
    ----------
    graph:
        The road network.
    witness_settle_limit:
        Budget (settled vertices) for each witness search; smaller budgets
        build faster but insert more (harmless) shortcuts.
    """

    name = "ch"

    def __init__(self, graph: Graph, witness_settle_limit: int = 40) -> None:
        self.graph = graph
        self.witness_settle_limit = witness_settle_limit
        BUILD_COUNTERS.add("build:ch")
        start = time.perf_counter()
        self._build()
        self._build_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fresh_overlay(self) -> List[Dict[int, float]]:
        """Overlay adjacency from the graph's current weights."""
        n = self.graph.num_vertices
        overlay: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u in range(n):
            targets, weights = self.graph.neighbor_slice(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                prev = overlay[u].get(v)
                if prev is None or w < prev:
                    overlay[u][v] = w
        return overlay

    def _simulate(
        self,
        overlay: List[Dict[int, float]],
        contracted: np.ndarray,
        v: int,
    ) -> Tuple[int, List[Tuple[int, int, float]]]:
        """Shortcuts needed if v were contracted now, and the edge diff."""
        neighbors = [(u, w) for u, w in overlay[v].items() if not contracted[u]]
        needed: List[Tuple[int, int, float]] = []
        for i in range(len(neighbors)):
            u, wu = neighbors[i]
            # Witness search from u avoiding v, bounded by the longest
            # candidate shortcut through v.
            limit = max(wu + wv for _, wv in neighbors[i + 1 :]) if i + 1 < len(neighbors) else 0.0
            witness = self._witness_distances(overlay, contracted, u, v, limit)
            for j in range(i + 1, len(neighbors)):
                w2, wv = neighbors[j]
                through = wu + wv
                if witness.get(w2, INF) > through:
                    needed.append((u, w2, through))
        return len(needed) - len(neighbors), needed

    def _assemble_upward(
        self, shortcuts: List[Tuple[int, int, float]]
    ) -> None:
        """Upward graph: original edges + shortcuts towards higher rank."""
        n = self.graph.num_vertices
        up: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        seen_edge: Dict[Tuple[int, int], float] = {}
        for u in range(n):
            targets, weights = self.graph.neighbor_slice(u)
            for v, w in zip(targets.tolist(), weights.tolist()):
                key = (u, v)
                prev = seen_edge.get(key)
                if prev is None or w < prev:
                    seen_edge[key] = w
        for u, v, w in shortcuts:
            for a, b in ((u, v), (v, u)):
                key = (a, b)
                prev = seen_edge.get(key)
                if prev is None or w < prev:
                    seen_edge[key] = w
        for (u, v), w in seen_edge.items():
            if self.rank[v] > self.rank[u]:
                up[u].append((v, w))
        self.up = up
        self.num_shortcuts = len(shortcuts)

    def _build(self) -> None:
        n = self.graph.num_vertices
        # Overlay adjacency, mutated during contraction.
        overlay = self._fresh_overlay()

        self.rank = np.full(n, -1, dtype=np.int64)
        deleted_neighbors = np.zeros(n, dtype=np.int64)
        contracted = np.zeros(n, dtype=bool)
        # Shortcut provenance per contracted (middle) vertex, kept for
        # incremental weight-delta repair (replay, see
        # apply_weight_deltas).
        applied: List[List[Tuple[int, int, float]]] = [[] for _ in range(n)]

        heap = BinaryHeap()
        for v in range(n):
            ed, _ = self._simulate(overlay, contracted, v)
            heap.push(float(ed), v)

        next_rank = 0
        while heap:
            _, v = heap.pop()
            if contracted[v]:
                continue
            # Lazy re-evaluation: if v's priority got stale, re-push.
            ed, needed = self._simulate(overlay, contracted, v)
            priority = float(ed + deleted_neighbors[v])
            if heap and priority > heap.peek_key():
                heap.push(priority, v)
                continue
            # Contract v.
            contracted[v] = True
            self.rank[v] = next_rank
            next_rank += 1
            for u, w2, through in needed:
                prev = overlay[u].get(w2)
                if prev is None or through < prev:
                    overlay[u][w2] = through
                    overlay[w2][u] = through
                    applied[v].append((u, w2, through))
            for u in overlay[v]:
                if not contracted[u]:
                    deleted_neighbors[u] += 1

        self._applied = applied
        self._assemble_upward([s for lst in applied for s in lst])

    # ------------------------------------------------------------------
    # Incremental repair (live weight deltas)
    # ------------------------------------------------------------------
    def apply_weight_deltas(
        self, changed: List[Tuple[int, int, float, float]]
    ) -> Dict[str, int]:
        """Repair the hierarchy after in-place edge-weight changes.

        A fixed-rank-order replay: vertices are re-processed in their
        existing contraction order over a fresh overlay.  *Dirty*
        vertices (changed-edge endpoints plus a cascade: the endpoints
        of any shortcut whose recorded decision no longer matches) run
        full witness searches again; *clean* vertices replay their
        recorded shortcuts with weights re-derived from the current
        overlay.  For weight *increases* witness paths can lengthen in
        ways replay cannot bound, so every vertex is marked dirty — a
        full ordered re-contraction that still skips the build's
        priority-queue ordering phase.

        The repaired hierarchy answers exact distances (asserted against
        Dijkstra by the tests); the shortcut *set* may be a harmless
        superset of a from-scratch rebuild's, so CH-backed methods are
        excluded from the byte-identity harness.  Raises
        :class:`RepairUnavailable` when shortcut provenance is missing
        (hierarchies loaded from pre-provenance artifacts).
        """
        if getattr(self, "_applied", None) is None:
            raise RepairUnavailable(
                "contraction hierarchy has no shortcut provenance; rebuild"
            )
        counters = {
            "vertices_recontracted": 0,
            "shortcuts_replayed": 0,
            "full_recontraction": 0,
        }
        if not changed:
            return counters
        n = self.graph.num_vertices
        dirty = np.zeros(n, dtype=bool)
        if any(new > old for _u, _v, old, new in changed):
            dirty[:] = True
            counters["full_recontraction"] = 1
        else:
            for u, v, _old, _new in changed:
                dirty[u] = dirty[v] = True
        overlay = self._fresh_overlay()
        contracted = np.zeros(n, dtype=bool)
        old_applied = self._applied
        new_applied: List[List[Tuple[int, int, float]]] = [[] for _ in range(n)]
        for v in np.argsort(self.rank).tolist():
            if not dirty[v] and any(
                u not in overlay[v] or w2 not in overlay[v]
                for u, w2, _w in old_applied[v]
            ):
                # Defensive: a missing recorded neighbour means a replay
                # invariant broke upstream; recompute this vertex.
                dirty[v] = True
            if dirty[v]:
                _, needed = self._simulate(overlay, contracted, v)
                counters["vertices_recontracted"] += 1
            else:
                needed = [
                    (u, w2, overlay[v][u] + overlay[v][w2])
                    for u, w2, _w in old_applied[v]
                ]
                counters["shortcuts_replayed"] += len(needed)
            applied = new_applied[v]
            for u, w2, through in needed:
                prev = overlay[u].get(w2)
                if prev is None or through < prev:
                    overlay[u][w2] = through
                    overlay[w2][u] = through
                    applied.append((u, w2, through))
            if dirty[v]:
                # Cascade: shortcut decisions that changed invalidate the
                # recorded decisions of their (higher-rank) endpoints.
                old_map = {(a, b): w for a, b, w in old_applied[v]}
                new_map = {(a, b): w for a, b, w in applied}
                for a, b in set(old_map) | set(new_map):
                    if old_map.get((a, b)) != new_map.get((a, b)):
                        dirty[a] = dirty[b] = True
            contracted[v] = True
        self._applied = new_applied
        self._assemble_upward([s for lst in new_applied for s in lst])
        return counters

    def _witness_distances(
        self,
        overlay: List[Dict[int, float]],
        contracted: np.ndarray,
        source: int,
        avoid: int,
        limit: float,
    ) -> Dict[int, float]:
        """Budgeted Dijkstra from ``source`` avoiding ``avoid``."""
        dist: Dict[int, float] = {source: 0.0}
        settled: Set[int] = set()
        heap = BinaryHeap()
        heap.push(0.0, source)
        budget = self.witness_settle_limit
        while heap and budget > 0:
            d, u = heap.pop()
            if u in settled:
                continue
            if d > limit:
                break
            settled.add(u)
            budget -= 1
            for v, w in overlay[u].items():
                if v == avoid or contracted[v]:
                    continue
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heap.push(nd, v)
        return dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(
        self, source: int, target: int, counters: Counters = NULL_COUNTERS
    ) -> float:
        """Exact network distance via bidirectional upward search."""
        if source == target:
            return 0.0
        fwd = self._upward_sssp(source, counters)
        bwd = self._upward_sssp(target, counters)
        best = INF
        small, large = (fwd, bwd) if len(fwd) <= len(bwd) else (bwd, fwd)
        for v, d1 in small.items():
            d2 = large.get(v)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def _upward_sssp(
        self,
        source: int,
        counters: Counters = NULL_COUNTERS,
        prune_at: Optional[Set[int]] = None,
        collect_pruned: Optional[Dict[int, float]] = None,
    ) -> Dict[int, float]:
        """Dijkstra over the upward graph.

        When ``prune_at`` is given, edges out of those vertices are not
        relaxed; settled pruned vertices are reported in
        ``collect_pruned`` (TNR access-node search).
        """
        dist: Dict[int, float] = {source: 0.0}
        settled: Set[int] = set()
        heap = BinaryHeap()
        heap.push(0.0, source)
        up = self.up
        while heap:
            d, u = heap.pop()
            if u in settled:
                continue
            settled.add(u)
            counters.add("bidir_settled")
            if prune_at is not None and u in prune_at and u != source:
                if collect_pruned is not None:
                    collect_pruned[u] = d
                continue
            for v, w in up[u]:
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heap.push(nd, v)
        return {u: dist[u] for u in settled}

    def upward_search(
        self, source: int, prune_at: Set[int]
    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Upward search pruned at ``prune_at``.

        Returns ``(settled_distances, pruned_hits)`` where ``pruned_hits``
        maps each pruning vertex reached to its distance — TNR's access
        nodes and the basis of its exact locality fallback.
        """
        pruned: Dict[int, float] = {}
        settled = self._upward_sssp(source, prune_at=prune_at, collect_pruned=pruned)
        return settled, pruned

    def distance_pruned(self, source: int, target: int, prune_at: Set[int]) -> float:
        """Bidirectional upward distance where searches stop at ``prune_at``.

        Exactly the distance of the best s-t path whose CH up-down
        representation avoids relaxing beyond ``prune_at`` vertices; used
        by TNR as the local-path component.
        """
        if source == target:
            return 0.0
        fwd = self._upward_sssp(source, prune_at=prune_at)
        bwd = self._upward_sssp(target, prune_at=prune_at)
        best = INF
        small, large = (fwd, bwd) if len(fwd) <= len(bwd) else (bwd, fwd)
        for v, d1 in small.items():
            d2 = large.get(v)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    # ------------------------------------------------------------------
    # Oracle protocol / bookkeeping
    # ------------------------------------------------------------------
    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        """Approximate in-memory footprint (upward edges + ranks)."""
        edges = sum(len(lst) for lst in self.up)
        return edges * 12 + self.rank.nbytes

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Ranks plus the upward graph in CSR form."""
        targets, off = concat_ragged(
            [np.asarray([v for v, _ in lst], dtype=np.int64) for lst in self.up],
            np.int64,
        )
        weights, _ = concat_ragged(
            [np.asarray([w for _, w in lst], dtype=np.float64) for lst in self.up],
            np.float64,
        )
        arrays = {
            "rank": self.rank,
            "up_target": targets,
            "up_weight": weights,
            "up_off": off,
            "num_shortcuts": np.asarray(self.num_shortcuts),
            "witness_settle_limit": np.asarray(self.witness_settle_limit),
            "build_time": np.asarray(self._build_time),
        }
        # Shortcut provenance (per middle vertex) enables in-place
        # weight-delta repair after a reload.
        if getattr(self, "_applied", None) is not None:
            arrays["applied_u"], arrays["applied_off"] = concat_ragged(
                [
                    np.asarray([r[0] for r in lst], dtype=np.int64)
                    for lst in self._applied
                ],
                np.int64,
            )
            arrays["applied_v"], _ = concat_ragged(
                [
                    np.asarray([r[1] for r in lst], dtype=np.int64)
                    for lst in self._applied
                ],
                np.int64,
            )
            arrays["applied_w"], _ = concat_ragged(
                [
                    np.asarray([r[2] for r in lst], dtype=np.float64)
                    for lst in self._applied
                ],
                np.float64,
            )
        return arrays

    @classmethod
    def from_arrays(
        cls, graph: Graph, arrays: Dict[str, np.ndarray]
    ) -> "ContractionHierarchy":
        """Rehydrate without re-running contraction."""
        self = cls.__new__(cls)
        self.graph = graph
        self.witness_settle_limit = int(arrays["witness_settle_limit"])
        self.num_shortcuts = int(arrays["num_shortcuts"])
        self._build_time = float(arrays["build_time"])
        self.rank = np.asarray(arrays["rank"], dtype=np.int64)
        off = arrays["up_off"]
        self.up = [
            [
                (int(v), float(w))
                for v, w in zip(
                    ragged_row(arrays["up_target"], off, u),
                    ragged_row(arrays["up_weight"], off, u),
                )
            ]
            for u in range(graph.num_vertices)
        ]
        if "applied_off" in arrays:
            aoff = arrays["applied_off"]
            self._applied = [
                [
                    (int(a), int(b), float(w))
                    for a, b, w in zip(
                        ragged_row(arrays["applied_u"], aoff, v),
                        ragged_row(arrays["applied_v"], aoff, v),
                        ragged_row(arrays["applied_w"], aoff, v),
                    )
                ]
                for v in range(graph.num_vertices)
            ]
        else:
            # Pre-provenance artifact: queries work, in-place repair
            # does not (apply_weight_deltas raises RepairUnavailable).
            self._applied = None
        return self
