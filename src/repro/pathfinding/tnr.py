"""Transit Node Routing over Contraction Hierarchies.

The paper combines IER with TNR (Bast et al., WEA 2007) using a grid of
size 128; TNR answers long-range queries from a small all-pairs *distance
table* between transit nodes, falling back to CH for local queries — which
is why Figure 4 shows TNR and CH coincide at high densities.

This implementation follows the CH-based TNR construction:

* transit nodes = the ``num_transit`` highest-ranked CH vertices;
* per-vertex *access nodes*: transit nodes reached by an upward CH search
  pruned at transit nodes, dominated entries removed via the table;
* table: CH distances between all transit-node pairs;
* query: minimum over access-node pairs through the table, combined with a
  transit-pruned bidirectional CH search that exactly covers paths
  avoiding all transit nodes.  The combination is exact for every query.

A uniform grid provides the paper's *locality filter*: far-apart cells
skip the pruned local search, matching TNR's long-range fast path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.kernels.config import resolve_kernel
from repro.pathfinding.bulk import bulk_sssp
from repro.pathfinding.ch import ContractionHierarchy
from repro.utils.arrays import concat_ragged, ragged_row
from repro.utils.counters import BUILD_COUNTERS, Counters, NULL_COUNTERS

INF = float("inf")


class TransitNodeRouting:
    """TNR index layered on a :class:`ContractionHierarchy`.

    ``kernel="array"`` (resolved default) fills the all-pairs transit
    table with one multi-source :func:`bulk_sssp` sweep instead of the
    ``t^2 / 2`` individual CH queries the ``"python"`` reference build
    runs — same exact distances, an order of magnitude less build time.
    """

    name = "tnr"

    def __init__(
        self,
        graph: Graph,
        ch: Optional[ContractionHierarchy] = None,
        num_transit: Optional[int] = None,
        grid_size: int = 32,
        locality_cells: int = 4,
        kernel: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.kernel = resolve_kernel(kernel)
        BUILD_COUNTERS.add("build:tnr")
        start = time.perf_counter()
        self.ch = ch if ch is not None else ContractionHierarchy(graph)
        if num_transit is None:
            num_transit = max(8, min(256, graph.num_vertices // 64))
        num_transit = min(num_transit, graph.num_vertices)
        self.grid_size = grid_size
        self.locality_cells = locality_cells
        self._build(num_transit)
        self._build_time = time.perf_counter() - start

    def _build(self, num_transit: int) -> None:
        graph, ch = self.graph, self.ch
        n = graph.num_vertices
        order = np.argsort(-ch.rank)
        self.transit_nodes = [int(v) for v in order[:num_transit]]
        self.transit_set: Set[int] = set(self.transit_nodes)
        transit_index = {v: i for i, v in enumerate(self.transit_nodes)}

        # All-pairs transit table: one bulk multi-source sweep (array
        # kernel) or pairwise CH queries (reference).  Identical values —
        # both are exact global distances.
        t = len(self.transit_nodes)
        if self.kernel == "array":
            tn = np.asarray(self.transit_nodes, dtype=np.int64)
            table = bulk_sssp(graph, tn)[:, tn] if t else np.zeros((0, 0))
            np.fill_diagonal(table, 0.0)
        else:
            table = np.zeros((t, t))
            for i in range(t):
                for j in range(i + 1, t):
                    d = ch.distance(self.transit_nodes[i], self.transit_nodes[j])
                    table[i, j] = table[j, i] = d
        self.table = table

        # Access nodes per vertex (transit-pruned upward search, dominated
        # entries removed).  The array kernel expresses the pruning as a
        # graph transform — a transit node's *outgoing* upward edges are
        # deleted, which is exactly "settle but do not expand" — and then
        # runs every per-vertex search as one batched C Dijkstra sweep.
        if self.kernel == "array":
            self.access = self._access_nodes_bulk(transit_index)
        else:
            self.access = []
            for v in range(n):
                if v in self.transit_set:
                    self.access.append([(transit_index[v], 0.0)])
                    continue
                _, pruned = ch.upward_search(v, self.transit_set)
                entries = [(transit_index[a], d) for a, d in pruned.items()]
                self.access.append(self._prune_dominated(entries))

        # Locality grid.
        self._gx0, self._gy0 = float(graph.x.min()), float(graph.y.min())
        spanx = float(graph.x.max()) - self._gx0 or 1.0
        spany = float(graph.y.max()) - self._gy0 or 1.0
        self._cell_w = spanx / self.grid_size
        self._cell_h = spany / self.grid_size
        self.cell_x = np.minimum(
            ((graph.x - self._gx0) / self._cell_w).astype(np.int64),
            self.grid_size - 1,
        )
        self.cell_y = np.minimum(
            ((graph.y - self._gy0) / self._cell_h).astype(np.int64),
            self.grid_size - 1,
        )

    def _access_nodes_bulk(
        self, transit_index: Dict[int, int]
    ) -> List[List[Tuple[int, float]]]:
        """All per-vertex access nodes from batched sweeps (array kernel).

        Identical distances to the python kernel's per-vertex pruned
        upward searches: reachability in the upward graph with transit
        out-edges removed *is* the pruned search's explored cone.
        """
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

        n = self.graph.num_vertices
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for u, lst in enumerate(self.ch.up):
            if u in self.transit_set:
                continue
            for v, w in lst:
                rows.append(u)
                cols.append(v)
                data.append(w)
        pruned_up = csr_matrix(
            (np.asarray(data), (np.asarray(rows), np.asarray(cols))),
            shape=(n, n),
        )
        tn = np.asarray(self.transit_nodes, dtype=np.int64)
        access: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        sources = np.asarray(
            [v for v in range(n) if v not in self.transit_set], dtype=np.int64
        )
        # scipy returns a dense (batch, n) float64 block per sweep; cap
        # it at ~64 MB so large graphs don't trade the python kernel's
        # O(n) memory for a multi-gigabyte allocation.
        batch = max(1, min(1024, 8_000_000 // max(n, 1)))
        for lo in range(0, len(sources), batch):
            seg = sources[lo : lo + batch]
            dist = _csgraph_dijkstra(pruned_up, directed=True, indices=seg)
            td = dist[:, tn]
            hr, hc = np.nonzero(np.isfinite(td))
            vals = td[hr, hc]
            row_starts = np.searchsorted(hr, np.arange(len(seg)))
            row_ends = np.searchsorted(hr, np.arange(len(seg)) + 1)
            for r, v in enumerate(seg.tolist()):
                a, b = int(row_starts[r]), int(row_ends[r])
                if b - a <= 1:
                    access[v] = [
                        (int(hc[i]), float(vals[i])) for i in range(a, b)
                    ]
                else:
                    access[v] = self._prune_dominated_bulk(
                        hc[a:b], vals[a:b]
                    )
        for v in self.transit_nodes:
            access[v] = [(transit_index[v], 0.0)]
        return access

    def _prune_dominated_bulk(
        self, aidx: np.ndarray, da: np.ndarray
    ) -> List[Tuple[int, float]]:
        """Vectorised :meth:`_prune_dominated` over parallel arrays."""
        m = len(aidx)
        through = da[:, None] + self.table[np.ix_(aidx, aidx)]
        dominates = through < da[None, :]
        order = np.arange(m)
        dominates |= (through == da[None, :]) & (
            order[:, None] < order[None, :]
        )
        np.fill_diagonal(dominates, False)
        keep = ~dominates.any(axis=0)
        return [
            (int(a), float(d)) for a, d in zip(aidx[keep], da[keep])
        ]

    def _prune_dominated(
        self, entries: List[Tuple[int, float]]
    ) -> List[Tuple[int, float]]:
        """Drop access node a when another a' proves d(v,a') + T[a',a] <= d(v,a)."""
        kept: List[Tuple[int, float]] = []
        for i, (a, da) in enumerate(entries):
            dominated = False
            for j, (b, db) in enumerate(entries):
                if i == j:
                    continue
                if db + self.table[b, a] < da or (
                    db + self.table[b, a] == da and j < i
                ):
                    dominated = True
                    break
            if not dominated:
                kept.append((a, da))
        return kept

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_local(self, source: int, target: int) -> bool:
        """Grid locality filter: nearby cells must use the local search."""
        dx = abs(int(self.cell_x[source]) - int(self.cell_x[target]))
        dy = abs(int(self.cell_y[source]) - int(self.cell_y[target]))
        return max(dx, dy) <= self.locality_cells

    def table_distance(self, source: int, target: int) -> float:
        """Distance through the best access-node pair (paths via transit)."""
        best = INF
        table = self.table
        for a, da in self.access[source]:
            row = table[a]
            for b, db in self.access[target]:
                total = da + row[b] + db
                if total < best:
                    best = total
        return best

    def distance(
        self, source: int, target: int, counters: Counters = NULL_COUNTERS
    ) -> float:
        """Exact network distance.

        The table covers every path through a transit node; the
        transit-pruned bidirectional CH search covers every path avoiding
        them.  The pruned search stays small because upward CH searches
        die quickly once they hit the (high-rank) transit nodes, so
        long-range queries are still dominated by the table scan — the
        behaviour Figure 4 shows.  Real TNR guarantees by construction
        that non-local shortest paths cross a transit node and can skip
        the local search via the grid filter; with rank-selected transit
        nodes that guarantee does not hold, so we always run the (cheap)
        pruned search instead of trading exactness for the filter.
        """
        if source == target:
            return 0.0
        best = self.table_distance(source, target)
        counters.add("table_lookups")
        if self.is_local(source, target):
            counters.add("local_searches")
        local = self.ch.distance_pruned(source, target, self.transit_set)
        if local < best:
            best = local
        return best

    # ------------------------------------------------------------------
    # Oracle protocol
    # ------------------------------------------------------------------
    def build_time(self) -> float:
        return self._build_time

    def size_bytes(self) -> int:
        access_entries = sum(len(a) for a in self.access)
        return int(self.table.nbytes) + access_entries * 12 + self.ch.size_bytes()

    def average_access_nodes(self) -> float:
        return float(np.mean([len(a) for a in self.access]))

    # ------------------------------------------------------------------
    # Serialization (persistent index store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Transit table, access nodes and locality grid as flat arrays.

        The underlying CH is *not* embedded — it is its own store
        artifact; ``from_arrays`` receives it as a dependency.
        """
        acc_nodes, off = concat_ragged(
            [np.asarray([a for a, _ in lst], dtype=np.int64) for lst in self.access],
            np.int64,
        )
        acc_dists, _ = concat_ragged(
            [np.asarray([d for _, d in lst], dtype=np.float64) for lst in self.access],
            np.float64,
        )
        return {
            "transit_nodes": np.asarray(self.transit_nodes, dtype=np.int64),
            "kernel": np.asarray(self.kernel),
            "table": self.table,
            "access_node": acc_nodes,
            "access_dist": acc_dists,
            "access_off": off,
            "cell_x": self.cell_x,
            "cell_y": self.cell_y,
            "grid_size": np.asarray(self.grid_size),
            "locality_cells": np.asarray(self.locality_cells),
            "grid_origin": np.asarray([self._gx0, self._gy0]),
            "cell_span": np.asarray([self._cell_w, self._cell_h]),
            "build_time": np.asarray(self._build_time),
        }

    @classmethod
    def from_arrays(
        cls,
        graph: Graph,
        arrays: Dict[str, np.ndarray],
        ch: ContractionHierarchy,
    ) -> "TransitNodeRouting":
        """Rehydrate over an existing (built or loaded) CH."""
        self = cls.__new__(cls)
        self.graph = graph
        self.ch = ch
        kernel = arrays.get("kernel")
        self.kernel = (
            resolve_kernel(str(kernel)) if kernel is not None
            else resolve_kernel(None)
        )
        self.grid_size = int(arrays["grid_size"])
        self.locality_cells = int(arrays["locality_cells"])
        self._build_time = float(arrays["build_time"])
        self.transit_nodes = [int(v) for v in arrays["transit_nodes"]]
        self.transit_set = set(self.transit_nodes)
        self.table = np.asarray(arrays["table"], dtype=np.float64)
        off = arrays["access_off"]
        self.access = [
            [
                (int(a), float(d))
                for a, d in zip(
                    ragged_row(arrays["access_node"], off, v),
                    ragged_row(arrays["access_dist"], off, v),
                )
            ]
            for v in range(graph.num_vertices)
        ]
        self._gx0, self._gy0 = (float(v) for v in arrays["grid_origin"])
        self._cell_w, self._cell_h = (float(v) for v in arrays["cell_span"])
        self.cell_x = np.asarray(arrays["cell_x"], dtype=np.int64)
        self.cell_y = np.asarray(arrays["cell_y"], dtype=np.int64)
        return self
