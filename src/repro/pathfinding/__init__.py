"""Shortest-path substrates.

Everything IER can be combined with (Section 5): plain Dijkstra, A*,
Contraction Hierarchies, pruned hub labelling (the PHL stand-in), Transit
Node Routing, plus scipy-backed bulk routines used only at index
construction time.
"""

from repro.pathfinding.dijkstra import (
    DijkstraOracle,
    dijkstra_distance,
    dijkstra_path,
    dijkstra_sssp,
    dijkstra_to_targets,
)
from repro.pathfinding.astar import astar_distance, AStarOracle
from repro.pathfinding.bulk import bulk_sssp, bulk_distance_matrix, first_hops
from repro.pathfinding.ch import ContractionHierarchy
from repro.pathfinding.hub_labels import HubLabels
from repro.pathfinding.tnr import TransitNodeRouting

__all__ = [
    "DijkstraOracle",
    "dijkstra_distance",
    "dijkstra_path",
    "dijkstra_sssp",
    "dijkstra_to_targets",
    "astar_distance",
    "AStarOracle",
    "bulk_sssp",
    "bulk_distance_matrix",
    "first_hops",
    "ContractionHierarchy",
    "HubLabels",
    "TransitNodeRouting",
]
