"""A* search with the Euclidean lower bound.

Not one of the paper's headline oracles, but a natural baseline between
Dijkstra and the preprocessing-based techniques; included because the
library is meant to be reusable and A* shares the Euclidean-lower-bound
machinery (``Graph.euclidean_lower_bound``) that IER relies on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.bitset import BitArray
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


def astar_distance(
    graph: Graph, source: int, target: int, counters: Counters = NULL_COUNTERS
) -> float:
    """Point-to-point network distance using A* with the Euclidean bound.

    Uses ``euclidean / max_speed`` as the heuristic so it stays admissible
    on travel-time graphs as well (paper Section 7.5).
    """
    if source == target:
        return 0.0
    speed = graph.max_speed()
    tx, ty = graph.x[target], graph.y[target]
    n = graph.num_vertices
    g = np.full(n, INF)
    settled = BitArray(n)
    heap = BinaryHeap()
    g[source] = 0.0
    heap.push(graph.euclidean_to_point(source, tx, ty) / speed, source)
    vertex_start = graph.vertex_start
    edge_target = graph.edge_target
    edge_weight = graph.edge_weight
    while heap:
        _, u = heap.pop()
        if settled.get(u):
            continue
        settled.set(u)
        counters.add("sssp_settled")
        if u == target:
            return float(g[u])
        du = g[u]
        for i in range(vertex_start[u], vertex_start[u + 1]):
            v = int(edge_target[i])
            nd = du + edge_weight[i]
            if nd < g[v]:
                g[v] = nd
                h = graph.euclidean_to_point(v, tx, ty) / speed
                heap.push(nd + h, v)
    return INF


class AStarOracle:
    """Distance-oracle facade over A* (drop-in alternative to Dijkstra)."""

    name = "astar"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def distance(self, source: int, target: int) -> float:
        return astar_distance(self.graph, source, target)

    def build_time(self) -> float:
        return 0.0

    def size_bytes(self) -> int:
        return 0
