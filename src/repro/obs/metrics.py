"""Lock-cheap metrics registry: counters, gauges and latency histograms.

The engine, server, store and update paths all produce measurements —
per-query wall times, settled-vertex counts, cache outcomes, index build
times — but before this module each spoke its own dialect (``KNNResult.
counters`` dicts, ``KNNServer.stats()``, ``BUILD_COUNTERS``).  The
registry gives them one substrate:

* **Counter** — monotone event count (``knn_queries_total``).
* **Gauge** — point-in-time value (``server_queue_depth``).
* **Histogram** — fixed-bucket latency distribution from which p50 /
  p95 / p99 / max are derivable *without storing samples*: observations
  land in log-spaced buckets, quantiles interpolate inside the bucket
  that crosses the target rank, and the exact max/min are tracked on
  the side.

Every metric family supports per-label children (``method="ine"``,
``kind="gtree"``, ``outcome="hit"``), created on first use.  The
registry snapshots to plain dicts (JSON-ready), diffs two snapshots into
a windowed view (``delta``), resets, and renders the Prometheus text
exposition format — all zero-dependency.

Cost model: hot loops never touch the registry.  They keep recording
into the per-query :class:`~repro.utils.counters.Counters` bag exactly
as before, and the engine flushes that bag into labeled registry
counters *once per query* — a handful of dict lookups and lock-guarded
adds, benchmarked under the ≤3% hot-path budget by
``benchmarks/bench_obs.py``.  Setting :attr:`MetricsRegistry.enabled`
to ``False`` skips even that (the kill switch the benchmark's baseline
uses).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): log-spaced from 10us to 10s,
#: dense in the sub-millisecond range the paper's queries live in.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for small cardinalities (batch sizes, repair counts).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(items: LabelItems) -> str:
    return ",".join(f"{k}={v}" for k, v in items)


class Counter:
    """Monotone event counter (one labeled child of a family)."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value; ``set`` replaces, ``inc``/``dec`` adjust."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self.set(0.0)

    def snapshot(self) -> float:
        return self._value


def quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    maximum: float,
    minimum: float,
) -> float:
    """Derive the ``q``-quantile from fixed-bucket counts.

    Walks the cumulative counts to the bucket that crosses rank
    ``q * total`` and interpolates linearly inside it, clamping the
    bucket edges to the exactly tracked ``minimum``/``maximum`` so tiny
    sample counts do not report a bucket boundary no sample ever hit.
    The overflow bucket (beyond the last bound) reports ``maximum``.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cum = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        prev_cum = cum
        cum += c
        if cum >= target:
            if i >= len(bounds):  # overflow bucket
                return maximum
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            lo = max(lo, minimum)
            hi = min(hi, maximum)
            if hi <= lo:
                return hi
            frac = (target - prev_cum) / c
            return lo + frac * (hi - lo)
    return maximum


class Histogram:
    """Fixed-bucket distribution; quantiles derivable without samples."""

    kind = "histogram"
    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count", "_max", "_min")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + overflow bucket
        self._sum = 0.0
        self._count = 0
        self._max = -math.inf
        self._min = math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value
            if value < self._min:
                self._min = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        with self._lock:
            return quantile_from_buckets(
                self.bounds, self._counts, q, self.max, self.min
            )

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._max = -math.inf
            self._min = math.inf

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total, s = self._count, self._sum
            mx = self._max if total else 0.0
            mn = self._min if total else 0.0
        return {
            "count": total,
            "sum": s,
            "mean": (s / total) if total else 0.0,
            "min": mn,
            "max": mx,
            "p50": quantile_from_buckets(self.bounds, counts, 0.50, mx, mn),
            "p95": quantile_from_buckets(self.bounds, counts, 0.95, mx, mn),
            "p99": quantile_from_buckets(self.bounds, counts, 0.99, mx, mn),
            "buckets": counts,
            "bounds": list(self.bounds),
        }


class _Family:
    """One named metric family holding its labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children", "_lock")

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: Dict[LabelItems, object] = {}
        self._lock = threading.Lock()

    def child(self, items: LabelItems):
        metric = self.children.get(items)
        if metric is None:
            with self._lock:
                metric = self.children.get(items)
                if metric is None:
                    if self.kind == "counter":
                        metric = Counter()
                    elif self.kind == "gauge":
                        metric = Gauge()
                    else:
                        metric = Histogram(self.buckets or LATENCY_BUCKETS_S)
                    self.children[items] = metric
        return metric


class MetricsRegistry:
    """Named metric families with labeled children.

    ``enabled`` is the process-wide kill switch callers check before
    flushing into the registry; the registry itself never silently
    drops writes, so direct ``counter(...).inc()`` always lands.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Sequence[float]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = _Family(name, kind, help, buckets)
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._family(name, "counter", help).child(_label_items(labels))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._family(name, "gauge", help).child(_label_items(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        return self._family(name, "histogram", help, buckets).child(
            _label_items(labels)
        )

    def families(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # ------------------------------------------------------------------
    # Snapshot / delta / reset
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain (JSON-ready) dicts, keyed name -> series."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            series = {
                _label_str(items): metric.snapshot()
                for items, metric in sorted(family.children.items())
            }
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def delta(self, prev: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, object]]:
        """Current snapshot minus ``prev`` (a prior :meth:`snapshot`).

        Counters subtract; histogram bucket counts/sums subtract and the
        windowed quantiles are re-derived from the diffed buckets (the
        window's max/min are unknowable without samples, so the current
        extrema bound the interpolation).  Gauges keep current values.
        """
        current = self.snapshot()
        out: Dict[str, Dict[str, object]] = {}
        for name, fam in current.items():
            prev_series = prev.get(name, {}).get("series", {})
            series: Dict[str, object] = {}
            for label, snap in fam["series"].items():
                before = prev_series.get(label)
                if fam["kind"] == "counter":
                    series[label] = snap - (before or 0.0)
                elif fam["kind"] == "gauge":
                    series[label] = snap
                else:
                    series[label] = _diff_histogram(snap, before)
            out[name] = {"kind": fam["kind"], "help": fam["help"],
                         "series": series}
        return out

    def reset(self) -> None:
        """Zero every metric (families and children survive)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for metric in list(family.children.values()):
                metric.reset()

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            name = prefix + family.name
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for items, metric in sorted(family.children.items()):
                if family.kind == "histogram":
                    lines.extend(_prom_histogram(name, items, metric))
                else:
                    lines.append(
                        f"{name}{_prom_labels(items)} "
                        f"{_prom_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n"


def _diff_histogram(snap: Dict[str, object], before: Optional[Dict[str, object]]):
    if before is None:
        return dict(snap)
    bounds = snap["bounds"]
    counts = [a - b for a, b in zip(snap["buckets"], before["buckets"])]
    count = snap["count"] - before["count"]
    s = snap["sum"] - before["sum"]
    mx, mn = snap["max"], snap["min"]
    return {
        "count": count,
        "sum": s,
        "mean": (s / count) if count else 0.0,
        "min": mn,
        "max": mx,
        "p50": quantile_from_buckets(bounds, counts, 0.50, mx, mn),
        "p95": quantile_from_buckets(bounds, counts, 0.95, mx, mn),
        "p99": quantile_from_buckets(bounds, counts, 0.99, mx, mn),
        "buckets": counts,
        "bounds": list(bounds),
    }


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(items: LabelItems, extra: str = "") -> str:
    parts = [f'{k}="{_prom_escape(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _prom_histogram(name: str, items: LabelItems, metric: Histogram) -> List[str]:
    lines: List[str] = []
    counts = metric.bucket_counts()
    cum = 0
    for bound, c in zip(metric.bounds, counts):
        cum += c
        le_label = 'le="' + _prom_value(bound) + '"'
        lines.append(f"{name}_bucket{_prom_labels(items, le_label)} {cum}")
    cum += counts[-1]
    inf_label = 'le="+Inf"'
    lines.append(f"{name}_bucket{_prom_labels(items, inf_label)} {cum}")
    lines.append(f"{name}_sum{_prom_labels(items)} {_prom_value(metric.sum)}")
    lines.append(f"{name}_count{_prom_labels(items)} {metric.count}")
    return lines


#: Process-wide default registry; the engine, server and store flush
#: into it, and ``repro profile`` / the server's ``metrics`` command
#: read it back out.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
