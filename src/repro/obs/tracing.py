"""Structured tracing: span trees, a trace ring buffer, a slow-query log.

A *span* is one timed region of work with a name, attributes and child
spans.  Instrumented layers wrap their phases in ``with span("plan"):``
blocks; nesting follows the call stack (thread-local), so one served
query produces a tree like::

    query                         1.81ms  vertex=42 k=5
      plan                        0.02ms
      ensure                      0.01ms
      knn                         1.63ms  method=ine expand_settled=57
      paths                       0.12ms

Tracing is **off by default** — the hot-path budget in
``benchmarks/bench_obs.py`` is measured with tracing disabled — and a
disabled :func:`span` returns a shared no-op object, so dormant call
sites cost one attribute check.  Enable it for a block with
:func:`tracing`, or process-wide via ``TRACER.enabled = True``.

Completed *root* spans land in a bounded ring buffer
(:meth:`Tracer.recent`), and queries slower than
:attr:`Tracer.slow_threshold_s` are recorded — with their counters and,
when tracing is on, their span tree — in the slow-query log the
``repro profile`` CLI reports.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Dict, List, Optional


class Span:
    """One timed region: name, attributes, children, error state."""

    __slots__ = ("name", "attrs", "start_s", "duration_s", "children", "error")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = attrs or {}
        self.start_s = 0.0
        self.duration_s = 0.0
        self.children: List[Span] = []
        self.error: Optional[str] = None

    def annotate(self, **attrs) -> None:
        """Attach attributes (e.g. the query's counters) to this span."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "duration_ms": self.duration_s * 1e3,
        }
        if self.attrs:
            out["attrs"] = {k: v for k, v in self.attrs.items()}
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def pretty(self, indent: int = 0) -> str:
        """Render this span tree as indented text for the CLI."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        line = (
            f"{'  ' * indent}{self.name:<{max(28 - 2 * indent, 1)}} "
            f"{self.duration_s * 1e3:8.3f}ms"
        )
        if attrs:
            line += f"  {attrs}"
        if self.error is not None:
            line += f"  !! {self.error}"
        return "\n".join(
            [line] + [c.pretty(indent + 1) for c in self.children]
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _NoopSpan:
    """Shared do-nothing span for disabled tracing; reentrant."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span.start_s = time.perf_counter()
        self._tracer._push(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - span.start_s
        if exc is not None:
            span.error = f"{type(exc).__name__}: {exc}"
        self._tracer._pop(span)
        return False


class Tracer:
    """Per-thread span stacks plus shared trace/slow-log ring buffers."""

    def __init__(self, ring_size: int = 256, slow_log_size: int = 512) -> None:
        #: Master switch; off by default (counters stay on regardless).
        self.enabled = False
        #: Root spans / queries at or above this duration enter the
        #: slow-query log; ``None`` disables slow-query capture.
        self.slow_threshold_s: Optional[float] = None
        self._local = threading.local()
        self._ring: deque = deque(maxlen=ring_size)
        self._slow: deque = deque(maxlen=slow_log_size)

    # ------------------------------------------------------------------
    # Span stack (thread-local)
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate a corrupted stack (a caller leaked a span) rather
        # than mis-parenting every later span on this thread.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._ring.append(span)  # deque append: thread-safe

    def span(self, name: str, **attrs):
        """A context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return _SpanContext(self, Span(name, attrs or None))

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Completed traces
    # ------------------------------------------------------------------
    def recent(self, n: Optional[int] = None) -> List[Span]:
        """The most recent completed root spans, newest last."""
        spans = list(self._ring)
        return spans if n is None else spans[-n:]

    def record_slow(self, record: Dict[str, object]) -> None:
        self._slow.append(record)

    def slow_queries(self) -> List[Dict[str, object]]:
        return list(self._slow)

    def top_slow(self, k: int = 10) -> List[Dict[str, object]]:
        """The k slowest entries currently in the slow-query log."""
        return sorted(
            self._slow, key=lambda r: r.get("time_s", 0.0), reverse=True
        )[:k]

    def clear(self) -> None:
        self._ring.clear()
        self._slow.clear()


#: Process-wide tracer used by every instrumented layer.
TRACER = Tracer()


def span(name: str, **attrs):
    """Module-level sugar for ``TRACER.span`` — the common import."""
    if not TRACER.enabled:
        return NOOP_SPAN
    return _SpanContext(TRACER, Span(name, attrs or None))


def traced(name: Optional[str] = None, **attrs):
    """Decorator form: wrap every call of ``fn`` in a span.

    The enabled check happens per call (not at decoration time), so
    decorating at import time is safe.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        def wrapper(*args, **kwargs):
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(span_name, **attrs):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return decorate


@contextlib.contextmanager
def tracing(slow_threshold_s: Optional[float] = None, clear: bool = False):
    """Enable tracing for a block, restoring prior state afterwards.

    >>> with tracing():
    ...     engine.query(42, k=5)          # doctest: +SKIP
    >>> TRACER.recent(1)[0].pretty()       # doctest: +SKIP
    """
    prev_enabled = TRACER.enabled
    prev_threshold = TRACER.slow_threshold_s
    if clear:
        TRACER.clear()
    TRACER.enabled = True
    if slow_threshold_s is not None:
        TRACER.slow_threshold_s = slow_threshold_s
    try:
        yield TRACER
    finally:
        TRACER.enabled = prev_enabled
        TRACER.slow_threshold_s = prev_threshold
