"""Shared run-metadata schema for machine-readable reports.

Every ``BENCH_*.json`` emitter (via ``benchmarks/report.py``) and the
``repro profile`` CLI stamp their reports with the same envelope —
schema version, the run's start timestamp (passed in by the caller, so
one multi-section report carries one consistent time), host facts and
the git revision — so trajectory tooling can line reports up across
machines and commits without per-benchmark parsing.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

#: Bump when the report envelope's keys change shape.
SCHEMA_VERSION = 1


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The repo's short git revision, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd or str(Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_metadata(run_started: float) -> Dict[str, object]:
    """The shared report envelope.  ``run_started`` is a unix timestamp
    captured by the caller when its run began."""
    return {
        "schema_version": SCHEMA_VERSION,
        "run_timestamp": datetime.fromtimestamp(
            run_started, tz=timezone.utc
        ).isoformat(),
        "run_timestamp_unix": run_started,
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "git_rev": git_revision(),
    }
