"""Unified observability layer: metrics, tracing and run metadata.

One import surface for every instrumented layer:

* :mod:`repro.obs.metrics` — the process-wide :data:`REGISTRY` of
  counters / gauges / fixed-bucket latency histograms with per-label
  children, snapshot/delta/reset and Prometheus text exposition.
* :mod:`repro.obs.tracing` — the :func:`span` context-manager /
  :func:`traced` decorator API producing per-query span trees into a
  ring buffer, plus the threshold-triggered slow-query log.
* :func:`record_query` — the engine's once-per-query flush: latency
  into a per-method histogram, the per-query
  :class:`~repro.utils.counters.Counters` bag into labeled registry
  counters, and slow queries into the log.

Counters are **default-on** (the flush is a few dict operations per
query); tracing is **default-off**.  :func:`disabled` switches the
whole layer off for a block — the baseline ``benchmarks/bench_obs.py``
measures the ≤3% overhead budget against.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Tuple

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    quantile_from_buckets,
)
from repro.obs.runinfo import SCHEMA_VERSION, git_revision, run_metadata
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    TRACER,
    Tracer,
    span,
    traced,
    tracing,
)
from repro.utils.counters import LEGACY_ALIASES, canonical_name

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "LEGACY_ALIASES",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTRY",
    "SCHEMA_VERSION",
    "Span",
    "TRACER",
    "Tracer",
    "canonical_name",
    "disabled",
    "get_registry",
    "git_revision",
    "quantile_from_buckets",
    "record_query",
    "run_metadata",
    "span",
    "traced",
    "tracing",
]


# Children survive MetricsRegistry.reset() (it zeroes in place), so the
# per-method series resolved once here stay valid for the process
# lifetime — resolving labels (kwargs, sort, tuple build) on every query
# would eat most of the flush budget.
_QUERY_SERIES: Dict[str, Tuple[Histogram, Counter]] = {}
_COUNTER_SERIES: Dict[Tuple[str, str], Counter] = {}


def record_query(
    method: str,
    time_s: float,
    counters,
    *,
    kernel: Optional[str] = None,
    vertex: Optional[int] = None,
    k: Optional[int] = None,
    trace: Optional[Span] = None,
) -> None:
    """Flush one answered query into the registry and the slow-query log.

    Called by :meth:`QueryEngine.query` once per query — this is the
    single point where per-query algorithm counters become process-wide
    time series, so the hot loops themselves stay untouched.
    """
    reg = REGISTRY
    if reg.enabled:
        series = _QUERY_SERIES.get(method)
        if series is None:
            series = (
                reg.histogram(
                    "knn_query_seconds", "kNN query latency", method=method
                ),
                reg.counter(
                    "knn_queries_total", "kNN queries answered", method=method
                ),
            )
            _QUERY_SERIES[method] = series
        series[0].observe(time_s)
        series[1].inc()
        for name, value in counters.as_dict().items():
            key = (method, name)
            child = _COUNTER_SERIES.get(key)
            if child is None:
                child = reg.counter(
                    "knn_counter_total",
                    "per-query algorithm counters",
                    method=method,
                    counter=name,
                )
                _COUNTER_SERIES[key] = child
            child.inc(value)
    tracer = TRACER
    threshold = tracer.slow_threshold_s
    if threshold is not None and time_s >= threshold:
        record = {
            "time_s": time_s,
            "time_ms": time_s * 1e3,
            "method": method,
            "kernel": kernel,
            "vertex": vertex,
            "k": k,
            "counters": counters.as_dict(),
        }
        if trace is not None and not isinstance(trace, type(NOOP_SPAN)):
            record["trace"] = trace.to_dict()
        tracer.record_slow(record)


@contextlib.contextmanager
def disabled():
    """Switch the whole observability layer off for a block.

    The baseline the overhead benchmark compares against: metric
    flushes skip, spans no-op.  Per-query ``Counters`` bags keep
    recording (they predate this layer and back the paper's figures).
    """
    prev_reg, prev_trace = REGISTRY.enabled, TRACER.enabled
    REGISTRY.enabled = False
    TRACER.enabled = False
    try:
        yield
    finally:
        REGISTRY.enabled = prev_reg
        TRACER.enabled = prev_trace
