"""INE: Incremental Network Expansion (Papadias et al., VLDB 2003).

A Dijkstra-style expansion from the query vertex that reports objects in
the order they are settled, stopping at the k-th (Section 3.1).  Its cost
is proportional to the number of vertices closer than the k-th object,
which is why it wins at high density and loses badly at low density.

The class exposes the Figure 7 implementation ladder through the
``variant`` parameter: ``first_cut`` (decrease-key heap, dict distances,
set settled, per-vertex adjacency objects), ``pqueue`` (+ no-decrease-key
heap), ``settled`` (+ byte-array settled container) and ``graph``
(+ CSR arrays; the production configuration).

The ``kernel`` knob extends the ladder one rung past the paper for the
``graph`` variant: ``kernel="array"`` runs the expansion as a C-level
whole-frontier kernel (:func:`repro.kernels.sssp.nearest_objects`) with
an expanding radius limit, returning byte-identical answers and the same
``ine_settled`` counter as the per-edge Python loop.  Direct
constructions default to ``"python"`` so the Figure 7 rungs stay
faithful; the engine passes its own default (``array``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.kernels.config import resolve_kernel
from repro.kernels.sssp import nearest_objects
from repro.knn.base import KNNAlgorithm, KNNResult
from repro.utils.bitset import BitArray
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap, DecreaseKeyHeap

INF = float("inf")

VARIANTS = ("first_cut", "pqueue", "settled", "graph")


class INE(KNNAlgorithm):
    """Incremental Network Expansion kNN."""

    name = "ine"

    def __init__(
        self,
        graph: Graph,
        objects: Sequence[int],
        variant: str = "graph",
        kernel: Optional[str] = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"unknown INE variant {variant!r}")
        self.graph = graph
        self.variant = variant
        self.kernel = "python" if kernel is None else resolve_kernel(kernel)
        self.object_set: Set[int] = set(int(o) for o in objects)
        self.object_flags = BitArray(graph.num_vertices)
        for o in self.object_set:
            self.object_flags.set(o)
        if variant in ("first_cut", "pqueue", "settled"):
            # Pre-"Graph" representation: per-vertex adjacency objects.
            self._adjacency: List[List[Tuple[int, float]]] = [
                list(graph.neighbors(u)) for u in range(graph.num_vertices)
            ]
        elif self.kernel == "array":
            # Array kernel: the sorted object-id array is all the state
            # the whole-frontier kernel needs.
            self._objects_arr = np.fromiter(
                sorted(self.object_set), dtype=np.int64,
                count=len(self.object_set),
            )
        else:
            # "Graph" representation: flat offset/target/weight arrays.
            # CPython's equivalent of the paper's cache-friendly CSR
            # arrays is flat *lists* — C-contiguous storage without the
            # per-element boxing cost numpy scalar indexing incurs.
            self._vs = graph.vertex_start.tolist()
            self._et = graph.edge_target.tolist()
            self._ew = graph.edge_weight.tolist()

    def update_objects(
        self, added: Sequence[int], removed: Sequence[int]
    ) -> None:
        """Apply a net object-set change in place (live POI deltas)."""
        for o in removed:
            o = int(o)
            self.object_set.discard(o)
            self.object_flags.unset(o)
        for o in added:
            o = int(o)
            self.object_set.add(o)
            self.object_flags.set(o)
        if self.variant == "graph" and self.kernel == "array":
            self._objects_arr = np.fromiter(
                sorted(self.object_set), dtype=np.int64,
                count=len(self.object_set),
            )

    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        if self.variant == "graph":
            if self.kernel == "array":
                return nearest_objects(
                    self.graph, self._objects_arr, query, k, counters
                )
            return self._knn_graph(query, k, counters)
        if self.variant == "settled":
            return self._knn_settled(query, k, counters)
        if self.variant == "pqueue":
            return self._knn_pqueue(query, k, counters)
        return self._knn_first_cut(query, k, counters)

    # ------------------------------------------------------------------
    # Production variant
    # ------------------------------------------------------------------
    def _knn_graph(self, query: int, k: int, counters: Counters) -> KNNResult:
        graph = self.graph
        n = graph.num_vertices
        dist = [INF] * n
        settled = bytearray(n)
        heap = BinaryHeap()
        dist[query] = 0.0
        heap.push(0.0, query)
        results: List[Tuple[float, int]] = []
        vs, et, ew = self._vs, self._et, self._ew
        is_object = self.object_flags
        count = counters.enabled
        while heap:
            d, u = heap.pop()
            if settled[u]:
                continue
            settled[u] = 1
            if count:
                counters.add("expand_settled")
            if is_object.get(u):
                results.append((d, u))
                if len(results) == k:
                    break
            for i in range(vs[u], vs[u + 1]):
                v = et[i]
                nd = d + ew[i]
                if nd < dist[v]:
                    dist[v] = nd
                    heap.push(nd, v)
        return self._finalise(results, k)

    # ------------------------------------------------------------------
    # Ablation variants (Figure 7)
    # ------------------------------------------------------------------
    def _knn_settled(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        adjacency = self._adjacency
        dist: Dict[int, float] = {query: 0.0}
        settled = BitArray(self.graph.num_vertices)
        heap = BinaryHeap()
        heap.push(0.0, query)
        results: List[Tuple[float, int]] = []
        object_set = self.object_set
        count = counters.enabled
        while heap:
            d, u = heap.pop()
            if settled.get(u):
                continue
            settled.set(u)
            if count:
                counters.add("expand_settled")
            if u in object_set:
                results.append((d, u))
                if len(results) == k:
                    break
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heap.push(nd, v)
        return self._finalise(results, k)

    def _knn_pqueue(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        adjacency = self._adjacency
        dist: Dict[int, float] = {query: 0.0}
        settled: Set[int] = set()
        heap = BinaryHeap()
        heap.push(0.0, query)
        results: List[Tuple[float, int]] = []
        object_set = self.object_set
        count = counters.enabled
        while heap:
            d, u = heap.pop()
            if u in settled:
                continue
            settled.add(u)
            if count:
                counters.add("expand_settled")
            if u in object_set:
                results.append((d, u))
                if len(results) == k:
                    break
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heap.push(nd, v)
        return self._finalise(results, k)

    def _knn_first_cut(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        adjacency = self._adjacency
        heap = DecreaseKeyHeap()
        heap.push(0.0, query)
        settled: Set[int] = set()
        results: List[Tuple[float, int]] = []
        object_set = self.object_set
        count = counters.enabled
        while heap:
            d, u = heap.pop()
            settled.add(u)
            if count:
                counters.add("expand_settled")
            if u in object_set:
                results.append((d, u))
                if len(results) == k:
                    break
            for v, w in adjacency[u]:
                if v not in settled:
                    heap.push(d + w, v)
        return self._finalise(results, k)


def ine_knn(graph: Graph, objects: Sequence[int], query: int, k: int) -> KNNResult:
    """One-shot INE — the brute-force ground truth used by tests."""
    return INE(graph, objects).knn(query, k)
