"""G-tree kNN search (Algorithm 3) with the improved leaf search
(Algorithm 4, Appendix A.2.1).

The search starts inside the query's leaf, then traverses the G-tree
hierarchy best-first: a priority queue holds G-tree nodes (keyed by the
exact distance to their nearest border — a lower bound for any object
inside) and object vertices (keyed by exact assembled distance).  The
Occurrence List prunes empty subtrees; materialization makes repeated
border-distance assemblies cheap.

``improved_leaf_search=False`` reproduces the original behaviour the paper
ablates in Figure 22: the leaf search computes exact distances to *every*
object in the query leaf regardless of k, instead of stopping at the
first k settled.

The ``kernel`` knob swaps the frontier machinery: ``"array"`` (resolved
default) keys both the hierarchy queue and the leaf search on
:class:`~repro.kernels.heap.ArrayHeap` packed words and relaxes leaf
edges with vectorised CSR-slice operations; ``"python"`` is the
reference tuple-heap implementation.  Results and counters are
identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.gtree import GTree, OccurrenceList
from repro.kernels.config import resolve_kernel
from repro.kernels.heap import ArrayHeap
from repro.kernels.relax import relax_edges
from repro.knn.base import KNNAlgorithm, KNNResult
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


class _EncodedHeap:
    """ArrayHeap adapter speaking the ``("v"|"n", id)`` entry protocol.

    Hierarchy-queue entries pack into the payload word — vertices as
    ``id << 1``, tree nodes as ``id << 1 | 1`` — so the main search loop
    is heap-implementation-agnostic while the array kernel stores no
    tuples.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap = ArrayHeap()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: float, entry: Tuple[str, int]) -> None:
        kind, ident = entry
        self._heap.push(key, (ident << 1) | (kind == "n"))

    def pop(self) -> Tuple[float, Tuple[str, int]]:
        key, code = self._heap.pop()
        return key, ("n" if code & 1 else "v", code >> 1)


class GTreeKNN(KNNAlgorithm):
    """kNN driver over a :class:`GTree` and an :class:`OccurrenceList`."""

    name = "gtree"

    def __init__(
        self,
        gtree: GTree,
        objects: Optional[Sequence[int]] = None,
        occurrence_list: Optional[OccurrenceList] = None,
        improved_leaf_search: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        if occurrence_list is None:
            if objects is None:
                raise ValueError("provide objects or an occurrence list")
            occurrence_list = OccurrenceList(gtree, objects)
        self.gtree = gtree
        self.ol = occurrence_list
        self.improved_leaf_search = improved_leaf_search
        self.kernel = resolve_kernel(kernel)

    def update_objects(
        self, added: Sequence[int], removed: Sequence[int]
    ) -> None:
        """Incrementally maintain the occurrence list (live POI deltas)."""
        for o in removed:
            self.ol.remove_object(int(o))
        for o in added:
            self.ol.add_object(int(o))

    # ------------------------------------------------------------------
    # Leaf searches
    # ------------------------------------------------------------------
    def _leaf_search_improved(
        self,
        query: int,
        k: int,
        queue: BinaryHeap,
        results: List[Tuple[float, int]],
        counters: Counters,
    ) -> None:
        """Algorithm 4: stop at the first k settled leaf objects.

        Runs Dijkstra over the leaf subgraph augmented with the exact
        border clique; until a border is settled, settled objects are
        global kNNs and go straight to ``results``; afterwards they go to
        the main queue (an outside object could be closer).
        """
        gtree = self.gtree
        leaf = gtree.nodes[int(gtree.leaf_of[query])]
        leaf_objects = set(self.ol.objects_in_leaf(leaf.id))
        if not leaf_objects:
            return
        if leaf.leaf_adj is None:
            leaf.leaf_adj = gtree._leaf_local_graph(
                leaf, gtree._leaf_border_clique(leaf)
            )
        adj = leaf.leaf_adj
        border_locals = {leaf.vertex_pos[int(b)] for b in leaf.borders}
        start = leaf.vertex_pos[int(query)]
        n = len(adj)
        dist = [INF] * n
        visited = [False] * n
        heap = BinaryHeap()
        dist[start] = 0.0
        heap.push(0.0, start)
        targets_found = 0
        border_found = False
        vertices = leaf.vertices
        # The leaf can contribute at most min(k, |leaf objects|) results;
        # stop as soon as they are all accounted for.
        target_bound = min(k, len(leaf_objects))
        while heap and len(results) < k and targets_found < target_bound:
            d, u = heap.pop()
            if visited[u]:
                continue
            visited[u] = True
            counters.add("leaf_settled")
            u_global = int(vertices[u])
            if u_global in leaf_objects:
                targets_found += 1
                if not border_found:
                    results.append((d, u_global))
                else:
                    queue.push(d, ("v", u_global))
            if u in border_locals:
                border_found = True
            for v, w in adj[u]:
                nd = d + w
                if not visited[v] and nd < dist[v]:
                    dist[v] = nd
                    heap.push(nd, v)

    def _leaf_search_improved_array(
        self,
        query: int,
        k: int,
        queue,
        results: List[Tuple[float, int]],
        counters: Counters,
    ) -> None:
        """Algorithm 4 on the array kernel.

        Same control flow and counters as the python version, but the
        expansion runs over the leaf's cached CSR arrays with an
        :class:`ArrayHeap` frontier and vectorised edge relaxation.
        """
        gtree = self.gtree
        leaf = gtree.nodes[int(gtree.leaf_of[query])]
        leaf_objects = set(self.ol.objects_in_leaf(leaf.id))
        if not leaf_objects:
            return
        local = gtree.leaf_local_csr(leaf)
        indptr, targets, weights = local.indptr, local.indices, local.data
        border_locals = {leaf.vertex_pos[int(b)] for b in leaf.borders}
        start = leaf.vertex_pos[int(query)]
        n = local.shape[0]
        dist = np.full(n, INF)
        visited = np.zeros(n, dtype=bool)
        heap = ArrayHeap()
        dist[start] = 0.0
        heap.push(0.0, start)
        targets_found = 0
        border_found = False
        vertices = leaf.vertices
        target_bound = min(k, len(leaf_objects))
        while heap and len(results) < k and targets_found < target_bound:
            d, u = heap.pop()
            if visited[u]:
                continue
            visited[u] = True
            counters.add("leaf_settled")
            u_global = int(vertices[u])
            if u_global in leaf_objects:
                targets_found += 1
                if not border_found:
                    results.append((d, u_global))
                else:
                    queue.push(d, ("v", u_global))
            if u in border_locals:
                border_found = True
            relax_edges(indptr, targets, weights, u, d, dist, heap)

    def _leaf_search_original(
        self,
        query: int,
        k: int,
        queue: BinaryHeap,
        results: List[Tuple[float, int]],
        counters: Counters,
    ) -> None:
        """Pre-improvement leaf search: exact distance to every leaf object."""
        gtree = self.gtree
        leaf_id = int(gtree.leaf_of[query])
        leaf_objects = self.ol.objects_in_leaf(leaf_id)
        if not leaf_objects:
            return
        sssp = gtree._same_leaf_sssp(query)
        counters.add("leaf_settled", len(sssp))
        for o in leaf_objects:
            queue.push(float(sssp[int(o)]), ("v", int(o)))

    # ------------------------------------------------------------------
    # Main search (Algorithm 3)
    # ------------------------------------------------------------------
    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        gtree = self.gtree
        ol = self.ol
        cache: Dict = {}
        results: List[Tuple[float, int]] = []
        # Entries keyed by distance; items ("v"|"n", id).  The array
        # kernel stores them as packed words in an ArrayHeap.
        queue = _EncodedHeap() if self.kernel == "array" else BinaryHeap()

        leaf_id = int(gtree.leaf_of[query])
        if ol.has_objects(leaf_id) or leaf_id in ol.leaf_objects:
            if not self.improved_leaf_search:
                self._leaf_search_original(query, k, queue, results, counters)
            elif self.kernel == "array":
                self._leaf_search_improved_array(
                    query, k, queue, results, counters
                )
            else:
                self._leaf_search_improved(query, k, queue, results, counters)
        if len(results) >= k:
            return self._finalise(results, k)

        t_node = leaf_id
        t_min = self._border_min(query, t_node, cache, counters)
        root = gtree.root

        def update_t(current: int) -> Tuple[int, float]:
            """Climb one level; enqueue occupied siblings of the old node."""
            parent = gtree.nodes[current].parent
            for child in ol.children(parent):
                if child == current:
                    continue
                key = self._node_key(query, child, cache, counters)
                queue.push(key, ("n", child))
            return parent, self._border_min(query, parent, cache, counters)

        while len(results) < k and (queue or t_node != root):
            if not queue:
                t_node, t_min = update_t(t_node)
                continue
            d, (kind, ident) = queue.pop()
            if d > t_min and t_node != root:
                queue.push(d, (kind, ident))
                t_node, t_min = update_t(t_node)
                continue
            if kind == "v":
                results.append((d, ident))
            else:
                node = gtree.nodes[ident]
                if node.is_leaf:
                    for o in ol.objects_in_leaf(ident):
                        queue.push(
                            self._object_distance(query, o, cache, counters),
                            ("v", int(o)),
                        )
                else:
                    for child in ol.children(ident):
                        queue.push(
                            self._node_key(query, child, cache, counters),
                            ("n", child),
                        )
        return self._finalise(results, k)

    # ------------------------------------------------------------------
    # Distance helpers
    # ------------------------------------------------------------------
    def _border_min(
        self, query: int, node_id: int, cache: Dict, counters: Counters
    ) -> float:
        node = self.gtree.nodes[node_id]
        if len(node.borders) == 0:
            return INF
        d = self.gtree.distances_to_node_borders(query, node_id, cache, counters)
        return float(d.min())

    def _node_key(
        self, query: int, node_id: int, cache: Dict, counters: Counters
    ) -> float:
        """Queue key for a node: exact distance to its nearest border."""
        return self._border_min(query, node_id, cache, counters)

    def _object_distance(
        self, query: int, obj: int, cache: Dict, counters: Counters
    ) -> float:
        return self.gtree.distance(query, int(obj), cache=cache, counters=counters)
