"""Shortest-path materialisation for kNN results.

The studied kNN algorithms return network *distances*; a map service also
needs the route.  This module attaches vertex paths to kNN results:

* :func:`knn_with_paths` — run any kNN method, then materialise one
  shortest path per result with a single multi-target Dijkstra from the
  query (one search regardless of k);
* :func:`silc_paths_for_results` — when a SILC index exists, extract the
  paths from its first-hop oracle instead (O(m log |V|) per path, no
  graph search — the use case SILC was designed for).

Both verify that the materialised path length matches the distance the
kNN method reported, making them a useful end-to-end consistency check.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.index.silc import SILCIndex
from repro.knn.base import KNNAlgorithm, KNNResult
from repro.utils.bitset import BitArray
from repro.utils.pqueue import BinaryHeap

INF = float("inf")

PathResult = List[Tuple[float, int, List[int]]]


def shortest_paths_to(
    graph: Graph, source: int, targets: Sequence[int]
) -> dict:
    """One Dijkstra materialising parent pointers for all ``targets``.

    Returns ``{target: (distance, [source, ..., target])}`` — a single
    search regardless of ``len(targets)``.  This is the primitive the
    engine uses to attach routes to :class:`KNNResult` neighbors.
    """
    remaining = set(int(t) for t in targets)
    n = graph.num_vertices
    dist = np.full(n, INF)
    parent = np.full(n, -1, dtype=np.int64)
    settled = BitArray(n)
    heap = BinaryHeap()
    dist[source] = 0.0
    heap.push(0.0, source)
    out = {}
    while heap and remaining:
        d, u = heap.pop()
        if settled.get(u):
            continue
        settled.set(u)
        if u in remaining:
            path = [u]
            while path[-1] != source:
                path.append(int(parent[path[-1]]))
            path.reverse()
            out[u] = (d, path)
            remaining.discard(u)
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heap.push(nd, v)
    return out


def knn_with_paths(
    graph: Graph,
    algorithm: KNNAlgorithm,
    query: int,
    k: int,
    rel_tol: float = 1e-9,
) -> PathResult:
    """kNN results of ``algorithm`` with one shortest path per object.

    Raises ``ValueError`` if a materialised path length disagrees with
    the distance the algorithm reported — an end-to-end exactness check.
    """
    results = algorithm.knn(query, k)
    paths = shortest_paths_to(graph, query, [obj for _, obj in results])
    out: PathResult = []
    for distance, obj in results:
        path_distance, path = paths[obj]
        scale = max(abs(distance), 1.0)
        if abs(path_distance - distance) > rel_tol * scale:
            raise ValueError(
                f"path length {path_distance} disagrees with reported "
                f"distance {distance} for object {obj}"
            )
        out.append((distance, obj, path))
    return out


def silc_paths_for_results(
    silc: SILCIndex,
    query: int,
    results: KNNResult,
    use_chains: bool = True,
    rel_tol: float = 1e-9,
) -> PathResult:
    """Attach SILC-oracle paths to existing kNN results (no graph search)."""
    out: PathResult = []
    for distance, obj in results:
        path_distance, path = silc.path(query, obj, use_chains=use_chains)
        scale = max(abs(distance), 1.0)
        if abs(path_distance - distance) > rel_tol * scale:
            raise ValueError(
                f"SILC path length {path_distance} disagrees with reported "
                f"distance {distance} for object {obj}"
            )
        out.append((distance, obj, path))
    return out
