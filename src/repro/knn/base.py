"""Shared kNN plumbing: the algorithm interface and result checking."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.utils.counters import Counters, NULL_COUNTERS

KNNResult = List[Tuple[float, int]]


class KNNAlgorithm:
    """Interface every kNN method implements.

    Subclasses hold their (road-network and object) indexes and answer
    :meth:`knn` queries.  ``name`` identifies the method in experiment
    output.  Every implementation accepts an optional :class:`Counters`
    and records its internal statistics into it, so all methods are
    call-compatible behind the engine's registry.
    """

    name = "knn"

    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        raise NotImplementedError

    def update_objects(
        self, added: Sequence[int], removed: Sequence[int]
    ) -> None:
        """Apply a net object-set change to this instance's object index.

        Implementations must leave the instance answering queries as if
        it had been constructed with the updated object set.  The
        default raises ``NotImplementedError``; the engine then drops
        the instance and rebuilds it lazily on next use.
        """
        raise NotImplementedError

    @staticmethod
    def _finalise(results: Sequence[Tuple[float, int]], k: int) -> KNNResult:
        """Sort by (distance, vertex) and truncate to k."""
        return sorted(results, key=lambda r: (r[0], r[1]))[:k]


def verify_knn_result(
    result: KNNResult,
    expected: KNNResult,
    rel_tol: float = 1e-9,
) -> bool:
    """Compare two kNN results by their distance sequences.

    Vertex ids may legitimately differ under distance ties, so only the
    sorted distances are compared (within a relative tolerance).
    """
    if len(result) != len(expected):
        return False
    for (da, _), (db, _) in zip(result, expected):
        scale = max(abs(da), abs(db), 1.0)
        if abs(da - db) > rel_tol * scale:
            return False
    return True
