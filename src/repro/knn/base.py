"""Shared kNN plumbing: the algorithm interface and result checking."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.utils.counters import Counters, NULL_COUNTERS

KNNResult = List[Tuple[float, int]]


class KNNAlgorithm:
    """Interface every kNN method implements.

    Subclasses hold their (road-network and object) indexes and answer
    :meth:`knn` queries.  ``name`` identifies the method in experiment
    output.  Every implementation accepts an optional :class:`Counters`
    and records its internal statistics into it, so all methods are
    call-compatible behind the engine's registry.
    """

    name = "knn"

    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        raise NotImplementedError

    @staticmethod
    def _finalise(results: Sequence[Tuple[float, int]], k: int) -> KNNResult:
        """Sort by (distance, vertex) and truncate to k."""
        return sorted(results, key=lambda r: (r[0], r[1]))[:k]


def verify_knn_result(
    result: KNNResult,
    expected: KNNResult,
    rel_tol: float = 1e-9,
) -> bool:
    """Compare two kNN results by their distance sequences.

    Vertex ids may legitimately differ under distance ties, so only the
    sorted distances are compared (within a relative tolerance).
    """
    if len(result) != len(expected):
        return False
    for (da, _), (db, _) in zip(result, expected):
        scale = max(abs(da), abs(db), 1.0)
        if abs(da - db) > rel_tol * scale:
            return False
    return True
