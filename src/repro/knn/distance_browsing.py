"""Distance Browsing kNN over the SILC index (Samet et al., SIGMOD 2008).

Candidate objects carry a network-distance interval [lb, ub] derived from
SILC's per-block lambda ratios; a best-first queue keyed by lb repeatedly
*refines* the most promising candidate by stepping one hop (or one
degree-2 chain) along its shortest path, until candidates are confirmed in
exact-distance order.  ``Dk`` — the k-th smallest known upper bound —
prunes both candidate insertion and refinement, which is DisBrw's
improvement over the original SILC kNN.

Two candidate generators, as in the paper:

* **DB-ENN** (Appendix A.1.1, Algorithm 2; the paper's improved variant
  and our default): incremental Euclidean NNs from an R-tree, suspended
  and resumed against ``Front(Q)``.
* **Object Hierarchy** (the original): a Morton-space quadtree over the
  object set whose blocks are visited best-first using SILC block bounds.

Termination note: the paper's Algorithm 1 breaks when the dequeued
element's *upper* bound reaches Dk and documents several edge-case fixes
around that rule.  We use the provably sound variant — candidates are
emitted in confirmed exact order and dropped only when their *lower*
bound exceeds Dk — which computes identical result sets while keeping the
same refinement-dominated cost profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.index.silc import SILCIndex
from repro.kernels.config import resolve_kernel
from repro.kernels.heap import ArrayHeap
from repro.knn.base import KNNAlgorithm, KNNResult
from repro.spatial.rtree import RTree
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


class _StateQueue:
    """ArrayHeap-backed queue for DisBrw's refinement states.

    Heap entries are packed (key, index) words; the mutable 6-tuple
    states live in a per-query side list the payload indexes into — the
    heap itself allocates no tuples and needs no sequence counter.
    """

    __slots__ = ("_heap", "_states")

    def __init__(self) -> None:
        self._heap = ArrayHeap()
        self._states: List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: float, state: tuple) -> None:
        self._heap.push(key, len(self._states))
        self._states.append(state)

    def pop(self):
        key, idx = self._heap.pop()
        return key, self._states[idx]

    def peek_key(self) -> float:
        return self._heap.peek_key()


class _KthUpperBound:
    """Tracks Dk: the k-th smallest upper bound over distinct objects."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.best: Dict[int, float] = {}
        self.dk = INF

    def offer(self, obj: int, ub: float) -> None:
        prev = self.best.get(obj)
        if prev is not None and prev <= ub:
            return
        self.best[obj] = ub
        if len(self.best) >= self.k:
            values = sorted(self.best.values())
            self.dk = values[self.k - 1]

    def offer_block(self, count: int, ub: float) -> None:
        """A region with ``count`` objects all at distance <= ub."""
        if count >= self.k and ub < self.dk:
            self.dk = ub


class _ObjectHierarchy:
    """Morton-space quadtree over an object set (the original generator)."""

    __slots__ = ("children", "objects", "count", "idx_lo", "idx_hi")

    def __init__(self) -> None:
        self.children: List["_ObjectHierarchy"] = []
        self.objects: List[int] = []
        self.count = 0
        self.idx_lo = 0
        self.idx_hi = 0

    @classmethod
    def build(
        cls,
        silc: SILCIndex,
        objects: Sequence[int],
        leaf_capacity: int = 32,
    ) -> "_ObjectHierarchy":
        codes_sorted = silc._codes_sorted
        positions = sorted(
            (silc.morton_position(int(o)), int(o)) for o in objects
        )
        total_bits = silc.grid_bits

        def make(code_lo: int, size_bits: int, members) -> "_ObjectHierarchy":
            node = cls()
            node.count = len(members)
            lo_code = code_lo
            hi_code = code_lo + (1 << (2 * size_bits))
            node.idx_lo = int(np.searchsorted(codes_sorted, lo_code, side="left"))
            node.idx_hi = int(np.searchsorted(codes_sorted, hi_code, side="left"))
            if len(members) <= leaf_capacity or size_bits == 0:
                node.objects = [obj for _, obj in members]
                return node
            quarter = 1 << (2 * (size_bits - 1))
            buckets = [[], [], [], []]
            for pos, obj in members:
                code = int(codes_sorted[pos])
                buckets[(code - code_lo) // quarter].append((pos, obj))
            for q, bucket in enumerate(buckets):
                if bucket:
                    node.children.append(
                        make(code_lo + q * quarter, size_bits - 1, bucket)
                    )
            return node

        return make(0, total_bits, positions)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class DistanceBrowsing(KNNAlgorithm):
    """DisBrw kNN.

    Parameters
    ----------
    silc:
        The SILC index of the road network.
    objects:
        Object vertex ids.
    candidate_source:
        ``"enn"`` (DB-ENN; default) or ``"hierarchy"`` (original OH).
    use_chains:
        Degree-2 chain optimisation in Refine (OptDisBrw, Appendix A.1.2).
    kernel:
        ``"array"`` (resolved default) runs the frontier on a packed-word
        :class:`ArrayHeap` and seeds candidate batches through the
        vectorised :meth:`SILCIndex.intervals_from`; ``"python"`` is the
        reference tuple-heap path.  Identical results and counters.
    """

    def __init__(
        self,
        silc: SILCIndex,
        objects: Sequence[int],
        candidate_source: str = "enn",
        use_chains: bool = True,
        rtree_node_capacity: int = 16,
        oh_leaf_capacity: int = 32,
        kernel: Optional[str] = None,
    ) -> None:
        if candidate_source not in ("enn", "hierarchy"):
            raise ValueError(f"unknown candidate source {candidate_source!r}")
        self.silc = silc
        self.graph: Graph = silc.graph
        self.objects = [int(o) for o in objects]
        self.candidate_source = candidate_source
        self.use_chains = use_chains
        self.kernel = resolve_kernel(kernel)
        self.name = "disbrw" if candidate_source == "enn" else "disbrw-oh"
        if candidate_source == "enn":
            self.rtree = RTree(
                [self.graph.x[o] for o in self.objects],
                [self.graph.y[o] for o in self.objects],
                items=self.objects,
                node_capacity=rtree_node_capacity,
            )
            self.hierarchy = None
        else:
            self.rtree = None
            self.hierarchy = _ObjectHierarchy.build(
                silc, self.objects, leaf_capacity=oh_leaf_capacity
            )

    # ------------------------------------------------------------------
    def update_objects(
        self, added: Sequence[int], removed: Sequence[int]
    ) -> None:
        """Maintain the DB-ENN R-tree in place (live POI deltas).

        The object-hierarchy variant's Morton quadtree carries packed
        index ranges that a point update cannot repair, so it keeps the
        base behaviour: the engine drops and rebuilds the instance.
        """
        if self.candidate_source != "enn":
            raise NotImplementedError(
                "object-hierarchy candidate source requires a rebuild"
            )
        graph = self.graph
        for o in removed:
            o = int(o)
            self.rtree.remove(float(graph.x[o]), float(graph.y[o]), o)
            self.objects.remove(o)
        for o in added:
            o = int(o)
            self.rtree.insert(float(graph.x[o]), float(graph.y[o]), o)
            self.objects.append(o)

    # ------------------------------------------------------------------
    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        if self.candidate_source == "enn":
            return self._knn_enn(query, k, counters)
        return self._knn_hierarchy(query, k, counters)

    # ------------------------------------------------------------------
    # Shared refinement machinery
    # ------------------------------------------------------------------
    def _push_candidate(
        self,
        queue: BinaryHeap,
        tracker: _KthUpperBound,
        query: int,
        obj: int,
        counters: Counters,
    ) -> None:
        """Initial interval for a new candidate (one block lookup)."""
        if obj == query:
            queue.push(0.0, (obj, query, 0.0, -1, 0.0, 0.0))
            tracker.offer(obj, 0.0)
            return
        lb, ub = self.silc.interval_from(query, obj)
        counters.add("interval_lookups")
        if lb > tracker.dk:
            counters.add("browse_insert_pruned")
            return
        tracker.offer(obj, ub)
        # State: (obj, vn, d_vn, prev, lb, ub)
        queue.push(lb, (obj, query, 0.0, -1, lb, ub))

    def _push_candidates(
        self,
        queue,
        tracker: _KthUpperBound,
        query: int,
        objs: Sequence[int],
        counters: Counters,
    ) -> None:
        """Seed a batch of candidates.

        The array kernel computes every interval in one vectorised SILC
        lookup, then applies the exact per-candidate accept/prune
        sequence of :meth:`_push_candidate` — the tracker evolves
        identically, only the interval arithmetic is batched.
        """
        if len(objs) == 0:
            return
        if self.kernel == "array" and len(objs) > 1:
            arr = np.asarray([int(o) for o in objs], dtype=np.int64)
            lbs, ubs = self.silc.intervals_from(query, arr)
            for obj, lb, ub in zip(arr.tolist(), lbs.tolist(), ubs.tolist()):
                if obj == query:
                    queue.push(0.0, (obj, query, 0.0, -1, 0.0, 0.0))
                    tracker.offer(obj, 0.0)
                    continue
                counters.add("interval_lookups")
                if lb > tracker.dk:
                    counters.add("browse_insert_pruned")
                    continue
                tracker.offer(obj, ub)
                queue.push(lb, (obj, query, 0.0, -1, lb, ub))
        else:
            for obj in objs:
                self._push_candidate(queue, tracker, query, int(obj), counters)

    def _new_queue(self):
        return _StateQueue() if self.kernel == "array" else BinaryHeap()

    def _drain(
        self,
        queue: BinaryHeap,
        tracker: _KthUpperBound,
        results: List[Tuple[float, int]],
        k: int,
        outside_lb,
        counters: Counters,
    ) -> None:
        """Pop/refine until blocked on an outside bound or done.

        ``outside_lb()`` is a lower bound on anything not yet in the queue
        (the next Euclidean NN); a candidate is confirmed (its walk has
        reached the object, so its distance is exact) and emitted only
        when it beats that bound — otherwise the candidate generator must
        catch up first.
        """
        while queue and len(results) < k:
            lb, state = queue.pop()
            obj, vn, d, prev, _, ub = state
            if lb > tracker.dk:
                counters.add("browse_dropped")
                continue
            if vn == obj:  # walk complete: d is the exact distance
                if d <= outside_lb():
                    results.append((d, obj))
                    continue
                queue.push(lb, state)
                return  # let the candidate generator catch up
            vn2, d2, prev2, lb2, ub2 = self.silc.refine(
                vn, d, prev, obj, use_chains=self.use_chains
            )
            counters.add("browse_refinements")
            if ub2 < ub:
                tracker.offer(obj, ub2)
            lb2 = max(lb2, lb)  # intervals only tighten
            ub2 = min(ub2, ub)
            if lb2 <= tracker.dk:
                queue.push(lb2, (obj, vn2, d2, prev2, lb2, ub2))
            else:
                counters.add("browse_dropped")

    # ------------------------------------------------------------------
    # DB-ENN (Algorithm 2)
    # ------------------------------------------------------------------
    def _knn_enn(self, query: int, k: int, counters: Counters) -> KNNResult:
        graph = self.graph
        speed = graph.max_speed()
        cursor = self.rtree.nearest_cursor(
            float(graph.x[query]), float(graph.y[query])
        )
        queue = self._new_queue()
        tracker = _KthUpperBound(k)
        results: List[Tuple[float, int]] = []
        exhausted = False

        def outside_lb() -> float:
            return INF if exhausted else cursor.peek_distance() / speed

        # Seed with the Euclidean kNNs, then alternate: pull the next
        # Euclidean NN whenever its lower bound beats the queue front.
        seeds: List[int] = []
        for _ in range(k):
            nxt = cursor.next()
            if nxt is None:
                exhausted = True
                break
            seeds.append(nxt[1])
        self._push_candidates(queue, tracker, query, seeds, counters)

        while len(results) < k:
            while not exhausted and (
                cursor.peek_distance() / speed < queue.peek_key()
            ):
                if cursor.peek_distance() / speed > tracker.dk:
                    exhausted = True  # no later candidate can qualify
                    break
                nxt = cursor.next()
                if nxt is None:
                    exhausted = True
                    break
                counters.add("browse_enn_retrieved")
                self._push_candidate(queue, tracker, query, nxt[1], counters)
            if not queue:
                if exhausted:
                    break
                nxt = cursor.next()
                if nxt is None:
                    exhausted = True
                    continue
                self._push_candidate(queue, tracker, query, nxt[1], counters)
                continue
            self._drain(queue, tracker, results, k, outside_lb, counters)
        return self._finalise(results, k)

    # ------------------------------------------------------------------
    # Object Hierarchy variant (Algorithm 1)
    # ------------------------------------------------------------------
    def _knn_hierarchy(self, query: int, k: int, counters: Counters) -> KNNResult:
        silc = self.silc
        queue = self._new_queue()
        tracker = _KthUpperBound(k)
        results: List[Tuple[float, int]] = []
        # Block entries are ("b", node) pairs; object entries are the
        # 6-tuple refinement states used by DB-ENN.  Both are keyed by
        # valid lower bounds, so an exact candidate popped from the front
        # is confirmed immediately — everything reachable is enqueued.
        queue.push(0.0, ("b", self.hierarchy))
        while queue and len(results) < k:
            lb, entry = queue.pop()
            if entry[0] == "b":
                node: _ObjectHierarchy = entry[1]
                if lb > tracker.dk:
                    counters.add("browse_block_pruned")
                    continue
                if node.is_leaf:
                    self._push_candidates(
                        queue, tracker, query, node.objects, counters
                    )
                else:
                    for child in node.children:
                        clb, cub = silc.region_bounds(
                            query, child.idx_lo, child.idx_hi
                        )
                        counters.add("browse_region_bounds")
                        tracker.offer_block(child.count, cub)
                        if clb <= tracker.dk:
                            queue.push(clb, ("b", child))
                continue
            obj, vn, d, prev, _, ub = entry
            if lb > tracker.dk:
                counters.add("browse_dropped")
                continue
            if vn == obj:
                results.append((d, obj))
                continue
            vn2, d2, prev2, lb2, ub2 = self.silc.refine(
                vn, d, prev, obj, use_chains=self.use_chains
            )
            counters.add("browse_refinements")
            if ub2 < ub:
                tracker.offer(obj, ub2)
            lb2 = max(lb2, lb)
            ub2 = min(ub2, ub)
            if lb2 <= tracker.dk:
                queue.push(lb2, (obj, vn2, d2, prev2, lb2, ub2))
            else:
                counters.add("browse_dropped")
        return self._finalise(results, k)
