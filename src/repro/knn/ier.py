"""IER: Incremental Euclidean Restriction (Papadias et al., VLDB 2003).

IER retrieves candidates in Euclidean order from an R-tree and computes
their network distances with a pluggable oracle, stopping when the next
Euclidean lower bound cannot beat the current k-th candidate
(Section 3.2).  Section 5's revival is exactly this parameterisation: the
original IER-Dijk, and IER over CH, TNR, hub labels ("IER-PHL") and
materialized G-tree ("IER-Gt" / MGtree).

For travel-time weights the Euclidean distance is scaled by the network's
maximum speed ``S`` so it remains a valid lower bound (Section 7.5) — the
looser bound produces the extra "false hits" the travel-time experiments
observe.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.graph.graph import Graph
from repro.knn.base import KNNAlgorithm, KNNResult
from repro.spatial.rtree import RTree
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import MaxHeap

INF = float("inf")


class IER(KNNAlgorithm):
    """Incremental Euclidean Restriction over a distance oracle.

    Parameters
    ----------
    graph:
        Road network.
    objects:
        Object vertex ids; indexed in an R-tree by coordinates.
    oracle:
        Anything with ``distance(source, target) -> float``; oracles with
        per-source state (MGtree) additionally get ``begin_source`` calls.
    rtree_node_capacity:
        R-tree fanout (the object-index parameter studied in Section 7.4).
    """

    def __init__(
        self,
        graph: Graph,
        objects: Sequence[int],
        oracle,
        rtree_node_capacity: int = 16,
    ) -> None:
        self.graph = graph
        self.oracle = oracle
        self.objects = [int(o) for o in objects]
        self.rtree = RTree(
            [graph.x[o] for o in self.objects],
            [graph.y[o] for o in self.objects],
            items=self.objects,
            node_capacity=rtree_node_capacity,
        )
        self.name = f"ier-{getattr(oracle, 'name', 'oracle')}"

    def update_objects(
        self, added: Sequence[int], removed: Sequence[int]
    ) -> None:
        """Incrementally maintain the object R-tree (live POI deltas)."""
        graph = self.graph
        for o in removed:
            o = int(o)
            self.rtree.remove(float(graph.x[o]), float(graph.y[o]), o)
            self.objects.remove(o)
        for o in added:
            o = int(o)
            self.rtree.insert(float(graph.x[o]), float(graph.y[o]), o)
            self.objects.append(o)

    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        graph = self.graph
        speed = graph.max_speed()
        begin = getattr(self.oracle, "begin_source", None)
        if begin is not None:
            begin(query)
        cursor = self.rtree.nearest_cursor(float(graph.x[query]), float(graph.y[query]))
        candidates = MaxHeap()  # k best candidates keyed by network distance
        d_k = INF
        while True:
            nxt = cursor.next()
            if nxt is None:
                break
            de, obj = nxt
            lower_bound = de / speed
            if len(candidates) >= k and lower_bound >= d_k:
                # The next Euclidean NN already cannot beat the k-th
                # candidate; neither can any later one.  Terminate.
                break
            d = self.oracle.distance(query, obj)
            counters.add("verify_network_computations")
            if len(candidates) < k:
                candidates.push(d, obj)
                if len(candidates) == k:
                    d_k = candidates.peek_key()
            elif d < d_k:
                candidates.pop()
                candidates.push(d, obj)
                d_k = candidates.peek_key()
                counters.add("euclid_candidate_replacements")
            else:
                counters.add("verify_false_hits")
        results: List[Tuple[float, int]] = []
        while candidates:
            d, obj = candidates.pop()
            results.append((d, obj))
        return self._finalise(results, k)


def euclidean_knn_brute_force(
    graph: Graph, objects: Sequence[int], query: int, k: int
) -> List[Tuple[float, int]]:
    """Brute-force Euclidean kNN (testing reference for the R-tree path)."""
    qx, qy = float(graph.x[query]), float(graph.y[query])
    scored = sorted(
        (math.hypot(graph.x[o] - qx, graph.y[o] - qy), int(o)) for o in objects
    )
    return scored[:k]
