"""ROAD kNN search (Algorithms 5 and 6).

An INE-style expansion that, on settling a vertex, consults the Route
Overlay for the highest-level object-free Rnet the vertex borders and
bypasses it: the Rnet's shortcuts are relaxed instead of its interior
edges, plus the vertex's raw edges that leave the Rnet.  When every Rnet
the vertex borders contains objects (or it borders none) the raw edges
are relaxed exactly as in INE.

Includes the paper's minor improvement (Appendix A.3): shortcuts leading
to already-visited borders are not re-inserted into the queue.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.index.road import AssociationDirectory, RoadIndex
from repro.knn.base import KNNAlgorithm, KNNResult
from repro.utils.counters import Counters, NULL_COUNTERS
from repro.utils.pqueue import BinaryHeap

INF = float("inf")


class RoadKNN(KNNAlgorithm):
    """kNN driver over a :class:`RoadIndex` and Association Directory."""

    name = "road"

    def __init__(
        self,
        road: RoadIndex,
        objects: Optional[Sequence[int]] = None,
        directory: Optional[AssociationDirectory] = None,
        skip_visited_borders: bool = True,
    ) -> None:
        if directory is None:
            if objects is None:
                raise ValueError("provide objects or an association directory")
            directory = AssociationDirectory(road, objects)
        self.road = road
        self.ad = directory
        self.skip_visited_borders = skip_visited_borders

    def update_objects(
        self, added: Sequence[int], removed: Sequence[int]
    ) -> None:
        """Incrementally maintain the association directory."""
        for o in removed:
            self.ad.remove_object(int(o))
        for o in added:
            self.ad.add_object(int(o))

    def knn(
        self, query: int, k: int, counters: Counters = NULL_COUNTERS
    ) -> KNNResult:
        road = self.road
        ad = self.ad
        n = road.graph.num_vertices
        dist = [INF] * n
        visited = bytearray(n)
        heap = BinaryHeap()
        dist[query] = 0.0
        heap.push(0.0, query)
        results: List[Tuple[float, int]] = []
        route_overlay = road.route_overlay
        leaf_index = road._leaf_index_list
        rnets = road.rnets
        shortcut_lists = road._shortcut_lists
        vs, et, ew = road._vs, road._et, road._ew
        skip_visited = self.skip_visited_borders
        count = counters.enabled
        rnet_has_object = ad.rnet_has_object
        is_object = ad.is_object

        while heap and len(results) < k:
            d, u = heap.pop()
            if visited[u]:
                continue
            visited[u] = 1
            if count:
                counters.add("expand_settled")
            if is_object(u):
                results.append((d, u))
                if len(results) == k:
                    break
            # Highest-level object-free Rnet that u borders.
            bypass = -1
            for rnet_id in route_overlay[u]:
                if not rnet_has_object(rnet_id):
                    bypass = rnet_id
                    break
            if bypass >= 0:
                node = rnets[bypass]
                if count:
                    counters.add("expand_bypassed", node.interior_size)
                row = shortcut_lists[bypass][node.border_pos[u]]
                for b, w in row:
                    if skip_visited and visited[b]:
                        continue
                    nd = d + w
                    if nd < dist[b]:
                        dist[b] = nd
                        heap.push(nd, b)
                # Raw edges leaving the bypassed Rnet.
                lo, hi = node.leaf_lo, node.leaf_hi
                for i in range(vs[u], vs[u + 1]):
                    v = et[i]
                    li = leaf_index[v]
                    if lo <= li < hi:
                        continue  # interior edge: subsumed by shortcuts
                    if skip_visited and visited[v]:
                        continue
                    nd = d + ew[i]
                    if nd < dist[v]:
                        dist[v] = nd
                        heap.push(nd, v)
            else:
                for i in range(vs[u], vs[u + 1]):
                    v = et[i]
                    if skip_visited and visited[v]:
                        continue
                    nd = d + ew[i]
                    if nd < dist[v]:
                        dist[v] = nd
                        heap.push(nd, v)
        return self._finalise(results, k)
