"""kNN query algorithms — the paper's five methods.

* :class:`INE` — Incremental Network Expansion (Dijkstra-style).
* :class:`IER` — Incremental Euclidean Restriction, parameterised by a
  distance oracle (Dijkstra / A* / CH / hub labels / TNR / MGtree).
* :class:`DistanceBrowsing` — SILC-based interval refinement, in both the
  DB-ENN (R-tree candidates) and Object-Hierarchy variants.
* :class:`GTreeKNN` — G-tree hierarchy traversal with occurrence lists.
* :class:`RoadKNN` — ROAD expansion with Rnet bypassing.

All return ``[(network_distance, object_vertex), ...]`` sorted ascending,
ties broken by vertex id.
"""

from repro.knn.base import KNNAlgorithm, verify_knn_result
from repro.knn.ine import INE, ine_knn
from repro.knn.ier import IER, euclidean_knn_brute_force
from repro.knn.gtree_knn import GTreeKNN
from repro.knn.road_knn import RoadKNN
from repro.knn.distance_browsing import DistanceBrowsing
from repro.knn.paths import (
    knn_with_paths,
    shortest_paths_to,
    silc_paths_for_results,
)

__all__ = [
    "KNNAlgorithm",
    "verify_knn_result",
    "INE",
    "ine_knn",
    "IER",
    "euclidean_knn_brute_force",
    "GTreeKNN",
    "RoadKNN",
    "DistanceBrowsing",
    "knn_with_paths",
    "shortest_paths_to",
    "silc_paths_for_results",
]
