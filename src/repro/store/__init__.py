"""Persistent, versioned on-disk store for build products.

Separates the paper's expensive preprocessing (Fig. 8 / Fig. 26) from
the latency-critical query path: indexes are built once, serialized to
content-addressed ``.npz`` artifacts, and every later ``IndexCache`` /
``QueryEngine`` / benchmark run warm-starts from disk.

Typical use::

    from repro import QueryEngine, road_network, uniform_objects
    from repro.store import IndexStore

    store = IndexStore("~/.cache/repro")      # any directory
    graph = road_network(2000, seed=7)
    engine = QueryEngine(graph, uniform_objects(graph, 0.01), store=store)
    engine.query(0, k=5, method="gtree")      # first run builds + saves
    # ... new process, same store: loads in milliseconds, zero builds

CLI equivalents: ``repro build`` (prebuild + save), ``repro store ls``,
``repro store gc``.
"""

from repro.store.store import (
    FORMAT_VERSION,
    STORE_FORMATS,
    ArtifactInfo,
    ArtifactMissing,
    IndexStore,
    StoreCorruption,
    StoreError,
    artifact_key,
)
from repro.store.artifacts import (
    INDEX_KINDS,
    IndexKind,
    expand_kinds,
    load_graph,
    load_index,
    load_objects,
    save_graph,
    save_index,
    save_objects,
)

__all__ = [
    "IndexStore",
    "ArtifactInfo",
    "ArtifactMissing",
    "StoreCorruption",
    "StoreError",
    "FORMAT_VERSION",
    "STORE_FORMATS",
    "artifact_key",
    "INDEX_KINDS",
    "IndexKind",
    "expand_kinds",
    "save_index",
    "load_index",
    "save_graph",
    "load_graph",
    "save_objects",
    "load_objects",
]
