"""Artifact kinds: how each index maps to store arrays and back.

Every road-network index in the engine's :class:`IndexCache` has an
``IndexKind`` record here pairing its ``to_arrays`` dump with the
``from_arrays`` loader (and the loader's dependencies — TNR rides on a
CH that is its own artifact).  The engine's warm-start path and the CLI
``build`` command both go through :func:`load_index` / :func:`save_index`
so the set of persistable kinds lives in exactly one place.

Graphs and object sets get the same treatment (``save_graph`` /
``load_graph``, ``save_objects`` / ``load_objects``): a store directory
is a self-contained experiment input, not just an index cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs

from repro.graph.graph import Graph
from repro.index.gtree import GTree
from repro.index.road import RoadIndex
from repro.index.silc import SILCIndex
from repro.pathfinding.ch import ContractionHierarchy
from repro.pathfinding.hub_labels import HubLabels
from repro.pathfinding.tnr import TransitNodeRouting
from repro.store.store import IndexStore, artifact_key


@dataclass(frozen=True)
class IndexKind:
    """Serialization contract for one persistable index kind."""

    name: str
    #: ``loader(graph, arrays, deps) -> index``; ``deps`` maps dependency
    #: kind name -> already-loaded index instance.
    loader: Callable[..., object]
    #: Other kinds the loader needs (e.g. TNR needs a CH).
    depends: Tuple[str, ...] = ()
    #: Kinds only the *builder* draws on (hub labels order from the CH
    #: rank); a warm load does not need them, but prebuild tooling
    #: obtains them first so per-kind build timings stay honest.
    build_depends: Tuple[str, ...] = ()


def _load_tnr(graph: Graph, arrays: Dict[str, np.ndarray], deps: Dict[str, object]):
    return TransitNodeRouting.from_arrays(graph, arrays, ch=deps["ch"])


INDEX_KINDS: Dict[str, IndexKind] = {
    "gtree": IndexKind(
        "gtree", lambda g, a, deps: GTree.from_arrays(g, a)
    ),
    "road": IndexKind(
        "road", lambda g, a, deps: RoadIndex.from_arrays(g, a)
    ),
    "silc": IndexKind(
        "silc", lambda g, a, deps: SILCIndex.from_arrays(g, a)
    ),
    "ch": IndexKind(
        "ch", lambda g, a, deps: ContractionHierarchy.from_arrays(g, a)
    ),
    "hub_labels": IndexKind(
        "hub_labels",
        lambda g, a, deps: HubLabels.from_arrays(g, a),
        build_depends=("ch",),
    ),
    "tnr": IndexKind("tnr", _load_tnr, depends=("ch",)),
}


def expand_kinds(kinds: Sequence[str]) -> list:
    """Dependency-closed, dependency-first ordering of index kinds.

    Both loader deps (TNR rides on a CH artifact) and build-only deps
    (hub labels draw their order from the CH rank) come before their
    dependents, so prebuild tooling obtains each kind exactly once and
    per-kind build timings reflect only that kind's own work.
    """
    out: list = []

    def add(kind: str) -> None:
        if kind not in INDEX_KINDS:
            raise ValueError(
                f"unknown index kind {kind!r}; persistable kinds: "
                f"{', '.join(INDEX_KINDS)}"
            )
        spec = INDEX_KINDS[kind]
        for dep in (*spec.depends, *spec.build_depends):
            add(dep)
        if kind not in out:
            out.append(kind)

    for kind in kinds:
        add(kind)
    return out


def save_index(
    store: IndexStore,
    kind: str,
    graph: Graph,
    index,
    params: Optional[Dict[str, object]] = None,
):
    """Persist ``index`` (which must expose ``to_arrays``/``build_time``)."""
    if kind not in INDEX_KINDS:
        raise ValueError(
            f"unknown index kind {kind!r}; persistable kinds: "
            f"{', '.join(INDEX_KINDS)}"
        )
    key = artifact_key(graph, params)
    start = time.perf_counter()
    record = store.put(
        kind,
        key,
        index.to_arrays(),
        build_time_s=index.build_time(),
        params=params,
    )
    reg = obs.REGISTRY
    if reg.enabled:
        reg.histogram(
            "artifact_save_seconds", "index artifact save time", kind=kind
        ).observe(time.perf_counter() - start)
    return record


def load_index(
    store: IndexStore,
    kind: str,
    graph: Graph,
    params: Optional[Dict[str, object]] = None,
    deps: Optional[Dict[str, object]] = None,
):
    """Load the ``kind`` index built for (graph, params) from the store.

    Raises :class:`~repro.store.store.ArtifactMissing` on a clean miss
    and :class:`~repro.store.store.StoreCorruption` when the store is
    damaged.
    """
    spec = INDEX_KINDS[kind]
    missing = [d for d in spec.depends if d not in (deps or {})]
    if missing:
        raise ValueError(
            f"loading {kind!r} requires deps: {', '.join(missing)}"
        )
    start = time.perf_counter()
    arrays = store.get(kind, artifact_key(graph, params))
    index = spec.loader(graph, arrays, deps or {})
    reg = obs.REGISTRY
    if reg.enabled:
        reg.histogram(
            "artifact_load_seconds", "index artifact load time", kind=kind
        ).observe(time.perf_counter() - start)
    return index


# ----------------------------------------------------------------------
# Graphs and object sets
# ----------------------------------------------------------------------
def save_graph(store: IndexStore, graph: Graph):
    """Persist the CSR graph itself, keyed by its own content hash."""
    return store.put("graph", artifact_key(graph), graph.to_arrays())


def load_graph(store: IndexStore, key: str) -> Graph:
    return Graph.from_arrays(store.get("graph", key))


def save_objects(
    store: IndexStore,
    graph: Graph,
    objects: Sequence[int],
    params: Optional[Dict[str, object]] = None,
):
    """Persist an object (POI) vertex set for ``graph``."""
    key = artifact_key(graph, params)
    return store.put(
        "objects",
        key,
        {"objects": np.asarray(list(objects), dtype=np.int64)},
        params=params,
    )


def load_objects(
    store: IndexStore, graph: Graph, params: Optional[Dict[str, object]] = None
) -> np.ndarray:
    return np.asarray(
        store.get("objects", artifact_key(graph, params))["objects"],
        dtype=np.int64,
    )
