"""Versioned on-disk artifact store for graphs, object sets and indexes.

The paper's central tension is preprocessing cost vs. query time (Fig. 8,
Fig. 26, Table 3): G-tree and ROAD take seconds-to-minutes to build, SILC
hours — yet queries run in microseconds.  A long-lived query service must
therefore never rebuild an index it has already paid for.  ``IndexStore``
is that separation: every expensive build product is serialized (via the
index's ``to_arrays``) into a compressed ``.npz`` artifact keyed by a
content hash of the *graph* and the *build parameters*, with a JSON
manifest recording the store format version, per-array shapes and the
original build wall-time.

Two payload formats live under the same manifest scheme:

* ``"npz"`` (default) — one compressed ``.npz`` per artifact.  Small on
  disk, but every load decompresses and materialises every array in
  every process.
* ``"flat"`` — one *directory* of per-array ``.npy`` files written via
  ``np.lib.format``.  Loads return **read-only memory maps**
  (``np.load(..., mmap_mode="r")``): pages are faulted in on demand and
  shared across processes through the OS page cache, which is what makes
  continental-scale graphs (millions of vertices) servable without
  copying the arrays per worker.

The knob is per-*store* for writes (``IndexStore(root, format="flat")``)
and per-*entry* for reads: the manifest records each artifact's format,
so a store can hold a mix and old ``.npz`` artifacts keep loading
transparently from a store opened with ``format="flat"``.

Layout::

    <root>/
        manifest.json               # format version + artifact records
        gtree-1f2e3d4c5b6a7988.npz  # one npz artifact per (kind, key)
        graph-9a8b7c6d5e4f3a2b.flat/   # ... or one flat directory
            vertex_start.npy
            edge_target.npy
            ...

Integrity rules:

* A lookup for a key the store has never seen raises
  :class:`ArtifactMissing` — callers (the ``IndexCache`` warm-start path)
  treat that as a normal cache miss and build.
* A manifest entry whose artifact file is gone, whose format version does
  not match :data:`FORMAT_VERSION`, or whose recorded shapes disagree
  with the file raises :class:`StoreCorruption` with the artifact id and
  the reason — never a bare ``KeyError`` from deep inside ``np.load``.
* :meth:`IndexStore.gc` sweeps exactly those corrupt states (and orphaned
  files) out of the store.

Writes are atomic (temp file + ``os.replace``) so a crashed build never
leaves a half-written artifact behind a valid manifest entry.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import tempfile
import time
import zipfile
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: single-writer stores only
    fcntl = None

import numpy as np

from repro.resilience.faults import fault_check

#: Store format version.  Bump when any ``to_arrays`` layout changes *or*
#: when an index build algorithm changes in a way that alters its output
#: (different partitioning, contraction order, compression, ...): the
#: version participates in every artifact key, so a bump makes all older
#: artifacts clean misses, and ``gc`` reclaims them.
FORMAT_VERSION = 1

#: Payload formats a store can write.  Reads always honour the format
#: recorded per manifest entry, so the knob never invalidates artifacts.
STORE_FORMATS = ("npz", "flat")

_MANIFEST = "manifest.json"

#: gc only sweeps ``.tmp`` files older than this (seconds), so it cannot
#: delete a concurrent writer's in-flight save out from under it.
TMP_SWEEP_AGE_S = 3600.0


class StoreError(RuntimeError):
    """Base class for index-store failures."""


class ArtifactMissing(StoreError):
    """No artifact for this (kind, key) — a normal cache miss."""


class StoreCorruption(StoreError):
    """The manifest and the on-disk artifacts disagree.

    Raised when a manifest entry references a missing file, an artifact
    written under a different :data:`FORMAT_VERSION`, or a payload whose
    shapes do not match the manifest.  The message names the artifact and
    the repair action (``repro store gc``).
    """


@dataclass
class ArtifactInfo:
    """One manifest record."""

    artifact_id: str
    kind: str
    key: str
    file: str
    format_version: int
    shapes: Dict[str, List[int]]
    build_time_s: float
    created_at: float
    nbytes: int
    params: Dict[str, object] = field(default_factory=dict)
    #: Payload format ("npz" | "flat").  Defaults to "npz" so manifests
    #: written before the flat format existed keep parsing unchanged.
    format: str = "npz"
    #: Sum of the arrays' in-memory sizes (``arr.nbytes``) — what a full
    #: materialisation costs, vs ``nbytes`` which is the on-disk size.
    #: 0 on entries written before the field existed.
    mapped_nbytes: int = 0


def canonical_params(params: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Normalise build params for hashing and the JSON manifest.

    Numpy scalars (``seed=np.int64(7)`` taken from an array) unwrap to
    their Python values so they hash identically to plain ints and stay
    JSON-serialisable — the key path and the manifest path must never
    disagree about the same parameters.
    """
    out: Dict[str, object] = {}
    for name, value in (params or {}).items():
        item = getattr(value, "item", None)
        if callable(item):
            try:
                value = item()
            except (TypeError, ValueError):
                pass
        out[name] = value
    return out


def artifact_key(graph, params: Optional[Dict[str, object]] = None) -> str:
    """Content key for an artifact: hash of (graph, build parameters).

    Uses :meth:`Graph.fingerprint` (topology + weights + coordinates) so
    the same build parameters on a different network — or the same
    network under travel-time weights — never collide.
    :data:`FORMAT_VERSION` is salted in, so bumping it (layout *or*
    build-algorithm changes) turns every pre-bump artifact into a clean
    miss instead of silently serving stale builds.
    """
    h = hashlib.sha256(graph.fingerprint().encode())
    h.update(
        json.dumps(canonical_params(params), sort_keys=True, default=str).encode()
    )
    h.update(str(FORMAT_VERSION).encode())
    return h.hexdigest()[:16]


class IndexStore:
    """A directory of versioned, content-addressed artifacts.

    ``format`` selects the payload written by :meth:`put`: ``"npz"``
    (compressed, fully materialised on load) or ``"flat"`` (per-array
    ``.npy`` files, loaded as read-only memory maps).  Reads dispatch on
    the format recorded in each manifest entry, so either setting reads
    a store containing both.
    """

    def __init__(self, root, format: str = "npz") -> None:
        if format not in STORE_FORMATS:
            raise ValueError(
                f"unknown store format {format!r}; choose from {STORE_FORMATS}"
            )
        self.root = Path(root).expanduser()
        self.format = format

    def _ensure_root(self) -> None:
        """Create the store directory on first *write* — read-only
        operations (``store ls`` on a typo'd path) must not mkdir."""
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def _read_manifest(self) -> Dict[str, dict]:
        path = self._manifest_path()
        if not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreCorruption(
                f"unreadable store manifest {path}: {exc}; delete the store "
                "directory (or run `repro store gc --all`) to start fresh"
            ) from exc
        artifacts = data.get("artifacts", {}) if isinstance(data, dict) else None
        if not isinstance(artifacts, dict):
            raise StoreCorruption(
                f"malformed store manifest {path} (not an artifact map); "
                "delete the store directory (or run `repro store gc --all`) "
                "to start fresh"
            )
        return artifacts

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Serialise manifest read-modify-write against other processes.

        Two `repro build` runs (or two benchmark sessions) sharing one
        store must not drop each other's manifest entries; an advisory
        ``flock`` on ``<root>/.lock`` covers the RMW window.  Released on
        close, so a killed process cannot wedge the store.
        """
        if fcntl is None or not self.root.is_dir():
            # No directory yet -> nothing on disk to race against (and
            # locking must not mkdir a path a read-only caller probed).
            yield
            return
        with open(self.root / ".lock", "w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            yield

    def _write_manifest(self, artifacts: Dict[str, dict]) -> None:
        path = self._manifest_path()
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {"format_version": FORMAT_VERSION, "artifacts": artifacts},
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Core artifact API
    # ------------------------------------------------------------------
    @staticmethod
    def _artifact_id(kind: str, key: str) -> str:
        return f"{kind}-{key}"

    def put(
        self,
        kind: str,
        key: str,
        arrays: Dict[str, np.ndarray],
        build_time_s: float = 0.0,
        params: Optional[Dict[str, object]] = None,
    ) -> ArtifactInfo:
        """Write one artifact atomically and record it in the manifest.

        The payload format is the store's ``format`` knob.  Re-putting a
        (kind, key) that exists under the *other* format replaces the
        manifest entry; the superseded payload becomes an orphan the
        next ``gc`` reclaims — that is the whole migration story.
        """
        fault_check("store.save")
        self._ensure_root()
        artifact_id = self._artifact_id(kind, key)
        if self.format == "flat":
            filename = f"{artifact_id}.flat"
            tmp = self._write_flat_tmp(artifact_id, arrays)
        else:
            filename = f"{artifact_id}.npz"
            tmp = self._write_npz_tmp(artifact_id, arrays)
        path = self.root / filename
        # Publish + register under one lock so a concurrent gc can never
        # see the renamed file without its manifest entry (and sweep it
        # as an orphan).
        with self._locked():
            try:
                if self.format == "flat" and path.is_dir():
                    # os.replace cannot overwrite a non-empty directory;
                    # drop the superseded payload first.  Readers that
                    # already mapped it keep their pages (POSIX unlink
                    # semantics) — only new opens see the replacement.
                    shutil.rmtree(path)
                os.replace(tmp, path)
            except FileNotFoundError as exc:
                # A concurrent `store gc --all` swept our in-flight tmp;
                # surface a retryable StoreError, not a raw traceback.
                raise StoreError(
                    f"in-flight artifact write {Path(tmp).name!r} "
                    "disappeared (concurrent `store gc --all`?); retry "
                    "the build"
                ) from exc
            except BaseException:
                with contextlib.suppress(OSError):
                    _remove_payload(Path(tmp))
                raise
            info = ArtifactInfo(
                artifact_id=artifact_id,
                kind=kind,
                key=key,
                file=filename,
                format_version=FORMAT_VERSION,
                shapes={k: list(np.shape(v)) for k, v in arrays.items()},
                build_time_s=float(build_time_s),
                created_at=time.time(),
                nbytes=_payload_nbytes(path),
                params=canonical_params(params),
                format=self.format,
                mapped_nbytes=int(
                    sum(np.asarray(v).nbytes for v in arrays.values())
                ),
            )
            manifest = self._read_manifest()
            manifest[artifact_id] = asdict(info)
            self._write_manifest(manifest)
        return info

    def _write_npz_tmp(self, artifact_id: str, arrays) -> str:
        """Write the compressed payload to a unique temp file.

        Unique temp name per writer: two processes racing to save the
        same artifact each publish a complete file; last rename wins.
        """
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f"{artifact_id}-", suffix=".npz.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **arrays)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return tmp

    def _write_flat_tmp(self, artifact_id: str, arrays) -> str:
        """Write one ``<name>.npy`` per array into a unique temp dir.

        ``np.save`` streams C-contiguous arrays straight to the file
        object, so saving memmap-backed inputs (the ingest path) never
        materialises them in RAM.
        """
        for name in arrays:
            if os.sep in name or name != os.path.basename(name) or not name:
                raise StoreError(
                    f"array name {name!r} is not a safe flat-artifact "
                    "member filename"
                )
        tmp = tempfile.mkdtemp(
            dir=self.root, prefix=f"{artifact_id}-", suffix=".flat.tmp"
        )
        try:
            for name, value in arrays.items():
                with open(Path(tmp) / f"{name}.npy", "wb") as fh:
                    np.save(fh, np.asarray(value), allow_pickle=False)
        except BaseException:
            with contextlib.suppress(OSError):
                shutil.rmtree(tmp)
            raise
        return tmp

    @staticmethod
    def _info_from_entry(entry: dict) -> ArtifactInfo:
        """Parse a manifest record, surfacing foreign formats as corruption.

        The version check runs on the *raw dict* before the dataclass is
        built, so entries written by a future format (extra or missing
        fields) still produce the designed :class:`StoreCorruption` with
        repair instructions instead of a ``TypeError``.
        """
        version = entry.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreCorruption(
                f"artifact {entry.get('artifact_id', '?')!r} was written "
                f"with store format v{version}, this build reads "
                f"v{FORMAT_VERSION}; run `repro store gc` to reclaim it, "
                "then rebuild"
            )
        known = {f.name for f in dataclass_fields(ArtifactInfo)}
        try:
            return ArtifactInfo(**{k: v for k, v in entry.items() if k in known})
        except TypeError as exc:
            raise StoreCorruption(
                f"manifest entry {entry.get('artifact_id', '?')!r} is not "
                f"readable by this build: {exc}; run `repro store gc`, "
                "then rebuild"
            ) from exc

    def info(self, kind: str, key: str) -> ArtifactInfo:
        """Manifest record for (kind, key); :class:`ArtifactMissing` if absent."""
        artifact_id = self._artifact_id(kind, key)
        entry = self._read_manifest().get(artifact_id)
        if entry is None:
            raise ArtifactMissing(
                f"store has no {kind!r} artifact for key {key!r}"
            )
        return self._info_from_entry(entry)

    def contains(self, kind: str, key: str) -> bool:
        return self._artifact_id(kind, key) in self._read_manifest()

    def get(self, kind: str, key: str) -> Dict[str, np.ndarray]:
        """Load one artifact's arrays, verifying version, file and shapes.

        Dispatches on the format recorded in the manifest entry: ``npz``
        artifacts decompress into ordinary (writable) arrays, ``flat``
        artifacts return **read-only memory maps** — zero-copy views the
        OS pages in on demand.  Callers that need to mutate must copy.

        Raises :class:`ArtifactMissing` on a clean miss (caller builds)
        and :class:`StoreCorruption` — never ``KeyError`` — when the
        manifest and disk disagree.
        """
        fault_check("store.load")
        info = self.info(kind, key)  # raises StoreCorruption on foreign formats
        path = self.root / info.file
        if not path.exists():
            raise StoreCorruption(
                f"manifest references missing artifact file {info.file!r} "
                f"(kind={kind!r}, key={key!r}); run `repro store gc` to "
                "drop the stale entry, then rebuild"
            )
        if info.format == "flat":
            arrays = self._load_flat(info, path)
        else:
            try:
                with np.load(path, allow_pickle=False) as data:
                    arrays = {name: data[name] for name in data.files}
            except (OSError, ValueError, zipfile.BadZipFile) as exc:
                raise StoreCorruption(
                    f"artifact file {info.file!r} is unreadable: {exc}; run "
                    "`repro store gc`, then rebuild"
                ) from exc
        for name, shape in info.shapes.items():
            if name not in arrays or list(arrays[name].shape) != list(shape):
                raise StoreCorruption(
                    f"artifact {info.artifact_id!r}: array {name!r} shape "
                    f"mismatch against manifest; run `repro store gc`, "
                    "then rebuild"
                )
        return arrays

    def _load_flat(self, info: ArtifactInfo, path: Path) -> Dict[str, np.ndarray]:
        """Memory-map every member of a flat artifact directory.

        The manifest's ``shapes`` keys name the members, so a member
        missing on disk is detected here (as :class:`StoreCorruption`),
        not as a ``KeyError`` in the caller.  Scalar (0-d) members fall
        back to an eager read marked read-only — ``mmap_mode`` and 0-d
        headers disagree on some numpy versions and scalars carry no
        page-cache benefit anyway.
        """
        arrays: Dict[str, np.ndarray] = {}
        for name in info.shapes:
            member = path / f"{name}.npy"
            try:
                try:
                    arrays[name] = np.load(
                        member, mmap_mode="r", allow_pickle=False
                    )
                except ValueError:
                    arr = np.load(member, allow_pickle=False)
                    arr.setflags(write=False)
                    arrays[name] = arr
            except (OSError, ValueError) as exc:
                raise StoreCorruption(
                    f"artifact {info.artifact_id!r}: member {member.name!r} "
                    f"is unreadable: {exc}; run `repro store gc`, then "
                    "rebuild"
                ) from exc
        return arrays

    def entries(self) -> List[ArtifactInfo]:
        """All manifest records, newest first.

        Entries a different store format wrote are skipped (``gc``
        reclaims them); listing must not crash on a half-migrated store.
        """
        out = []
        for entry in self._read_manifest().values():
            try:
                out.append(self._info_from_entry(entry))
            except StoreCorruption:
                continue
        out.sort(key=lambda i: -i.created_at)
        return out

    def stale_entry_count(self) -> int:
        """Manifest records unreadable by this build (another format).

        ``store ls`` surfaces this so a post-version-bump store never
        looks empty while stale artifacts still occupy disk.
        """
        count = 0
        for entry in self._read_manifest().values():
            try:
                self._info_from_entry(entry)
            except StoreCorruption:
                count += 1
        return count

    def delete(self, kind: str, key: str) -> None:
        """Remove one artifact (file + manifest entry); missing is a no-op."""
        artifact_id = self._artifact_id(kind, key)
        with self._locked():
            manifest = self._read_manifest()
            entry = manifest.pop(artifact_id, None)
            if entry is not None:
                self._write_manifest(manifest)
                file_name = entry.get("file")
                if file_name and (self.root / file_name).exists():
                    _remove_payload(self.root / file_name)

    def quarantine(self, kind: str, key: str) -> Optional[Path]:
        """Move one artifact into ``<root>/quarantine/``; drop its entry.

        The corruption-containment primitive behind
        :func:`repro.resilience.quarantine.quarantine_artifact`: the file
        is preserved for post-mortem instead of deleted, and the manifest
        forgets it so the next lookup is a clean
        :class:`ArtifactMissing` miss (the caller rebuilds).  Returns
        the quarantined file's new path, or ``None`` when no file was
        on disk to move.
        """
        artifact_id = self._artifact_id(kind, key)
        moved: Optional[Path] = None
        with self._locked():
            try:
                manifest = self._read_manifest()
            except StoreCorruption:
                manifest = None  # whole-manifest damage: gc territory
            entry = None
            if manifest is not None:
                entry = manifest.pop(artifact_id, None)
                if entry is not None:
                    self._write_manifest(manifest)
            file_name = entry.get("file") if isinstance(entry, dict) else None
            if file_name is None:
                # No manifest entry to consult: either payload spelling
                # may be on disk (damage can hit the manifest itself).
                for candidate in (f"{artifact_id}.npz", f"{artifact_id}.flat"):
                    if (self.root / candidate).exists():
                        file_name = candidate
                        break
                else:
                    file_name = f"{artifact_id}.npz"
            src = self.root / file_name
            if src.exists():
                qdir = self.root / "quarantine"
                qdir.mkdir(parents=True, exist_ok=True)
                suffix = Path(file_name).suffix or ".npz"
                dest = qdir / file_name
                n = 1
                while dest.exists():
                    dest = qdir / f"{Path(file_name).stem}.{n}{suffix}"
                    n += 1
                os.replace(src, dest)
                moved = dest
        return moved

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(self, dry_run: bool = False, clear: bool = False) -> List[Tuple[str, str]]:
        """Sweep corrupt, version-mismatched and orphaned artifacts.

        Removes (or with ``dry_run`` just reports) every manifest entry
        whose file is missing or whose format version differs from
        :data:`FORMAT_VERSION`, plus ``.npz`` files no manifest entry
        references and ``.tmp`` leftovers from interrupted writes.
        ``clear=True`` reclaims everything.  An unreadable manifest is
        itself a corruption gc repairs: every artifact file is then
        swept as orphaned and a fresh manifest written.  Returns
        ``[(artifact_id_or_file, reason), ...]``.
        """
        if not self.root.is_dir():
            return []  # nothing to collect; inspection must not mkdir
        removed: List[Tuple[str, str]] = []
        with self._locked():
            try:
                manifest = self._read_manifest()
            except StoreCorruption:
                manifest = {}
                removed.append((_MANIFEST, "unreadable manifest"))
            keep: Dict[str, dict] = {}
            condemned_files: set = set()
            for artifact_id, entry in manifest.items():
                file_name = entry.get("file") if isinstance(entry, dict) else None
                path = self.root / file_name if file_name else None
                if clear:
                    reason: Optional[str] = "cleared"
                elif path is None:
                    # Entries another format wrote may lack fields this
                    # build needs; never die on a raw KeyError here.
                    reason = "malformed manifest entry"
                elif entry.get("format_version") != FORMAT_VERSION:
                    reason = (
                        f"format version {entry.get('format_version')} != "
                        f"{FORMAT_VERSION}"
                    )
                elif not path.exists():
                    reason = "missing artifact file"
                else:
                    reason = self._payload_problem(entry, path)
                if reason is None:
                    keep[artifact_id] = entry
                    continue
                removed.append((artifact_id, reason))
                if path is not None:
                    condemned_files.add(path.name)
                    if not dry_run and path.exists():
                        _remove_payload(path)
            referenced = {entry["file"] for entry in keep.values()}
            orphans = sorted(
                [*self.root.glob("*.npz"), *self.root.glob("*.flat")]
            )
            for path in orphans:
                if path.name not in referenced and path.name not in condemned_files:
                    removed.append((path.name, "orphaned file"))
                    if not dry_run:
                        _remove_payload(path)
            # clear=True is an explicit full-reclaim request and ignores
            # the live-writer window routine gc uses.
            cutoff = time.time() if clear else time.time() - TMP_SWEEP_AGE_S
            for path in sorted(self.root.glob("*.tmp")):
                try:
                    mtime = path.stat().st_mtime
                except OSError:
                    continue  # the writer just renamed/removed it
                if mtime > cutoff:
                    continue  # possibly a live in-flight write: leave it
                removed.append((path.name, "interrupted write"))
                if not dry_run:
                    _remove_payload(path)
            if not dry_run:
                self._write_manifest(keep)
        return removed

    @staticmethod
    def _payload_problem(entry: dict, path: Path) -> Optional[str]:
        """Why this artifact payload cannot back its manifest entry (or None).

        The same states :meth:`get` rejects with :class:`StoreCorruption`
        — unreadable zip/headers, missing arrays/members, shape drift —
        so gc reclaims exactly what load refuses to serve.
        """
        if entry.get("format", "npz") == "flat":
            for name, shape in entry.get("shapes", {}).items():
                member = path / f"{name}.npy"
                try:
                    try:
                        arr = np.load(member, mmap_mode="r", allow_pickle=False)
                    except ValueError:
                        arr = np.load(member, allow_pickle=False)
                except FileNotFoundError:
                    return f"artifact lacks array {name!r}"
                except (OSError, ValueError):
                    return "unreadable artifact file"
                if list(arr.shape) != list(shape):
                    return "array shapes disagree with manifest"
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                names = set(data.files)
                for name, shape in entry.get("shapes", {}).items():
                    if name not in names:
                        return f"artifact lacks array {name!r}"
                    if list(data[name].shape) != list(shape):
                        return "array shapes disagree with manifest"
        except (OSError, ValueError, zipfile.BadZipFile):
            return "unreadable artifact file"
        return None

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.entries())


def _remove_payload(path: Path) -> None:
    """Remove an artifact payload, whichever shape it has (file or dir)."""
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        with contextlib.suppress(FileNotFoundError):
            path.unlink()


def _payload_nbytes(path: Path) -> int:
    """On-disk size of a payload: file size, or the sum over a flat dir."""
    if path.is_dir():
        return sum(p.stat().st_size for p in path.iterdir() if p.is_file())
    return path.stat().st_size
