"""G-tree index tests: structure, matrix exactness, backends, oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import delaunay_network
from repro.index.gtree import (
    ArrayMatrix,
    GTree,
    GTreeOracle,
    HashMatrixPacked,
    HashMatrixTuple,
    MATRIX_BACKENDS,
    OccurrenceList,
)
from repro.pathfinding.dijkstra import dijkstra_distance, dijkstra_sssp
from repro.utils.counters import Counters


@pytest.fixture(scope="module")
def gtree400(road400):
    return GTree(road400, tau=48)


class TestStructure:
    def test_every_vertex_in_exactly_one_leaf(self, road400, gtree400):
        assert np.all(gtree400.leaf_of >= 0)
        total = sum(len(n.vertices) for n in gtree400.leaves())
        assert total == road400.num_vertices

    def test_leaf_capacity_respected(self, gtree400):
        for leaf in gtree400.leaves():
            assert len(leaf.vertices) <= 48

    def test_borders_have_outside_edges(self, road400, gtree400):
        for node in gtree400.nodes[1:4]:
            node_vertices = set(
                int(v)
                for leaf in gtree400.leaves()
                if node.leaf_lo <= leaf.leaf_lo < node.leaf_hi
                for v in leaf.vertices
            )
            for b in node.borders:
                neighbors = {v for v, _ in road400.neighbors(int(b))}
                assert neighbors - node_vertices, "border must reach outside"

    def test_parent_borders_are_child_borders(self, gtree400):
        for node in gtree400.nodes:
            if node.parent < 0:
                continue
            parent = gtree400.nodes[node.parent]
            cb = set(int(v) for v in parent.child_borders)
            assert set(int(b) for b in node.borders) <= cb

    def test_bookkeeping(self, gtree400):
        assert gtree400.build_time() > 0
        assert gtree400.size_bytes() > 0
        assert gtree400.num_levels() >= 2
        assert gtree400.average_borders() > 0

    def test_rejects_unknown_backend(self, road400):
        with pytest.raises(ValueError):
            GTree(road400, matrix_backend="nope")


class TestDistanceExactness:
    def test_assembly_matches_dijkstra(self, road400, gtree400, queries400):
        for s in queries400[:5]:
            sssp = dijkstra_sssp(road400, s)
            cache = {}
            for t in queries400[5:15]:
                assert gtree400.distance(s, t, cache=cache) == pytest.approx(
                    float(sssp[t])
                )

    def test_same_leaf_distances(self, road400, gtree400):
        leaf = gtree400.leaves()[0]
        verts = [int(v) for v in leaf.vertices[:6]]
        for s in verts[:2]:
            for t in verts:
                assert gtree400.distance(s, t) == pytest.approx(
                    dijkstra_distance(road400, s, t)
                )

    def test_leaf_matrix_globally_exact(self, road400, gtree400):
        """Out-and-back paths must be captured (the correction pass)."""
        leaf = gtree400.leaves()[1]
        for i, b in enumerate(leaf.borders[:4]):
            sssp = dijkstra_sssp(road400, int(b))
            for v in leaf.vertices[::7]:
                col = leaf.vertex_pos[int(v)]
                assert leaf.matrix.m[i, col] == pytest.approx(float(sssp[v]))

    def test_leaf_border_distances(self, road400, gtree400):
        v = int(gtree400.leaves()[0].vertices[0])
        leaf = gtree400.nodes[int(gtree400.leaf_of[v])]
        d = gtree400.leaf_border_distances(v)
        for i, b in enumerate(leaf.borders):
            assert d[i] == pytest.approx(dijkstra_distance(road400, v, int(b)))

    def test_counters_record_matrix_ops(self, road400, gtree400):
        counters = Counters()
        gtree400.distance(0, road400.num_vertices - 1, counters=counters)
        assert counters["gtree_matrix_ops"] > 0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_exact_on_random_networks(self, seed):
        graph = delaunay_network(90, seed=seed)
        gtree = GTree(graph, tau=16)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            s, t = rng.integers(0, graph.num_vertices, 2)
            assert gtree.distance(int(s), int(t)) == pytest.approx(
                dijkstra_distance(graph, int(s), int(t))
            )


class TestMatrixBackends:
    def test_backends_registry(self):
        assert set(MATRIX_BACKENDS) == {"array", "hash_tuple", "hash_packed"}

    def test_minplus_agreement(self):
        rng = np.random.default_rng(0)
        m = rng.random((8, 9))
        prev = rng.random(3)
        rows = np.asarray([1, 4, 6])
        cols = np.asarray([0, 2, 8])
        expected = ArrayMatrix(m).minplus(prev, rows, cols)
        for backend in (HashMatrixTuple, HashMatrixPacked):
            got = backend(m).minplus(prev, rows, cols)
            assert np.allclose(got, expected)

    def test_get_agreement(self):
        m = np.arange(12, dtype=float).reshape(3, 4)
        for backend in MATRIX_BACKENDS.values():
            assert backend(m).get(2, 3) == 11.0

    def test_hash_backend_distances_exact(self, road400):
        gtree = GTree(road400, tau=48, matrix_backend="hash_packed")
        for s, t in [(0, 200), (5, 399 % road400.num_vertices)]:
            assert gtree.distance(s, t) == pytest.approx(
                dijkstra_distance(road400, s, t)
            )

    def test_size_ordering(self):
        """Hash layouts must report larger footprints than the array."""
        m = np.ones((10, 10))
        assert (
            ArrayMatrix(m).size_bytes()
            < HashMatrixPacked(m).size_bytes()
            < HashMatrixTuple(m).size_bytes()
        )


class TestOccurrenceList:
    def test_leaf_objects_partition_objects(self, gtree400, objects400):
        ol = OccurrenceList(gtree400, objects400)
        listed = sorted(
            o for objs in ol.leaf_objects.values() for o in objs
        )
        assert listed == sorted(int(o) for o in objects400)

    def test_has_objects_propagates_to_root(self, gtree400, objects400):
        ol = OccurrenceList(gtree400, objects400)
        assert ol.has_objects(gtree400.root)

    def test_children_only_occupied(self, gtree400, objects400):
        ol = OccurrenceList(gtree400, objects400)
        for node_id, children in ol.children_with_objects.items():
            for c in children:
                assert ol.has_objects(c)

    def test_is_object(self, gtree400, objects400):
        ol = OccurrenceList(gtree400, objects400)
        assert ol.is_object(int(objects400[0]))
        non_object = next(
            v for v in range(gtree400.graph.num_vertices)
            if v not in set(int(o) for o in objects400)
        )
        assert not ol.is_object(non_object)

    def test_costs_tracked(self, gtree400, objects400):
        ol = OccurrenceList(gtree400, objects400)
        assert ol.build_time() >= 0
        assert ol.size_bytes() > 0


class TestGTreeOracle:
    def test_matches_dijkstra(self, road400, gtree400):
        oracle = GTreeOracle(gtree400)
        for t in (3, 77, 201):
            assert oracle.distance(0, t) == pytest.approx(
                dijkstra_distance(road400, 0, t)
            )

    def test_materialization_reused_across_targets(self, road400, gtree400):
        oracle = GTreeOracle(gtree400)
        oracle.begin_source(0)
        first_cache = oracle._cache
        oracle.distance(0, 399 % road400.num_vertices)
        assert oracle._cache is first_cache
        oracle.distance(1, 5)  # new source resets
        assert oracle._cache is not first_cache

    def test_cost_accessors(self, gtree400):
        oracle = GTreeOracle(gtree400)
        assert oracle.size_bytes() == gtree400.size_bytes()
        assert oracle.build_time() == gtree400.build_time()
