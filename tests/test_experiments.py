"""Experiment harness tests: Workbench, results, figures, cache study."""

import pytest

from repro.experiments.cache_study import format_table3, table3_cache_profile
from repro.experiments.runner import (
    ExperimentResult,
    Workbench,
    measure_query_time,
    random_queries,
)
from repro.experiments import figures, tables
from repro.graph.generators import road_network
from repro.knn.base import verify_knn_result
from repro.knn.ine import INE
from repro.objects import uniform_objects


@pytest.fixture(scope="module")
def wb():
    return Workbench(road_network(350, seed=77, name="S-wb"))


class TestWorkbench:
    def test_make_every_method(self, wb):
        objects = uniform_objects(wb.graph, 0.05, seed=0)
        truth = INE(wb.graph, objects).knn(3, 5)
        from repro.experiments.runner import METHOD_NAMES

        for name in METHOD_NAMES:
            alg = wb.make(name, objects)
            assert verify_knn_result(alg.knn(3, 5), truth), name

    def test_make_unknown_rejected(self, wb):
        with pytest.raises(ValueError):
            wb.make("quantum", [0])

    def test_indexes_cached(self, wb):
        assert wb.gtree is wb.gtree
        assert wb.ch is wb.ch

    def test_silc_cap(self):
        big = Workbench(road_network(300, seed=1))
        big.graph_num_vertices = 300
        from repro.experiments import runner

        capped = Workbench(big.graph)
        old = runner.SILC_MAX_VERTICES
        runner.SILC_MAX_VERTICES = 100
        try:
            assert not capped.silc_available
            with pytest.raises(MemoryError):
                capped.silc
        finally:
            runner.SILC_MAX_VERTICES = old

    def test_available_methods(self, wb):
        methods = wb.available_methods()
        assert "ine" in methods and "ier-phl" in methods


class TestRunner:
    def test_random_queries_in_range(self, wb):
        qs = random_queries(wb.graph, 10, seed=1)
        assert len(qs) == 10
        assert all(0 <= q < wb.graph.num_vertices for q in qs)

    def test_measure_query_time_positive(self, wb):
        objects = uniform_objects(wb.graph, 0.05, seed=0)
        alg = wb.make("ine", objects)
        us = measure_query_time(alg, [0, 1, 2], 3)
        assert us > 0


class TestExperimentResult:
    def test_add_and_lookup(self):
        r = ExperimentResult("t", "x", "y")
        r.add("a", 1, 10.0)
        r.add("a", 2, 20.0)
        assert r.ys("a") == [10.0, 20.0]
        assert r.at("a", 2) == 20.0
        assert r.mean("a") == 15.0

    def test_at_missing_raises(self):
        r = ExperimentResult("t", "x", "y")
        r.add("a", 1, 10.0)
        with pytest.raises(KeyError):
            r.at("a", 99)

    def test_format_text_contains_series(self):
        r = ExperimentResult("demo", "k", "us")
        r.add("m1", 1, 3.0)
        r.add("m2", 1, 4.0)
        text = r.format_text()
        assert "demo" in text and "m1" in text and "m2" in text


class TestFigures:
    def test_fig10_shape(self, wb):
        result = figures.fig10_vary_k(
            wb, ks=(1, 5), num_queries=5, methods=("ine", "gtree", "ier-phl")
        )
        assert set(result.series) == {"ine", "gtree", "ier-phl"}
        assert len(result.ys("ine")) == 2

    def test_fig18_object_indexes(self, wb):
        size, build = figures.fig18_object_indexes(wb, densities=(0.01, 0.1))
        assert "INE" in size.series
        assert size.at("INE", 0.01) < size.at("INE", 0.1)

    def test_fig22_leaf_search(self, wb):
        result = figures.fig22_leaf_search(
            wb, densities=(0.05, 0.3), ks=(1,), num_queries=5
        )
        assert "k=1 (Bef)" in result.series and "k=1 (Aft)" in result.series


class TestTables:
    def test_table1(self, wb):
        rows = tables.table1_networks({"S-wb": wb.graph})
        assert rows[0]["vertices"] == wb.graph.num_vertices
        assert "S-wb" in tables.format_table1(rows)

    def test_table2(self, wb):
        rows = tables.table2_objects(wb.graph)
        assert rows == sorted(rows, key=lambda r: -r["size"])
        assert "Object Set" in tables.format_table2(rows)

    def test_table5_ranking(self, wb):
        criteria = tables.table5_ranking(wb, num_queries=5)
        assert "default" in criteria
        for ranks in criteria.values():
            assert min(ranks.values()) == 1
        assert "criterion" in tables.format_table5(criteria)


class TestCacheStudy:
    def test_profile_ordering_matches_paper(self, wb):
        profile = table3_cache_profile(
            wb.graph, num_queries=15, gtree=wb.gtree
        )
        array = profile["Array"]
        chained = profile["Chained Hashing"]
        probing = profile["Quadratic Probing"]
        # Table 3's shape: array has the fewest instructions and misses;
        # probing burns more instructions than chaining but misses less.
        assert array["INS"] < chained["INS"] < probing["INS"]
        for level in ("L1", "L2", "L3"):
            assert array[level] < probing[level] <= chained[level] * 1.05
        assert "Table 3" in format_table3(profile)
