"""Synthetic road-network generator tests."""

import numpy as np
import pytest
from scipy.sparse.csgraph import connected_components

from repro.graph.generators import (
    SCALED_SUITE,
    chain_heavy_network,
    delaunay_network,
    grid_network,
    road_network,
    scaled_network_suite,
    )


def _is_connected(graph):
    n, _ = connected_components(graph.to_csr_matrix(), directed=False)
    return n == 1


class TestGridNetwork:
    def test_connected(self):
        assert _is_connected(grid_network(8, 6, seed=0))

    def test_deterministic(self):
        a = grid_network(5, 5, seed=3)
        b = grid_network(5, 5, seed=3)
        assert a.num_edges == b.num_edges
        assert np.allclose(a.edge_weight, b.edge_weight)

    def test_weights_at_least_euclidean(self):
        g = grid_network(6, 6, seed=1)
        for u, v, w in g.edge_list():
            assert w >= g.euclidean(u, v) - 1e-9

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            grid_network(0, 5)


class TestDelaunayNetwork:
    def test_connected_and_sized(self):
        g = delaunay_network(200, seed=2)
        assert g.num_vertices == 200
        assert _is_connected(g)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            delaunay_network(2)


class TestRoadNetwork:
    def test_connected(self, road400):
        assert _is_connected(road400)

    def test_approximate_size(self):
        g = road_network(800, seed=1)
        # The LCC restriction may trim a few vertices.
        assert 700 <= g.num_vertices <= 800

    def test_chain_fraction_controls_degree2(self):
        low = road_network(500, seed=4, chain_fraction=0.05)
        high = chain_heavy_network(500, seed=4, chain_fraction=0.9)
        frac = lambda g: float((np.diff(g.vertex_start) == 2).mean())
        assert frac(high) > frac(low) + 0.2
        assert frac(high) > 0.5

    def test_deterministic(self):
        a = road_network(300, seed=9)
        b = road_network(300, seed=9)
        assert a.num_edges == b.num_edges

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            road_network(5)


class TestTravelTime:
    def test_times_leq_distances(self, road400, road400_time):
        """Every speed is >= 1, so time <= distance per edge."""
        assert np.all(road400_time.edge_weight <= road400.edge_weight + 1e-9)

    def test_symmetric_per_edge(self, road400_time):
        for u in range(0, road400_time.num_vertices, 29):
            for v, w in road400_time.neighbors(u):
                assert dict(road400_time.neighbors(v))[u] == pytest.approx(w)

    def test_speed_classes_present(self, road400, road400_time):
        ratio = road400.edge_weight / road400_time.edge_weight
        assert ratio.max() > 1.5  # some fast roads exist
        assert ratio.min() == pytest.approx(1.0, abs=1e-6)


class TestScaledSuite:
    def test_subset_by_max_vertices(self):
        suite = scaled_network_suite(max_vertices=2000)
        assert set(suite) == {name for name, n in SCALED_SUITE if n <= 2000}
        for g in suite.values():
            assert _is_connected(g)

    def test_sizes_increase(self):
        sizes = [n for _, n in SCALED_SUITE]
        assert sizes == sorted(sizes)
