"""Graph structure, builder validation and weight-variant tests."""


import numpy as np
import pytest

from repro.graph.graph import GraphBuilder, from_edge_list, largest_connected_component


class TestGraphBuilder:
    def test_basic_build(self, line_graph):
        assert line_graph.num_vertices == 6
        assert line_graph.num_edges == 5
        assert line_graph.degree(0) == 1
        assert line_graph.degree(1) == 2

    def test_rejects_self_loop(self):
        b = GraphBuilder()
        b.add_vertex(0, 0)
        with pytest.raises(ValueError, match="self loop"):
            b.add_edge(0, 0, 1.0)

    def test_rejects_nonpositive_weight(self):
        b = GraphBuilder()
        b.add_vertex(0, 0)
        b.add_vertex(1, 0)
        with pytest.raises(ValueError, match="positive"):
            b.add_edge(0, 1, 0.0)

    def test_rejects_unknown_vertex(self):
        b = GraphBuilder()
        b.add_vertex(0, 0)
        with pytest.raises(ValueError, match="unknown vertex"):
            b.add_edge(0, 5, 1.0)

    def test_rejects_disconnected(self):
        coords = [(0, 0), (1, 0), (5, 5), (6, 5)]
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        with pytest.raises(ValueError, match="connected"):
            from_edge_list(coords, edges)

    def test_parallel_edges_keep_minimum(self):
        coords = [(0, 0), (1, 0)]
        g = from_edge_list(coords, [(0, 1, 5.0), (1, 0, 2.0)])
        assert g.num_edges == 1
        assert g.edge_weight_between(0, 1) == 2.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().build()


class TestGraphAccessors:
    def test_neighbors_symmetric(self, road400):
        for u in range(0, road400.num_vertices, 37):
            for v, w in road400.neighbors(u):
                back = dict(road400.neighbors(v))
                assert back[u] == w

    def test_csr_offsets_consistent(self, road400):
        assert road400.vertex_start[0] == 0
        assert road400.vertex_start[-1] == len(road400.edge_target)
        assert np.all(np.diff(road400.vertex_start) >= 0)

    def test_neighbor_slice_matches_neighbors(self, road400):
        targets, weights = road400.neighbor_slice(10)
        assert list(zip(targets, weights)) == [
            (v, w) for v, w in road400.neighbors(10)
        ]

    def test_edge_weight_between_absent(self, line_graph):
        assert line_graph.edge_weight_between(0, 5) is None

    def test_euclidean(self, line_graph):
        assert line_graph.euclidean(0, 3) == pytest.approx(3.0)
        assert line_graph.euclidean_to_point(0, 0.0, 4.0) == pytest.approx(4.0)

    def test_edge_list_each_edge_once(self, road400):
        edges = road400.edge_list()
        assert len(edges) == road400.num_edges
        assert all(u < v for u, v, _ in edges)

    def test_size_bytes_positive(self, road400):
        assert road400.size_bytes() > road400.num_vertices * 8


class TestWeights:
    def test_max_speed_lower_bound_property(self, road400):
        """dE / S must lower-bound the weight of every edge."""
        speed = road400.max_speed()
        for u, v, w in road400.edge_list()[:300]:
            assert road400.euclidean(u, v) / speed <= w + 1e-9

    def test_with_weights_shares_topology(self, road400):
        doubled = road400.with_weights(road400.edge_weight * 2, "doubled")
        assert doubled.num_edges == road400.num_edges
        assert doubled.weight_kind == "doubled"
        assert doubled.edge_weight[0] == 2 * road400.edge_weight[0]

    def test_with_weights_rejects_bad_length(self, road400):
        with pytest.raises(ValueError):
            road400.with_weights(np.ones(3), "bad")

    def test_travel_time_lower_bound(self, road400_time):
        speed = road400_time.max_speed()
        for u, v, w in road400_time.edge_list()[:300]:
            assert road400_time.euclidean(u, v) / speed <= w + 1e-9


class TestLargestComponent:
    def test_restricts_to_lcc(self):
        coords = [(0, 0), (1, 0), (2, 0), (9, 9), (10, 9)]
        edges = [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]
        g = from_edge_list(coords, edges, require_connected=False)
        lcc = largest_connected_component(g)
        assert lcc.num_vertices == 3
        assert lcc.num_edges == 2

    def test_noop_when_connected(self, line_graph):
        assert largest_connected_component(line_graph) is line_graph
