"""QueryEngine service layer: registry, structured results, batch, planner."""

import pytest

from repro.engine import (
    AUTO_DENSITY_THRESHOLD,
    IndexCache,
    KNNQuery,
    MethodUnavailable,
    QueryEngine,
    UnknownMethod,
    get_method,
    known_methods,
    method_specs,
    plan_method,
    register_method,
    unregister_method,
)
from repro.engine import workbench as workbench_mod
from repro.knn.base import verify_knn_result
from repro.knn.ine import INE
from repro.objects import uniform_objects
from repro.utils.counters import Counters


@pytest.fixture(scope="module")
def engine(road400, objects400):
    return QueryEngine(road400, objects400)


class TestRegistry:
    def test_builtin_methods_registered(self):
        names = known_methods()
        for name in ("ine", "gtree", "road", "disbrw", "ier-phl"):
            assert name in names

    def test_spec_lookup(self):
        spec = get_method("gtree")
        assert spec.name == "gtree"
        assert "gtree" in spec.requires

    def test_unknown_method_lists_known(self):
        with pytest.raises(UnknownMethod) as excinfo:
            get_method("quantum")
        assert "ine" in str(excinfo.value)
        assert excinfo.value.known == tuple(known_methods())
        # UnknownMethod stays a ValueError for old callers.
        assert isinstance(excinfo.value, ValueError)

    def test_register_and_unregister(self, road400, objects400):
        @register_method("test-ine-alias", summary="test alias")
        def _build(bench, objects, **kwargs):
            return INE(bench.graph, objects, **kwargs)

        try:
            assert "test-ine-alias" in known_methods()
            bench = IndexCache(road400)
            alg = bench.make("test-ine-alias", objects400)
            truth = INE(road400, objects400).knn(7, 3)
            assert verify_knn_result(alg.knn(7, 3), truth)
        finally:
            unregister_method("test-ine-alias")
        assert "test-ine-alias" not in known_methods()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_method("ine")(lambda bench, objects: None)

    def test_specs_have_summaries(self):
        for spec in method_specs():
            assert spec.summary, spec.name

    def test_disbrw_unavailable_reports_reason(self, road400, monkeypatch):
        monkeypatch.setattr(workbench_mod, "SILC_MAX_VERTICES", 50)
        bench = IndexCache(road400)
        assert not bench.silc_available
        with pytest.raises(MethodUnavailable) as excinfo:
            bench.make("disbrw", [0, 1, 2])
        assert excinfo.value.method == "disbrw"
        assert "SILC capped at 50" in excinfo.value.reason
        assert bench.method_availability("disbrw") is not None
        assert bench.method_availability("ine") is None
        assert "disbrw" not in bench.available_methods()


class TestKNNResultBackCompat:
    def test_iterates_as_distance_vertex_pairs(self, engine, road400, objects400):
        result = engine.query(7, 4, method="ine")
        raw = INE(road400, objects400).knn(7, 4)
        assert [(d, v) for d, v in result] == raw
        assert result.as_tuples() == raw
        assert result == raw
        assert len(result) == len(raw)
        assert tuple(result[0]) == raw[0]

    def test_verify_knn_result_accepts_engine_result(self, engine, road400, objects400):
        result = engine.query(7, 4, method="gtree")
        truth = INE(road400, objects400).knn(7, 4)
        assert verify_knn_result(result, truth)

    def test_result_carries_provenance(self, engine):
        result = engine.query(7, 4, method="gtree")
        assert result.method == "gtree"
        assert result.query == KNNQuery(7, 4, method="gtree")
        assert result.time_s > 0
        assert result.distances == sorted(result.distances)

    def test_with_paths(self, engine):
        result = engine.query(7, 3, method="ine", with_paths=True)
        for n in result:
            assert n.path is not None
            assert n.path[0] == 7 and n.path[-1] == n.vertex


class TestBatch:
    def test_batch_matches_per_query_calls(self, engine, queries400):
        batch = engine.batch(queries400[:8], k=5, method="gtree")
        assert len(batch) == 8
        for q, result in zip(queries400[:8], batch):
            single = engine.query(q, 5, method="gtree")
            assert result.as_tuples() == single.as_tuples()

    def test_batch_of_knnqueries_mixes_methods(self, engine):
        queries = [KNNQuery(3, 2, "ine"), KNNQuery(3, 2, "ier-phl")]
        a, b = engine.batch(queries)
        assert (a.method, b.method) == ("ine", "ier-phl")
        assert verify_knn_result(a, b.as_tuples())

    def test_explicit_args_override_knnquery_fields(self, engine):
        q = KNNQuery(3, 2)  # method defaults to "auto"
        result = engine.query(q, method="gtree")
        assert result.method == "gtree"
        (batched,) = engine.batch([q], method="ier-phl", k=4)
        assert batched.method == "ier-phl"
        assert batched.query.k == 4
        with_paths = engine.query(q, with_paths=True)
        assert all(n.path is not None for n in with_paths)

    def test_batch_requires_k_for_bare_ids(self, engine):
        with pytest.raises(ValueError):
            engine.batch([1, 2, 3])

    def test_batch_reuses_algorithm_instances(self, engine):
        engine.batch([1, 2], k=2, method="ine")
        first = engine.algorithm("ine")
        engine.batch([3, 4], k=2, method="ine")
        assert engine.algorithm("ine") is first


class TestAutoPlanner:
    def test_high_density_plans_ine(self, road400):
        objects = uniform_objects(road400, 0.2, seed=1)
        engine = QueryEngine(road400, objects)
        assert engine.plan(k=5) == "ine"
        assert engine.query(3, 2).method == "ine"

    def test_low_density_plans_non_ine(self, road400):
        objects = uniform_objects(road400, 0.005, seed=1, minimum=2)
        engine = QueryEngine(road400, objects)
        planned = engine.plan(k=2)
        assert planned != "ine"
        assert engine.query(3, 2).method == planned

    def test_threshold_boundary(self, road400):
        n = road400.num_vertices
        dense = [0] * int(AUTO_DENSITY_THRESHOLD * n + 1)
        sparse = [0]
        assert plan_method(road400, dense) == "ine"
        assert plan_method(road400, sparse) != "ine"

    def test_custom_threshold(self, road400, objects400):
        engine = QueryEngine(road400, objects400, density_threshold=1.0)
        assert engine.plan() != "ine"

    def test_auto_resolves_per_query(self, engine):
        resolved = engine.resolve_method("auto", k=3)
        assert resolved in known_methods()
        with pytest.raises(UnknownMethod):
            engine.resolve_method("quantum", k=3)


class TestExplain:
    def test_explain_counters_and_timing(self, engine):
        reports = engine.explain(11, 4)
        assert set(reports) == set(engine.available_methods())
        reference = None
        for method, result in reports.items():
            assert result.method == method
            assert result.time_s > 0
            assert result.counters.as_dict(), f"{method} recorded no counters"
            if reference is None:
                reference = result
            else:
                assert verify_knn_result(result, reference.as_tuples()), method

    def test_explain_counter_plumbing_per_method(self, engine):
        reports = engine.explain(11, 4, methods=("ine", "gtree", "road", "ier-phl"))
        assert reports["ine"].counters["ine_settled"] > 0
        assert reports["gtree"].counters["gtree_matrix_ops"] > 0
        assert reports["road"].counters["road_settled"] > 0
        assert reports["ier-phl"].counters["ier_network_computations"] > 0


class TestEngineConstruction:
    def test_shared_workbench(self, road400, objects400):
        bench = IndexCache(road400)
        a = bench.engine(objects400)
        b = a.with_objects(objects400[: len(objects400) // 2])
        assert a.workbench is b.workbench
        # Indexes built through one engine are visible to the other.
        assert a.workbench.gtree is b.workbench.gtree

    def test_counters_kwarg_passthrough(self, engine):
        counters = Counters()
        result = engine.query(5, 3, method="ine", counters=counters)
        assert result.counters is counters
        assert counters["ine_settled"] > 0

    def test_requires_graph_or_workbench(self):
        with pytest.raises(ValueError):
            QueryEngine()


class TestBaseSignature:
    def test_all_methods_accept_counters(self, road400, objects400):
        bench = IndexCache(road400)
        for name in known_methods():
            counters = Counters()
            alg = bench.make(name, objects400)
            result = alg.knn(9, 3, counters=counters)
            assert len(result) == 3, name

    def test_ine_ablation_variants_count_settled(self, road400, objects400):
        for variant in ("first_cut", "pqueue", "settled", "graph"):
            counters = Counters()
            INE(road400, objects400, variant=variant).knn(9, 3, counters=counters)
            assert counters["ine_settled"] > 0, variant
