"""DIMACS format round-trip tests."""

import gzip

import numpy as np
import pytest

from repro.graph.dimacs import load_dimacs, save_dimacs


class TestRoundTrip:
    def test_graph_survives_roundtrip(self, tmp_path, road400):
        gr = str(tmp_path / "net.gr")
        co = str(tmp_path / "net.co")
        save_dimacs(road400, gr, co)
        loaded = load_dimacs(gr, co)
        assert loaded.num_vertices == road400.num_vertices
        assert loaded.num_edges == road400.num_edges
        assert np.allclose(loaded.x, road400.x, atol=1e-5)
        for u, v, w in road400.edge_list()[:100]:
            assert loaded.edge_weight_between(u, v) == pytest.approx(w, abs=1e-5)

    def test_load_without_coordinates(self, tmp_path, line_graph):
        gr = str(tmp_path / "net.gr")
        save_dimacs(line_graph, gr)
        loaded = load_dimacs(gr)
        assert loaded.num_vertices == line_graph.num_vertices

    def test_comment_and_min_arc_handling(self, tmp_path):
        gr = tmp_path / "toy.gr"
        gr.write_text(
            "c a toy graph\n"
            "p sp 3 4\n"
            "a 1 2 5.0\n"
            "a 2 1 3.0\n"  # reverse direction with smaller weight wins
            "a 2 3 1.0\n"
            "a 3 2 1.0\n"
        )
        g = load_dimacs(str(gr))
        assert g.num_vertices == 3
        assert g.edge_weight_between(0, 1) == pytest.approx(3.0)

    def test_lcc_restriction(self, tmp_path):
        gr = tmp_path / "frag.gr"
        gr.write_text(
            "p sp 5 4\n"
            "a 1 2 1\n a 2 1 1\n"
            "a 4 5 1\n a 5 4 1\n"
        )
        g = load_dimacs(str(gr))
        assert g.num_vertices == 2  # larger fragment (tie resolved by order)
        full = load_dimacs(str(gr), restrict_to_lcc=False)
        assert full.num_vertices == 5

    def test_gzipped_inputs_load_transparently(self, tmp_path, road400):
        """``.gr.gz`` / ``.co.gz`` — the spelling DIMACS mirrors ship."""
        gr = tmp_path / "net.gr"
        co = tmp_path / "net.co"
        save_dimacs(road400, str(gr), str(co))
        gr_gz = tmp_path / "net.gr.gz"
        co_gz = tmp_path / "net.co.gz"
        gr_gz.write_bytes(gzip.compress(gr.read_bytes()))
        co_gz.write_bytes(gzip.compress(co.read_bytes()))
        plain = load_dimacs(str(gr), str(co))
        zipped = load_dimacs(str(gr_gz), str(co_gz))
        assert zipped.fingerprint() == plain.fingerprint()

    def test_ids_beyond_header_count_grow_the_graph(self, tmp_path):
        """Real exports contain ids past the ``p sp`` count (renumbering
        gaps); those arcs must land in the graph, not out-of-range."""
        gr = tmp_path / "gap.gr"
        gr.write_text(
            "p sp 2 6\n"
            "a 1 2 1\n a 2 1 1\n"
            "a 2 4 2\n a 4 2 2\n"   # vertex 4 > header count 2
            "a 4 3 1\n a 3 4 1\n"
        )
        g = load_dimacs(str(gr), restrict_to_lcc=False)
        assert g.num_vertices == 4
        assert g.edge_weight_between(1, 3) == pytest.approx(2.0)
