"""SILC index tests: first hops, paths, intervals, chain optimisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import chain_heavy_network, delaunay_network
from repro.index.silc import SILCIndex
from repro.pathfinding.dijkstra import dijkstra_distance, dijkstra_sssp


@pytest.fixture(scope="module")
def silc400(road400):
    return SILCIndex(road400)


class TestFirstHop:
    def test_first_hop_adjacent_and_on_shortest_path(self, road400, silc400):
        rng = np.random.default_rng(0)
        for _ in range(25):
            s, t = rng.integers(0, road400.num_vertices, 2)
            s, t = int(s), int(t)
            if s == t:
                continue
            h = silc400.first_hop(s, t)
            w = road400.edge_weight_between(s, h)
            assert w is not None
            assert w + dijkstra_distance(road400, h, t) == pytest.approx(
                dijkstra_distance(road400, s, t)
            )

    def test_first_hop_identity(self, silc400):
        assert silc400.first_hop(5, 5) == 5


class TestPath:
    def test_path_distance_matches_dijkstra(self, road400, silc400, queries400):
        for s in queries400[:4]:
            sssp = dijkstra_sssp(road400, s)
            for t in queries400[4:10]:
                d, path = silc400.path(s, t)
                assert d == pytest.approx(float(sssp[t]))
                assert path[0] == s and path[-1] == t

    def test_path_with_chains_same_distance(self, road400, silc400):
        for s, t in [(0, 333 % road400.num_vertices), (40, 7)]:
            d_plain = silc400.distance(s, t, use_chains=False)
            d_chain = silc400.distance(s, t, use_chains=True)
            assert d_plain == pytest.approx(d_chain)

    def test_path_edges_exist(self, road400, silc400):
        _, path = silc400.path(3, 250 % road400.num_vertices)
        for u, v in zip(path, path[1:]):
            assert road400.edge_weight_between(u, v) is not None


class TestIntervals:
    def test_interval_contains_true_distance(self, road400, silc400):
        rng = np.random.default_rng(1)
        for _ in range(40):
            s, t = rng.integers(0, road400.num_vertices, 2)
            s, t = int(s), int(t)
            lb, ub = silc400.interval_from(s, t)
            d = dijkstra_distance(road400, s, t)
            assert lb - 1e-9 <= d <= ub + 1e-9

    def test_interval_identity(self, silc400):
        assert silc400.interval_from(9, 9) == (0.0, 0.0)

    def test_refine_tightens_and_converges(self, road400, silc400):
        s, t = 2, 377 % road400.num_vertices
        true = dijkstra_distance(road400, s, t)
        vn, d, prev = s, 0.0, -1
        lb, ub = silc400.interval_from(s, t)
        steps = 0
        while vn != t:
            vn, d, prev, lb2, ub2 = silc400.refine(vn, d, prev, t, use_chains=False)
            assert lb2 - 1e-9 <= true <= ub2 + 1e-9
            lb, ub = lb2, ub2
            steps += 1
            assert steps < road400.num_vertices
        assert lb == pytest.approx(true)
        assert ub == pytest.approx(true)

    def test_refine_with_chains_converges(self, road400, silc400):
        s, t = 11, 222 % road400.num_vertices
        true = dijkstra_distance(road400, s, t)
        vn, d, prev = s, 0.0, -1
        while vn != t:
            vn, d, prev, lb, ub = silc400.refine(vn, d, prev, t, use_chains=True)
        assert d == pytest.approx(true)

    def test_region_bounds_bracket_vertices(self, road400, silc400):
        s = 0
        sssp = dijkstra_sssp(road400, s)
        lo_idx, hi_idx = 10, 60
        lb, ub = silc400.region_bounds(s, lo_idx, hi_idx)
        for pos in range(lo_idx, hi_idx):
            v = int(silc400._order[pos])
            if v == s:
                continue
            assert lb - 1e-9 <= float(sssp[v]) <= ub + 1e-9


class TestChains:
    def test_chain_heavy_network_paths(self):
        graph = chain_heavy_network(250, seed=2, chain_fraction=0.8)
        silc = SILCIndex(graph)
        rng = np.random.default_rng(3)
        for _ in range(10):
            s, t = rng.integers(0, graph.num_vertices, 2)
            d = silc.distance(int(s), int(t), use_chains=True)
            assert d == pytest.approx(dijkstra_distance(graph, int(s), int(t)))


class TestBookkeeping:
    def test_size_and_build_time(self, silc400):
        assert silc400.build_time() > 0
        assert silc400.size_bytes() > 0
        assert silc400.average_blocks() > 1

    def test_blocks_cover_all_positions(self, road400, silc400):
        blocks = silc400._sources[0]
        assert blocks.starts[0] == 0
        assert np.all(np.diff(blocks.starts) > 0)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_exact_on_random_networks(self, seed):
        graph = delaunay_network(70, seed=seed)
        silc = SILCIndex(graph)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            s, t = rng.integers(0, graph.num_vertices, 2)
            assert silc.distance(int(s), int(t)) == pytest.approx(
                dijkstra_distance(graph, int(s), int(t))
            )
