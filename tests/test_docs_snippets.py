"""Docs cannot rot: execute README code blocks, verify doc links.

Every fenced ``python`` block in ``README.md`` runs here under pytest
(each block in a fresh namespace), and every relative markdown link in
README + docs/ must point at a file that exists.  CI runs this module as
the docs job.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOC_FILES = [README, *sorted((REPO_ROOT / "docs").glob("*.md"))]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")


def _python_blocks(path: Path):
    return _FENCE.findall(path.read_text())


def test_readme_exists_and_has_quickstart():
    text = README.read_text()
    assert "quickstart" in text.lower()
    assert "pip install" in text
    # The five methods are all documented.
    for name in ("ine", "ier", "disbrw", "road", "gtree"):
        assert f"`{name}" in text, f"README does not document method {name!r}"


@pytest.mark.parametrize(
    "block_index", range(len(_python_blocks(README))), ids=lambda i: f"block{i}"
)
def test_readme_python_blocks_execute(block_index):
    """The README's code is live: each python block runs green."""
    blocks = _python_blocks(README)
    assert blocks, "README has no python blocks to execute"
    code = blocks[block_index]
    namespace: dict = {"__name__": f"readme_block_{block_index}"}
    exec(compile(code, f"README.md:block{block_index}", "exec"), namespace)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    text = doc.read_text()
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        resolved = (doc.parent / target.split("#")[0]).resolve()
        assert resolved.exists(), f"{doc.name}: broken link -> {target}"


def test_docs_mention_real_modules():
    """Module paths named in docs/architecture.md actually import."""
    import importlib

    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    for match in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
        importlib.import_module(match)
