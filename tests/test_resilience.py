"""Resilience layer: fault injection, taxonomy, retry/breaker primitives,
quarantine, and the engine's graceful-degradation fallback chain."""

from __future__ import annotations

import time

import pytest

from repro.engine import QueryEngine
from repro.engine.registry import MethodUnavailable, UnknownMethod
from repro.engine.workbench import IndexCache
from repro.graph.generators import road_network
from repro.objects import uniform_objects
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    Heartbeats,
    InjectedFault,
    KernelFault,
    RetryPolicy,
    Supervisor,
    WorkerKilled,
    classify,
    clear_plan,
    current_plan,
    fault_check,
    install_plan,
    is_degradable,
    is_transient,
    plan_installed,
    quarantine_counts,
    reset_quarantine_counts,
)
from repro.server import UnknownCategory
from repro.store import (
    ArtifactMissing,
    IndexStore,
    StoreCorruption,
    StoreError,
)
from repro.updates import RepairUnavailable


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no fault plan installed."""
    clear_plan()
    yield
    clear_plan()


# ----------------------------------------------------------------------
# FaultPlan / FaultSpec
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_no_plan_is_a_noop(self):
        assert current_plan() is None
        fault_check("kernel.sssp")  # must not raise

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("kernel.matmul")
        with pytest.raises(ValueError):
            FaultSpec("kernel.sssp", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("worker.stall", stall_s=-1)

    def test_nth_calls_fire_deterministically(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec("store.load", nth_calls=(2, 4)),
        ))
        fired = []
        with plan_installed(plan):
            for i in range(1, 6):
                try:
                    fault_check("store.load")
                    fired.append(False)
                except StoreCorruption:
                    fired.append(True)
        assert fired == [False, True, False, True, False]
        snap = plan.snapshot()
        assert snap["calls"] == {"store.load": 5}
        assert snap["fired"] == {"store.load": 2}

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(seed=seed, specs=(
                FaultSpec("kernel.sssp", probability=0.3),
            ))
            outcomes = []
            with plan_installed(plan):
                for _ in range(50):
                    try:
                        fault_check("kernel.sssp")
                        outcomes.append(0)
                    except KernelFault:
                        outcomes.append(1)
            return outcomes

        assert run(7) == run(7)  # exact replay
        assert run(7) != run(8)  # the seed matters
        assert 0 < sum(run(7)) < 50

    def test_between_window_bounds_probability(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec("kernel.sssp", probability=1.0, between=(3, 4)),
        ))
        fired = []
        with plan_installed(plan):
            for _ in range(6):
                try:
                    fault_check("kernel.sssp")
                    fired.append(False)
                except KernelFault:
                    fired.append(True)
        assert fired == [False, False, True, True, False, False]

    def test_max_fires_caps(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec("kernel.sssp", probability=1.0, max_fires=2),
        ))
        fires = 0
        with plan_installed(plan):
            for _ in range(5):
                try:
                    fault_check("kernel.sssp")
                except KernelFault:
                    fires += 1
        assert fires == 2

    def test_stall_sleeps_instead_of_raising(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec("worker.stall", nth_calls=(1,), stall_s=0.05),
        ))
        with plan_installed(plan):
            start = time.perf_counter()
            fault_check("worker.stall")  # no raise
            assert time.perf_counter() - start >= 0.05

    def test_default_errors_match_points(self):
        for point, exc_type in (
            ("worker.die", WorkerKilled),
            ("kernel.sssp", KernelFault),
            ("store.save", StoreCorruption),
            ("index.build", InjectedFault),
        ):
            plan = FaultPlan(specs=(FaultSpec(point, nth_calls=(1,)),))
            with plan_installed(plan):
                with pytest.raises(exc_type):
                    fault_check(point)

    def test_custom_error_factory(self):
        plan = FaultPlan(specs=(
            FaultSpec("store.load", nth_calls=(1,), error=lambda: OSError("disk")),
        ))
        with plan_installed(plan):
            with pytest.raises(OSError):
                fault_check("store.load")

    def test_plan_installed_restores_previous(self):
        outer = install_plan(FaultPlan(seed=1))
        with plan_installed(FaultPlan(seed=2)) as inner:
            assert current_plan() is inner
        assert current_plan() is outer

    def test_first_triggered_spec_wins(self):
        plan = FaultPlan(specs=(
            FaultSpec("kernel.sssp", nth_calls=(1,), error=lambda: KernelFault("a")),
            FaultSpec("kernel.sssp", nth_calls=(1,), error=lambda: KernelFault("b")),
        ))
        with plan_installed(plan):
            with pytest.raises(KernelFault, match="a"):
                fault_check("kernel.sssp")


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestClassify:
    @pytest.mark.parametrize("exc,name,transient,degradable", [
        (WorkerKilled("x"), "worker", False, False),
        (KernelFault("x"), "kernel", True, True),
        (InjectedFault("x"), "injected", True, True),
        (UnknownMethod("nope", ["ine"]), "client", False, False),
        (UnknownCategory("nope", [None]), "client", False, False),
        (MethodUnavailable("disbrw", "capped"), "unavailable", False, False),
        (StoreCorruption("x"), "corruption", True, True),
        (ArtifactMissing("x"), "store", True, True),
        (StoreError("x"), "store", True, True),
        (RepairUnavailable("x"), "repair", True, False),
        (TimeoutError("x"), "timeout", True, False),
        (MemoryError(), "resource", False, True),
        (ValueError("x"), "client", False, False),
        (OSError("x"), "io", True, True),
        (RuntimeError("x"), "internal", False, True),
    ])
    def test_verdicts(self, exc, name, transient, degradable):
        verdict = classify(exc)
        assert verdict.name == name
        assert verdict.transient is transient
        assert verdict.degradable is degradable
        assert is_transient(exc) is transient
        assert is_degradable(exc) is degradable


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_s=0.01, cap_s=0.03, multiplier=2.0,
            jitter=0.0, seed=1,
        )
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.03)  # capped
        assert policy.backoff_s(4) == pytest.approx(0.03)

    def test_jitter_stays_in_band_and_is_seeded(self):
        a = RetryPolicy(base_s=0.01, jitter=0.5, seed=9)
        b = RetryPolicy(base_s=0.01, jitter=0.5, seed=9)
        seq_a = [a.backoff_s(1) for _ in range(10)]
        seq_b = [b.backoff_s(1) for _ in range(10)]
        assert seq_a == seq_b  # deterministic in the seed
        assert all(0.005 <= s <= 0.01 for s in seq_a)
        assert len(set(seq_a)) > 1  # actually jittered


# ----------------------------------------------------------------------
# CircuitBreaker (fake clock: the full state machine, no sleeping)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            cooldown_s=cooldown,
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock["now"] = 4.9
        assert breaker.allow() is False
        clock["now"] = 5.1
        assert breaker.allow() is True  # the probe ticket
        assert breaker.state == HALF_OPEN
        assert breaker.allow() is False  # probe in flight: no second
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() is True
        snap = breaker.snapshot()
        assert snap["opened_total"] == 1
        assert snap["closed_after_open"] == 1

    def test_failed_probe_reopens(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock["now"] = 6.0
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.snapshot()["opened_total"] == 2
        clock["now"] = 10.0  # new cooldown counts from the re-trip
        assert breaker.allow() is False
        clock["now"] = 11.1
        assert breaker.allow() is True

    def test_snapshot_open_reports_age(self):
        breaker, clock = self.make(threshold=1)
        clock["now"] = 2.0
        breaker.record_failure()
        clock["now"] = 3.5
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["open_for_s"] == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1)


# ----------------------------------------------------------------------
# Heartbeats / Supervisor
# ----------------------------------------------------------------------
class TestSupervision:
    def test_heartbeat_ages(self):
        beats = Heartbeats()
        assert beats.age_s("w1") is None
        beats.beat("w1")
        assert beats.age_s("w1") < 1.0
        assert "w1" in beats.snapshot()
        beats.drop("w1")
        assert beats.age_s("w1") is None

    def test_supervisor_runs_check_and_survives_errors(self):
        calls = {"n": 0}

        def check():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")

        supervisor = Supervisor(check, interval_s=0.01).start()
        try:
            deadline = time.monotonic() + 2.0
            while calls["n"] < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            supervisor.stop()
        assert calls["n"] >= 3  # kept running past the crash
        assert supervisor.error_count == 1
        assert not supervisor.running

    def test_supervisor_interval_validated(self):
        with pytest.raises(ValueError):
            Supervisor(lambda: None, interval_s=0)


# ----------------------------------------------------------------------
# Quarantine + engine integration
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_corrupt_artifact_quarantined_and_rebuilt(self, tmp_path):
        graph = road_network(150, seed=3)
        store = IndexStore(tmp_path / "store")
        IndexCache(graph, store=store).prebuild(["gtree"])
        (victim,) = [e for e in store.entries() if e.kind == "gtree"]
        (store.root / victim.file).write_bytes(b"garbage")
        reset_quarantine_counts()

        objects = uniform_objects(graph, density=0.05, seed=4)
        engine = QueryEngine(IndexCache(graph, store=store), objects)
        truth = QueryEngine(graph, objects).query(7, 3, method="gtree")
        healed = engine.query(7, 3, method="gtree")
        assert not healed.degraded  # same method succeeded via rebuild
        assert healed.as_tuples() == truth.as_tuples()
        assert quarantine_counts(store.root) == {"gtree": 1}
        moved = list((store.root / "quarantine").glob("*.npz"))
        assert len(moved) == 1 and moved[0].read_bytes() == b"garbage"
        reset_quarantine_counts()

    def test_counts_scoped_by_root(self, tmp_path):
        reset_quarantine_counts()
        graph = road_network(120, seed=3)
        store = IndexStore(tmp_path / "a")
        IndexCache(graph, store=store).prebuild(["gtree"])
        (victim,) = [e for e in store.entries() if e.kind == "gtree"]
        (store.root / victim.file).write_bytes(b"junk")
        _ = IndexCache(graph, store=store).gtree  # quarantine + rebuild
        assert quarantine_counts(store.root) == {"gtree": 1}
        assert quarantine_counts(tmp_path / "elsewhere") == {}
        assert quarantine_counts() == {"gtree": 1}
        reset_quarantine_counts()

    def test_injected_store_fault_tolerated(self, tmp_path):
        """store.save failures never block serving the built index."""
        graph = road_network(150, seed=3)
        objects = uniform_objects(graph, density=0.05, seed=4)
        store = IndexStore(tmp_path / "store")
        engine = QueryEngine(
            IndexCache(graph, store=store), objects
        )
        plan = FaultPlan(seed=1, specs=(
            FaultSpec("store.save", probability=1.0),
        ))
        truth = QueryEngine(graph, objects).query(7, 3, method="gtree")
        with plan_installed(plan):
            result = engine.query(7, 3, method="gtree")
        assert result.as_tuples() == truth.as_tuples()
        # Nothing was persisted — every save failed — yet queries ran.
        assert [e for e in store.entries() if e.kind == "gtree"] == []


# ----------------------------------------------------------------------
# Engine graceful degradation
# ----------------------------------------------------------------------
class TestEngineFallback:
    @pytest.fixture()
    def dense_engine(self, road400):
        # Density >= threshold: the planner resolves "auto" to INE on
        # the array kernel, whose SSSP runs through kernel.sssp.
        objects = uniform_objects(road400, density=0.03, seed=5)
        return QueryEngine(road400, objects)

    def test_kernel_fault_falls_back_exactly(self, dense_engine):
        baseline = dense_engine.query(7, 4)
        assert baseline.method == "ine" and not baseline.degraded
        plan = FaultPlan(seed=2, specs=(
            FaultSpec("kernel.sssp", probability=1.0),
        ))
        with plan_installed(plan):
            result = dense_engine.query(7, 4)
        assert result.degraded and result.fallback_from == "ine"
        assert result.method != "ine"
        # Exact: same neighbors; distances equal to float associativity.
        assert result.vertices == baseline.vertices
        assert result.distances == pytest.approx(
            baseline.distances, rel=1e-9
        )

    def test_avoid_methods_degrades_without_a_failure(self, dense_engine):
        baseline = dense_engine.query(7, 4)
        result = dense_engine.query(
            7, 4, avoid_methods=frozenset(("ine",))
        )
        assert result.degraded and result.fallback_from == "ine"
        assert result.vertices == baseline.vertices

    def test_terminal_rung_is_python_ine(self, dense_engine):
        baseline = dense_engine.query(7, 4)
        # Avoid every indexed fallback; the kernel fault breaks array
        # INE — only the pure-python INE loop (no index, no array
        # kernel) can still answer.
        plan = FaultPlan(seed=3, specs=(
            FaultSpec("kernel.sssp", probability=1.0),
        ))
        with plan_installed(plan):
            result = dense_engine.query(
                7, 4,
                avoid_methods=frozenset(("ier-gt", "gtree", "ier-phl")),
            )
        assert result.degraded and result.method == "ine"
        assert result.kernel == "python"
        assert result.as_tuples() == baseline.as_tuples()

    def test_index_build_fault_degrades_explicit_method(self, road400):
        objects = uniform_objects(road400, density=0.03, seed=5)
        engine = QueryEngine(road400, objects)
        truth = engine.query(9, 3, method="ine")
        plan = FaultPlan(seed=4, specs=(
            FaultSpec("index.build", nth_calls=(1,)),
        ))
        with plan_installed(plan):
            result = engine.query(9, 3, method="gtree")
        assert result.degraded and result.fallback_from == "gtree"
        assert result.vertices == truth.vertices

    def test_non_degradable_errors_propagate(self, dense_engine):
        with pytest.raises(UnknownMethod):
            dense_engine.query(7, 4, method="not-a-method")

    def test_fallback_chain_shape(self, dense_engine):
        chain = dense_engine.fallback_chain("ine")
        assert chain[-1] == ("ine", "python")
        assert all(name != "ine" for name, _ in chain[:-1])
        avoided = dense_engine.fallback_chain(
            "ine", frozenset(("gtree", "ier-gt"))
        )
        assert all(
            name not in ("gtree", "ier-gt") for name, _ in avoided
        )

    def test_no_plan_answers_identical_and_undegraded(self, dense_engine):
        a = dense_engine.query(11, 5)
        b = dense_engine.query(11, 5)
        assert not a.degraded and a.fallback_from is None
        assert a.as_tuples() == b.as_tuples()
